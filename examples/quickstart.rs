//! Quickstart: train the full NER Globalizer stack on synthetic streams
//! and run it over a small Covid-like tweet stream.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's execution cycle end-to-end:
//! 1. fine-tune the Local NER encoder on a WNUT17-style training corpus;
//! 2. train the Phrase Embedder + Entity Classifier on a D5-style stream;
//! 3. stream a batch of tweets through the pipeline;
//! 4. compare Local NER output with the final Global NER output.

use ner_globalizer::core::{
    train_globalizer, GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer,
};
use ner_globalizer::corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ner_globalizer::encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ner_globalizer::eval::evaluate;

fn main() {
    let seed = 7;

    // ---- Data: three worlds with disjoint procedural entities. ----
    println!("== generating synthetic corpora ==");
    let train_kb = KnowledgeBase::build_in(
        seed ^ 1,
        200,
        ner_globalizer::corpus::namegen::Universe::Train,
    );
    let d5_kb = KnowledgeBase::build(seed ^ 2, 120);
    let eval_kb = KnowledgeBase::build(seed ^ 3, 120);
    let train_set = Dataset::generate(
        &DatasetSpec::non_streaming("train", 2_000, seed ^ 0xA),
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 1_500, Topic::ALL.to_vec(), seed ^ 0xB),
        &d5_kb,
    );
    let stream = Dataset::generate(
        &DatasetSpec::streaming("covid-stream", 600, vec![Topic::Health], seed ^ 0xC),
        &eval_kb,
    );
    println!(
        "   train {} tweets, d5 {} tweets, stream {} tweets",
        train_set.tweets.len(),
        d5.tweets.len(),
        stream.tweets.len()
    );

    // ---- Local NER: the BERTweet stand-in. ----
    println!("== fine-tuning the Local NER encoder ==");
    let mut local = TokenEncoder::new(EncoderConfig { seed, ..Default::default() });
    let stats = train_encoder(
        &mut local,
        &train_set,
        &TrainConfig { epochs: 6, ..Default::default() },
    );
    println!(
        "   {} epochs, dev token accuracy {:.1}%",
        stats.epochs_run,
        stats.dev_token_accuracy * 100.0
    );

    // ---- Global NER components: Phrase Embedder + Entity Classifier. ----
    println!("== training Global NER components on D5 ==");
    let cfg = GlobalizerTrainingConfig::for_dim(local.out_dim());
    let trained = train_globalizer(&local, &d5, &cfg);
    println!(
        "   {} with {} records, classifier val macro-F1 {:.1}%",
        trained.report.objective,
        trained.report.dataset_size,
        trained.report.classifier_val_macro_f1 * 100.0
    );

    // ---- Stream processing. ----
    println!("== streaming {} tweets through the pipeline ==", stream.tweets.len());
    let mut pipeline = NerGlobalizer::new(
        local,
        trained.phrase,
        trained.classifier,
        GlobalizerConfig::default(),
    );
    for batch in stream.batches(200) {
        let tokens: Vec<Vec<String>> = batch.iter().map(|t| t.tokens.clone()).collect();
        pipeline.process_batch_owned(tokens);
    }
    let global = pipeline.finalize();
    let local_out = pipeline.local_outputs();

    // ---- Scores. ----
    let gold: Vec<_> = stream.tweets.iter().map(|t| t.gold_spans()).collect();
    let ls = evaluate(&gold, &local_out);
    let gs = evaluate(&gold, &global);
    println!("\n                 macro-F1");
    println!("   Local NER     {:.3}", ls.macro_f1());
    println!("   NER Globalizer {:.3}", gs.macro_f1());
    println!(
        "\n   {} candidate surfaces registered, {} mentions tracked",
        pipeline.n_surfaces(),
        pipeline.candidate_base().total_mentions()
    );
    let t = pipeline.timings();
    println!(
        "   local stage {:.2}s, global stage {:.2}s",
        t.local.as_secs_f64(),
        t.global.as_secs_f64()
    );

    // ---- A concrete recovered mention. ----
    for (i, tweet) in stream.tweets.iter().enumerate() {
        let recovered: Vec<_> = global[i]
            .iter()
            .filter(|g| !local_out[i].iter().any(|l| l.same_boundaries(g)))
            .collect();
        if let Some(span) = recovered.first() {
            println!(
                "\n   example recovery in tweet {i}: {:?} -> {} \"{}\"",
                tweet.text(),
                span.ty,
                span.surface(&tweet.tokens)
            );
            break;
        }
    }
}
