//! Topic drift (§I: "multiple contemporaneous topics ... evolving over
//! time"): the conversation moves Politics → Health → Sports while one
//! pipeline instance keeps processing. Each phase brings a fresh entity
//! pool, yet the collective-processing gain holds within every phase —
//! no re-training, the CandidateBase simply keeps growing.
//!
//! ```bash
//! cargo run --release --example topic_drift
//! ```

use ner_globalizer::core::{
    train_globalizer, GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer,
};
use ner_globalizer::corpus::{
    Dataset, DatasetSpec, KnowledgeBase, StreamPhase, SyntheticStream, Topic, TweetSource,
};
use ner_globalizer::encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ner_globalizer::eval::evaluate;

fn main() {
    let seed = 77;
    println!("== training (a few seconds) ==");
    let train_kb = KnowledgeBase::build_in(
        seed ^ 1,
        200,
        ner_globalizer::corpus::namegen::Universe::Train,
    );
    let d5_kb = KnowledgeBase::build(seed ^ 2, 120);
    let eval_kb = KnowledgeBase::build(seed ^ 3, 120);
    let train_set = Dataset::generate(
        &DatasetSpec::non_streaming("train", 2_500, seed ^ 0xA),
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 2_000, Topic::ALL.to_vec(), seed ^ 0xB),
        &d5_kb,
    );
    let mut local = TokenEncoder::new(EncoderConfig { seed, ..Default::default() });
    train_encoder(&mut local, &train_set, &TrainConfig { epochs: 6, ..Default::default() });
    let trained = train_globalizer(
        &local,
        &d5,
        &GlobalizerTrainingConfig::for_dim(local.out_dim()),
    );

    // A stream that drifts across three conversations.
    let phase_len = 400;
    let mut stream = SyntheticStream::with_phases(
        &eval_kb,
        DatasetSpec::streaming("drift", 0, vec![Topic::Politics], seed ^ 0xC),
        vec![
            StreamPhase { topic: Topic::Politics, length: phase_len },
            StreamPhase { topic: Topic::Health, length: phase_len },
            StreamPhase { topic: Topic::Sports, length: phase_len },
        ],
    );

    let mut pipeline = NerGlobalizer::new(
        local,
        trained.phrase,
        trained.classifier,
        GlobalizerConfig::default(),
    );

    println!("== streaming 3 × {phase_len} tweets across drifting topics ==\n");
    let mut all_tweets = Vec::new();
    for phase in 0..3 {
        let tweets = stream.next_batch(phase_len);
        let tokens: Vec<Vec<String>> = tweets.iter().map(|t| t.tokens.clone()).collect();
        pipeline.process_batch_owned(tokens);
        all_tweets.extend(tweets);
        // Re-run Global NER over everything seen so far, then score just
        // this phase's slice.
        let outputs = pipeline.finalize();
        let lo = phase * phase_len;
        let hi = lo + phase_len;
        let gold: Vec<_> = all_tweets[lo..hi].iter().map(|t| t.gold_spans()).collect();
        let local_spans = pipeline.local_outputs()[lo..hi].to_vec();
        let topic = all_tweets[lo].topic;
        println!(
            "phase {} ({:?}): local {:.3} -> global {:.3} macro-F1 ({} surfaces known)",
            phase + 1,
            topic,
            evaluate(&gold, &local_spans).macro_f1(),
            evaluate(&gold, &outputs[lo..hi]).macro_f1(),
            pipeline.n_surfaces()
        );
    }
    println!(
        "\nThe pipeline never retrains across drifts — candidate surfaces\n\
         accumulate, and each new conversation's entities are aggregated\n\
         and classified from their own stream evidence."
    );
}
