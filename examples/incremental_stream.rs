//! Incremental stream execution (§III): the pipeline sustains multiple
//! iterations as batches arrive, and the Global NER quality improves as
//! the stream accumulates evidence — late batches teach the system
//! surface forms that recover mentions missed in early batches.
//!
//! ```bash
//! cargo run --release --example incremental_stream
//! ```

use ner_globalizer::core::{
    train_globalizer, GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer,
};
use ner_globalizer::corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ner_globalizer::encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ner_globalizer::eval::evaluate;

fn main() {
    let seed = 33;
    println!("== training (this takes a few seconds) ==");
    let train_kb = KnowledgeBase::build_in(
        seed ^ 1,
        200,
        ner_globalizer::corpus::namegen::Universe::Train,
    );
    let d5_kb = KnowledgeBase::build(seed ^ 2, 120);
    let eval_kb = KnowledgeBase::build(seed ^ 3, 120);
    let train_set = Dataset::generate(
        &DatasetSpec::non_streaming("train", 2_000, seed ^ 0xA),
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 1_500, Topic::ALL.to_vec(), seed ^ 0xB),
        &d5_kb,
    );
    let stream = Dataset::generate(
        &DatasetSpec::streaming("politics-stream", 1_200, vec![Topic::Politics], seed ^ 0xC),
        &eval_kb,
    );
    let mut local = TokenEncoder::new(EncoderConfig { seed, ..Default::default() });
    train_encoder(&mut local, &train_set, &TrainConfig { epochs: 6, ..Default::default() });
    let trained = train_globalizer(
        &local,
        &d5,
        &GlobalizerTrainingConfig::for_dim(local.out_dim()),
    );

    let mut pipeline = NerGlobalizer::new(
        local,
        trained.phrase,
        trained.classifier,
        GlobalizerConfig::default(),
    );

    println!("== streaming in batches of 200 tweets ==\n");
    println!("after batch | surfaces | mentions | macro-F1 (all tweets so far)");
    let mut seen = 0usize;
    for (bi, batch) in stream.batches(200).enumerate() {
        let tokens: Vec<Vec<String>> = batch.iter().map(|t| t.tokens.clone()).collect();
        pipeline.process_batch_owned(tokens);
        seen += batch.len();
        // Re-run the Global NER steps over everything seen so far —
        // the continuous execution setup of §III.
        let outputs = pipeline.finalize();
        let gold: Vec<_> = stream.tweets[..seen].iter().map(|t| t.gold_spans()).collect();
        let score = evaluate(&gold, &outputs);
        println!(
            "{:>11} | {:>8} | {:>8} | {:.3}",
            bi + 1,
            pipeline.n_surfaces(),
            pipeline.candidate_base().total_mentions(),
            score.macro_f1()
        );
    }

    // Contrast: how would the local stage alone have scored on the full
    // stream?
    let gold: Vec<_> = stream.tweets.iter().map(|t| t.gold_spans()).collect();
    let local_score = evaluate(&gold, &pipeline.local_outputs());
    let final_score = evaluate(&gold, &pipeline.finalize());
    println!(
        "\nfinal: Local NER alone {:.3} vs NER Globalizer {:.3} macro-F1",
        local_score.macro_f1(),
        final_score.macro_f1()
    );
    println!(
        "Surfaces learned late in the stream retroactively recover early\n\
         mentions on each finalize pass — the collective-processing gain\n\
         grows with the stream."
    );
}
