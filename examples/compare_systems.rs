//! Head-to-head comparison of every implemented NER system on one
//! synthetic stream — a miniature of Tables III and V.
//!
//! ```bash
//! cargo run --release --example compare_systems
//! ```

use ner_globalizer::baselines::{
    AguilarConfig, AguilarTagger, AkbikConfig, AkbikTagger, BertNer, DoclNer, DocumentTagger,
    HireConfig, HireNer,
};
use ner_globalizer::core::{
    train_globalizer, GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer,
};
use ner_globalizer::corpus::{Dataset, DatasetSpec, KnowledgeBase, NoiseProfile, Topic};
use ner_globalizer::encoder::{
    train_encoder, EncoderConfig, SequenceTagger, TokenEncoder, TrainConfig,
};
use ner_globalizer::eval::evaluate;
use ner_globalizer::text::{decode_bio, Span};

fn main() {
    let seed = 55;
    println!("== building data and training all systems ==");
    let train_kb = KnowledgeBase::build_in(
        seed ^ 1,
        200,
        ner_globalizer::corpus::namegen::Universe::Train,
    );
    let d5_kb = KnowledgeBase::build(seed ^ 2, 120);
    let eval_kb = KnowledgeBase::build(seed ^ 3, 120);
    let train_set = Dataset::generate(
        &DatasetSpec::non_streaming("train", 3_000, seed ^ 0xA),
        &train_kb,
    );
    let generic = Dataset::generate(
        &DatasetSpec {
            noise: NoiseProfile::clean(),
            ..DatasetSpec::non_streaming("generic", 2_000, seed ^ 0xD)
        },
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 3_000, Topic::ALL.to_vec(), seed ^ 0xB),
        &d5_kb,
    );
    let stream = Dataset::generate(
        &DatasetSpec::streaming("stream", 800, vec![Topic::Health, Topic::Science], seed ^ 0xC),
        &eval_kb,
    );

    let enc_cfg = EncoderConfig { seed, ..Default::default() };
    let mut local = TokenEncoder::new(enc_cfg);
    train_encoder(&mut local, &train_set, &TrainConfig { epochs: 6, ..Default::default() });
    let trained = train_globalizer(
        &local,
        &d5,
        &GlobalizerTrainingConfig::for_dim(local.out_dim()),
    );

    let gold: Vec<Vec<Span>> = stream.tweets.iter().map(|t| t.gold_spans()).collect();
    let sentences: Vec<Vec<String>> = stream.tweets.iter().map(|t| t.tokens.clone()).collect();
    let mut results: Vec<(&str, f64)> = Vec::new();

    // NER Globalizer.
    {
        let mut p = NerGlobalizer::new(
            local.clone(),
            trained.phrase.clone(),
            trained.classifier.clone(),
            GlobalizerConfig::default(),
        );
        p.process_batch(&sentences);
        let out = p.finalize();
        results.push(("NER Globalizer", evaluate(&gold, &out).macro_f1()));
        results.push((
            "Local NER (BERTweet stand-in)",
            evaluate(&gold, &p.local_outputs()).macro_f1(),
        ));
    }
    // Aguilar-style CRF.
    {
        let crf = AguilarTagger::train(&train_set, AguilarConfig::default());
        let out: Vec<Vec<Span>> = sentences.iter().map(|s| decode_bio(&crf.tag(s))).collect();
        results.push(("Aguilar et al. (CRF)", evaluate(&gold, &out).macro_f1()));
    }
    // Domain-shifted BERT-NER.
    {
        let bert = BertNer::train(&generic, enc_cfg, &TrainConfig { epochs: 6, ..Default::default() });
        let out: Vec<Vec<Span>> = sentences.iter().map(|s| decode_bio(&bert.tag(s))).collect();
        results.push(("BERT-NER (domain-shifted)", evaluate(&gold, &out).macro_f1()));
    }
    // Global baselines.
    {
        let akbik = AkbikTagger::train(local.clone(), &train_set, AkbikConfig::default());
        let tags = akbik.tag_document(&sentences);
        let out: Vec<Vec<Span>> = tags.iter().map(|t| decode_bio(t)).collect();
        results.push(("Akbik et al. (pooled)", evaluate(&gold, &out).macro_f1()));
    }
    {
        let hire = HireNer::train(local.clone(), &train_set, HireConfig::default());
        let tags = hire.tag_document(&sentences);
        let out: Vec<Vec<Span>> = tags.iter().map(|t| decode_bio(t)).collect();
        results.push(("HIRE-NER", evaluate(&gold, &out).macro_f1()));
    }
    {
        let docl = DoclNer::new(local.clone());
        let tags = docl.tag_document(&sentences);
        let out: Vec<Vec<Span>> = tags.iter().map(|t| decode_bio(t)).collect();
        results.push(("DocL-NER", evaluate(&gold, &out).macro_f1()));
    }

    results.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\n== macro-F1 on an {}-tweet stream ==", stream.tweets.len());
    for (name, f1) in results {
        println!("  {name:<32} {f1:.3}");
    }
}
