//! Surface-form ambiguity (§V-C): the same string "washington" refers to
//! a person or a state, and "us" is both a country and a pronoun. This
//! example feeds a hand-written stream through a trained pipeline and
//! shows how candidate clustering separates the readings before the
//! Entity Classifier labels them.
//!
//! ```bash
//! cargo run --release --example ambiguity
//! ```

use ner_globalizer::core::{
    train_globalizer, GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer,
};
use ner_globalizer::corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ner_globalizer::encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ner_globalizer::text::tokenize;

fn main() {
    let seed = 21;

    // Train the stack exactly like quickstart (smaller budgets).
    println!("== training (this takes a few seconds) ==");
    let train_kb = KnowledgeBase::build_in(
        seed ^ 1,
        200,
        ner_globalizer::corpus::namegen::Universe::Train,
    );
    let d5_kb = KnowledgeBase::build(seed ^ 2, 120);
    let train_set = Dataset::generate(
        &DatasetSpec::non_streaming("train", 2_000, seed ^ 0xA),
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 1_500, Topic::ALL.to_vec(), seed ^ 0xB),
        &d5_kb,
    );
    let mut local = TokenEncoder::new(EncoderConfig { seed, ..Default::default() });
    train_encoder(&mut local, &train_set, &TrainConfig { epochs: 6, ..Default::default() });
    let trained = train_globalizer(
        &local,
        &d5,
        &GlobalizerTrainingConfig::for_dim(local.out_dim()),
    );

    // A hand-written ambiguous stream, echoing the paper's examples.
    let tweets = [
        "president Washington signed the bill today",
        "Washington slammed the committee over the leak",
        "we visited washington last summer",
        "protests erupt in Washington tonight",
        "washington said the hearings will continue",
        "voters in washington head to the polls",
        "the US confirmed 500 new cases today",
        "cases rising fast in the US",
        "they told us to stay home again",
        "this affects all of us directly",
        "US officials issued new travel guidance",
        "give us a break already",
    ];
    println!("== processing {} hand-written tweets ==\n", tweets.len());
    let mut pipeline = NerGlobalizer::new(
        local,
        trained.phrase,
        trained.classifier,
        GlobalizerConfig::default(),
    );
    let batch: Vec<Vec<String>> = tweets
        .iter()
        .map(|t| tokenize(t).into_iter().map(|tok| tok.text).collect())
        .collect();
    pipeline.process_batch_owned(batch);
    let out = pipeline.finalize();

    for (text, spans) in tweets.iter().zip(&out) {
        let toks: Vec<String> = tokenize(text).into_iter().map(|t| t.text).collect();
        let rendered: Vec<String> = spans
            .iter()
            .map(|s| format!("{} [{}]", s.surface(&toks), s.ty))
            .collect();
        println!("  {:<55} -> {}", text, if rendered.is_empty() {
            "(no entities)".to_string()
        } else {
            rendered.join(", ")
        });
    }

    // Show the cluster structure behind each ambiguous surface.
    println!("\n== candidate clusters per ambiguous surface ==");
    for surface in ["washington", "us"] {
        if pipeline.candidate_base().get(surface).is_none() {
            println!(
                "  \"{surface}\": never seeded — Local NER missed every mention, so \
                 Global NER cannot recover it (the paper's error mode 1, §VI-C)"
            );
            continue;
        }
        if let Some(entry) = pipeline.candidate_base().get(surface) {
            println!(
                "  \"{surface}\": {} mention(s) in {} cluster(s)",
                entry.mentions.len(),
                entry.clusters.len()
            );
            for (ci, cluster) in entry.clusters.iter().enumerate() {
                let label = match cluster.label {
                    Some(Some(ty)) => ty.code().to_string(),
                    Some(None) => "non-entity".to_string(),
                    None => "unclassified".to_string(),
                };
                println!(
                    "    cluster {ci}: {} mention(s) -> {label}",
                    cluster.members.len()
                );
            }
        }
    }
    println!(
        "\nThe clustering step (cosine agglomerative over contrastive phrase\n\
         embeddings) is what keeps the pronoun \"us\" from polluting the\n\
         global embedding of the country — the issue §V-C is built around."
    );
}
