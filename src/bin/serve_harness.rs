//! Development harness for the serving front-end: deterministic
//! untrained models (see `ngl_serve::devstack`) over a durable store,
//! served until the process is killed. The kill-under-load integration
//! suite drives this binary from outside — SIGKILL mid-load, restart on
//! the same store directory, compare recovered state — so everything
//! here must be reproducible across processes: no entropy, no wall
//! clock, models fully determined by seeds.
//!
//! Usage:
//!   serve_harness --store-dir DIR [--addr HOST:PORT] [--max-batch N]
//!                 [--max-delay-ms N] [--queue-cap N] [--finalize-every N]
//!                 [--ack-timeout-ms N] [--pressure-shed-milli N]
//!                 [--retention-max-tweets N] [--checkpoint-every N]
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound.

use std::collections::HashMap;

use ner_globalizer::core::{DurableGlobalizer, GlobalizerConfig, PoolPolicy, RetentionPolicy};
use ner_globalizer::serve::{devstack, ServeConfig, Server};

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg}"));
        };
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad value for --{name}: {raw}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args)?;
    let store_dir = flags.get("store-dir").ok_or("missing --store-dir")?.clone();

    let mut cfg = GlobalizerConfig { pool: PoolPolicy::Shared, ..Default::default() };
    if let Some(raw) = flags.get("retention-max-tweets") {
        let cap: usize = raw.parse().map_err(|_| "bad --retention-max-tweets")?;
        cfg.retention = RetentionPolicy::MaxTweets(cap);
    }
    let checkpoint_every: usize = num(&flags, "checkpoint-every", 4)?;

    let serve_cfg = ServeConfig {
        addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".to_string()),
        max_batch: num(&flags, "max-batch", 64)?,
        max_delay_ms: num(&flags, "max-delay-ms", 5)?,
        queue_cap: num(&flags, "queue-cap", 1024)?,
        finalize_every: num(&flags, "finalize-every", 1)?,
        ack_timeout_ms: num(&flags, "ack-timeout-ms", 10_000)?,
        pressure_shed_milli: num(&flags, "pressure-shed-milli", 2000)?,
    };

    let pipeline = devstack::pipeline(cfg);
    let (durable, recovery) = DurableGlobalizer::open(pipeline, &store_dir, checkpoint_every)
        .map_err(|e| format!("open {store_dir}: {e}"))?;
    eprintln!(
        "recovered: {} batches, {} finalizes, {} tweets, digest {}",
        recovery.replayed_batches, recovery.replayed_finalizes, recovery.tweets, recovery.digest
    );
    let server = Server::start(durable, recovery, serve_cfg).map_err(|e| e.to_string())?;
    // The test harness scrapes this exact line for the bound port.
    println!("LISTENING {}", server.addr());
    use std::io::Write;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    // Serve until killed. The kill-under-load suite SIGKILLs this
    // process mid-load, so there is deliberately no graceful path here.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_harness: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
