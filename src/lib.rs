//! # NER Globalizer
//!
//! A Rust reproduction of *"Globally Aware Contextual Embeddings for
//! Named Entity Recognition in Social Media Streams"* (ICDE 2023).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`nn`] — the minimal neural-network library (layers, losses, Adam).
//! * [`text`] — tweet tokenization, spans, entity types, BIO tags.
//! * [`corpus`] — the synthetic microblog stream substrate and the
//!   dataset profiles D1–D5 / WNUT17-like / BTC-like of Table I.
//! * [`encoder`] — the Local NER substrate (contextual token encoder +
//!   BIO head), standing in for BERTweet.
//! * [`ctrie`] — the CandidatePrefixTrie and mention extraction (§V-A).
//! * [`cluster`] — cosine agglomerative clustering (§V-C).
//! * [`core`] — the NER Globalizer pipeline itself: Phrase Embedder,
//!   attention pooling, Entity Classifier, CandidateBase/TweetBase.
//! * [`baselines`] — Aguilar, BERT-NER, Akbik, HIRE-NER, DocL-NER.
//! * [`eval`] — span-level NER metrics and error analysis.
//! * [`runtime`] — the scoped-thread parallel executor driving the
//!   pipeline's hot stages (`NGL_THREADS`-configurable, deterministic).
//! * [`store`] — the durable-state substrate: append-only WAL,
//!   crash-consistent snapshots and the cold-surface spill file.
//! * [`serve`] — the online serving front-end: batching ingest over the
//!   durable store, read-only queries against finalized snapshots, and
//!   typed admission control under load or storage faults.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use ngl_baselines as baselines;
pub use ngl_cluster as cluster;
pub use ngl_core as core;
pub use ngl_corpus as corpus;
pub use ngl_ctrie as ctrie;
pub use ngl_encoder as encoder;
pub use ngl_eval as eval;
pub use ngl_nn as nn;
pub use ngl_runtime as runtime;
pub use ngl_serve as serve;
pub use ngl_store as store;
pub use ngl_text as text;
