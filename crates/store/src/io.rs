//! Injectable IO layer for the durable store.
//!
//! Every byte [`crate::Wal`], [`crate::SnapshotStore`] and
//! [`crate::SpillFile`] move to or from disk goes through a [`StoreIo`]
//! implementation, shared via a cloneable [`IoHandle`]. Production code
//! uses the passthrough [`RealIo`]; chaos tests wrap it in [`ChaosIo`],
//! which consults a seeded [`IoFaultPlan`] (a pure value from
//! `ngl-runtime::faults` — no globals) to fail specific calls
//! deterministically by **(op, path-class, call-index)**.
//!
//! [`IoHandle`] also owns the [`RetryPolicy`]: transient errors (EINTR,
//! EAGAIN) are retried in place with a bounded, deterministic backoff
//! schedule whose sleep is injectable so tests run instantly. Disk-full
//! and persistent errors are *never* retried here — they surface
//! immediately so the layers above can degrade in a typed way instead
//! of spinning.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ngl_runtime::faults::{IoFaultKind, IoFaultPlan, IoOp, IoPathClass};

use crate::StoreError;

/// Environment variable overriding [`RetryPolicy::max_attempts`].
pub const STORE_RETRIES_ENV: &str = "NGL_STORE_RETRIES";

/// Raw OS error codes the classifier understands. Matching on raw
/// codes (not `io::ErrorKind` variants, several of which are unstable
/// or version-dependent) keeps classification deterministic across
/// toolchains — and lets [`ChaosIo`] fabricate each class exactly.
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const ENOSPC: i32 = 28;
const EDQUOT: i32 = 122;

/// How an `io::Error` should be handled by the retry/degradation
/// machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorClass {
    /// Interrupted/would-block: retrying the same call may succeed.
    Transient,
    /// Device out of space (or quota): retrying is pointless until an
    /// operator intervenes; the store must degrade to read-only.
    NoSpace,
    /// Anything else: treated as a persistent failure of this op.
    Persistent,
}

/// Classifies an IO error for retry and degradation decisions.
pub fn classify_io_error(e: &std::io::Error) -> IoErrorClass {
    match e.raw_os_error() {
        Some(EINTR) | Some(EAGAIN) => IoErrorClass::Transient,
        Some(ENOSPC) | Some(EDQUOT) => IoErrorClass::NoSpace,
        _ => match e.kind() {
            std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock => {
                IoErrorClass::Transient
            }
            _ => IoErrorClass::Persistent,
        },
    }
}

impl StoreError {
    /// Whether this error is a disk-full (ENOSPC/EDQUOT) condition.
    pub fn is_no_space(&self) -> bool {
        matches!(self, StoreError::Io(e) if classify_io_error(e) == IoErrorClass::NoSpace)
    }
}

/// Classifies a store path the way [`ChaosIo`] schedules faults:
/// by file-name shape, so a plan can target "WAL segments" without
/// naming one.
pub fn classify_path(path: &Path) -> IoPathClass {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return IoPathClass::Other;
    };
    if name.starts_with("wal-") && name.ends_with(".log") {
        IoPathClass::Wal
    } else if name.starts_with("snap-") {
        // Covers both published snapshots (.ck) and in-flight (.ck.tmp).
        IoPathClass::Snapshot
    } else if name.contains("spill") {
        IoPathClass::Spill
    } else if name == "model.meta" {
        IoPathClass::Meta
    } else {
        IoPathClass::Other
    }
}

/// The filesystem surface the store needs, expressed path-first so a
/// fault layer can classify every call. All ops are positional or
/// whole-file — implementations may cache open handles, but callers
/// never hold one, which is what makes the layer swappable.
pub trait StoreIo: Send {
    /// Creates `path` and all missing parents.
    fn create_dir_all(&mut self, path: &Path) -> std::io::Result<()>;
    /// Every entry directly inside `path`.
    fn list_dir(&mut self, path: &Path) -> std::io::Result<Vec<PathBuf>>;
    /// Reads the whole file.
    fn read_file(&mut self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Reads exactly `len` bytes starting at `offset`.
    fn read_at(&mut self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>>;
    /// Creates (or truncates) the file and writes `data`.
    fn write_file(&mut self, path: &Path, data: &[u8]) -> std::io::Result<()>;
    /// Writes `data` at `offset`, creating the file if missing. Never
    /// truncates — a short write followed by a retry at the same offset
    /// overwrites the torn bytes.
    fn write_at(&mut self, path: &Path, offset: u64, data: &[u8]) -> std::io::Result<()>;
    /// Truncates (or extends with zeros) the file to `len` bytes.
    fn set_len(&mut self, path: &Path, len: u64) -> std::io::Result<()>;
    /// Current byte length of the file.
    fn file_len(&mut self, path: &Path) -> std::io::Result<u64>;
    /// Flushes file contents and metadata to stable storage.
    fn sync(&mut self, path: &Path) -> std::io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Removes the file.
    fn remove(&mut self, path: &Path) -> std::io::Result<()>;
}

/// Passthrough [`StoreIo`] over `std::fs`, with a handle cache so the
/// positional ops don't pay an `open(2)` per call.
#[derive(Default)]
pub struct RealIo {
    files: HashMap<PathBuf, File>,
}

impl RealIo {
    /// A fresh passthrough IO layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn handle(&mut self, path: &Path, create: bool) -> std::io::Result<&mut File> {
        use std::collections::hash_map::Entry;
        match self.files.entry(path.to_path_buf()) {
            Entry::Occupied(slot) => Ok(slot.into_mut()),
            Entry::Vacant(slot) => {
                let file =
                    OpenOptions::new().read(true).write(true).create(create).open(path)?;
                Ok(slot.insert(file))
            }
        }
    }
}

impl StoreIo for RealIo {
    fn create_dir_all(&mut self, path: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&mut self, path: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn read_file(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_at(&mut self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let file = self.handle(path, false)?;
        let mut buf = vec![0u8; len];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write_file(&mut self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        // A plain create would leave any cached handle pointing at the
        // same inode with a stale cursor; replace it outright.
        self.files.remove(path);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.write_all(data)?;
        self.files.insert(path.to_path_buf(), file);
        Ok(())
    }

    fn write_at(&mut self, path: &Path, offset: u64, data: &[u8]) -> std::io::Result<()> {
        let file = self.handle(path, true)?;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)
    }

    fn set_len(&mut self, path: &Path, len: u64) -> std::io::Result<()> {
        self.handle(path, false)?.set_len(len)
    }

    fn file_len(&mut self, path: &Path) -> std::io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn sync(&mut self, path: &Path) -> std::io::Result<()> {
        self.handle(path, false)?.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.files.remove(from);
        self.files.remove(to);
        std::fs::rename(from, to)
    }

    fn remove(&mut self, path: &Path) -> std::io::Result<()> {
        self.files.remove(path);
        std::fs::remove_file(path)
    }
}

/// A [`StoreIo`] that injects the faults of a seeded [`IoFaultPlan`]
/// into an inner layer. Each fault-eligible call bumps a per-(op,
/// path-class) counter; when the plan schedules a fault at that index
/// the call fails with a fabricated OS error of the right shape:
///
/// - [`IoFaultKind::Transient`] → EINTR, *before* touching the file
///   (so a retry observes untouched state);
/// - [`IoFaultKind::NoSpace`] → ENOSPC for the scheduled span;
/// - [`IoFaultKind::TornWrite`] → the leading `keep_pct`% of the
///   buffer reaches the inner layer, then EIO — the torn bytes stay
///   on disk exactly as a real partial write would leave them;
/// - [`IoFaultKind::SyncFail`] → fsync reports EIO (data may or may
///   not be durable — the caller must not trust it).
///
/// Call counters only advance on fault-eligible ops, and all store IO
/// happens on the caller's thread, so a schedule hits the same calls
/// regardless of `NGL_THREADS`.
pub struct ChaosIo {
    inner: Box<dyn StoreIo>,
    plan: IoFaultPlan,
    counters: HashMap<(IoOp, IoPathClass), u64>,
    injected: u64,
}

impl ChaosIo {
    /// Wraps `inner`, injecting the faults scheduled by `plan`.
    pub fn new(inner: Box<dyn StoreIo>, plan: IoFaultPlan) -> Self {
        Self { inner, plan, counters: HashMap::new(), injected: 0 }
    }

    /// Wraps [`RealIo`] with the faults of `plan`.
    pub fn over_real(plan: IoFaultPlan) -> Self {
        Self::new(Box::new(RealIo::new()), plan)
    }

    /// How many faults have actually fired so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Advances the (op, class) counter and returns the fault (if any)
    /// scheduled for this call.
    fn tick(&mut self, op: IoOp, path: &Path) -> Option<IoFaultKind> {
        let class = classify_path(path);
        let index = self.counters.entry((op, class)).or_insert(0);
        let at = *index;
        *index += 1;
        let fault = self.plan.fault_at(op, class, at);
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }
}

/// Fabricates an injected error carrying `code` as its raw OS error.
/// `raw_os_error` must round-trip (the classifier keys on it), which
/// rules out wrapping in a descriptive message — `io::Error::new`
/// produces a custom error whose raw code is `None`.
fn injected_err(code: i32) -> std::io::Error {
    std::io::Error::from_raw_os_error(code)
}

impl ChaosIo {
    fn fail(kind: IoFaultKind) -> std::io::Error {
        match kind {
            IoFaultKind::Transient => injected_err(EINTR),
            IoFaultKind::NoSpace { .. } => injected_err(ENOSPC),
            // EIO for both: a torn write and a failed fsync surface to
            // the caller as generic persistent IO failures.
            IoFaultKind::TornWrite { .. } | IoFaultKind::SyncFail => injected_err(5),
        }
    }
}

impl StoreIo for ChaosIo {
    fn create_dir_all(&mut self, path: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&mut self, path: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn read_file(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        match self.tick(IoOp::Read, path) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.read_file(path),
        }
    }

    fn read_at(&mut self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        match self.tick(IoOp::Read, path) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.read_at(path, offset, len),
        }
    }

    fn write_file(&mut self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        match self.tick(IoOp::Write, path) {
            Some(IoFaultKind::TornWrite { keep_pct }) => {
                let keep = data.len() * (keep_pct as usize).min(100) / 100;
                self.inner.write_file(path, &data[..keep])?;
                Err(Self::fail(IoFaultKind::TornWrite { keep_pct }))
            }
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.write_file(path, data),
        }
    }

    fn write_at(&mut self, path: &Path, offset: u64, data: &[u8]) -> std::io::Result<()> {
        match self.tick(IoOp::Write, path) {
            Some(IoFaultKind::TornWrite { keep_pct }) => {
                let keep = data.len() * (keep_pct as usize).min(100) / 100;
                self.inner.write_at(path, offset, &data[..keep])?;
                Err(Self::fail(IoFaultKind::TornWrite { keep_pct }))
            }
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.write_at(path, offset, data),
        }
    }

    fn set_len(&mut self, path: &Path, len: u64) -> std::io::Result<()> {
        match self.tick(IoOp::Write, path) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.set_len(path, len),
        }
    }

    fn file_len(&mut self, path: &Path) -> std::io::Result<u64> {
        self.inner.file_len(path)
    }

    fn sync(&mut self, path: &Path) -> std::io::Result<()> {
        match self.tick(IoOp::Sync, path) {
            // A failed fsync may still have flushed everything — or
            // nothing. Forward to the inner layer *then* report
            // failure, modelling the worst case a caller must assume.
            Some(IoFaultKind::SyncFail) => {
                self.inner.sync(path).ok();
                Err(Self::fail(IoFaultKind::SyncFail))
            }
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.sync(path),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.tick(IoOp::Rename, from) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.rename(from, to),
        }
    }

    fn remove(&mut self, path: &Path) -> std::io::Result<()> {
        match self.tick(IoOp::Remove, path) {
            Some(kind) => Err(Self::fail(kind)),
            None => self.inner.remove(path),
        }
    }
}

/// How transient-error backoff sleeps are performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sleeper {
    /// `std::thread::sleep` — production behaviour.
    Thread,
    /// No sleeping at all — chaos tests retry instantly.
    Skip,
}

/// Deterministic bounded retry for transient IO errors.
///
/// An op is attempted up to `max_attempts` times; before retry `k`
/// (1-based) the policy sleeps `backoff_schedule[min(k-1, len-1)]`.
/// Only [`IoErrorClass::Transient`] errors are retried — disk-full and
/// persistent errors always surface on the first attempt.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per op (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before each retry; the last entry repeats.
    pub backoff_schedule: Vec<Duration>,
    /// How backoff sleeps are executed (injectable for tests).
    pub sleeper: Sleeper,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_schedule: vec![
                Duration::from_millis(1),
                Duration::from_millis(5),
                Duration::from_millis(20),
            ],
            sleeper: Sleeper::Thread,
        }
    }
}

impl RetryPolicy {
    /// The default policy with `max_attempts` overridden by
    /// [`STORE_RETRIES_ENV`] when set (clamped to `1..=100`).
    pub fn from_env() -> Self {
        let mut policy = Self::default();
        if let Ok(v) = std::env::var(STORE_RETRIES_ENV) {
            if let Ok(n) = v.trim().parse::<u32>() {
                policy.max_attempts = n.clamp(1, 100);
            }
        }
        policy
    }

    /// A single-attempt policy (no retries at all).
    pub fn none() -> Self {
        Self { max_attempts: 1, backoff_schedule: Vec::new(), sleeper: Sleeper::Skip }
    }

    /// This policy with sleeping disabled — tests run instantly while
    /// keeping the attempt count.
    pub fn no_sleep(mut self) -> Self {
        self.sleeper = Sleeper::Skip;
        self
    }

    fn sleep_before_retry(&self, retry: u32) {
        if self.sleeper == Sleeper::Skip || self.backoff_schedule.is_empty() {
            return;
        }
        let ix = (retry as usize).min(self.backoff_schedule.len() - 1);
        std::thread::sleep(self.backoff_schedule[ix]);
    }
}

/// Counters the retry loop maintains, shared by every clone of an
/// [`IoHandle`] (and therefore visible across the WAL, snapshot store
/// and spill file of one `DurableGlobalizer`).
#[derive(Default)]
pub struct IoStats {
    transient_retries: AtomicU64,
    retry_exhausted: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Transient failures that were retried (whether or not the retry
    /// eventually succeeded).
    pub transient_retries: u64,
    /// Ops that failed even after exhausting every retry attempt.
    pub retry_exhausted: u64,
}

/// A cloneable handle bundling the IO layer, the retry policy and the
/// shared retry counters. All store components of one globalizer hold
/// clones of the same handle, so a chaos plan's call counters advance
/// in one global order.
#[derive(Clone)]
pub struct IoHandle {
    io: Arc<Mutex<Box<dyn StoreIo>>>,
    policy: Arc<RetryPolicy>,
    stats: Arc<IoStats>,
}

impl IoHandle {
    /// A handle over [`RealIo`] with the environment-derived policy.
    pub fn real() -> Self {
        Self::new(Box::new(RealIo::new()), RetryPolicy::from_env())
    }

    /// A handle over an arbitrary IO layer and policy.
    pub fn new(io: Box<dyn StoreIo>, policy: RetryPolicy) -> Self {
        Self { io: Arc::new(Mutex::new(io)), policy: Arc::new(policy), stats: Arc::default() }
    }

    /// A handle injecting the faults of `plan` over [`RealIo`], with
    /// sleeping disabled so chaos sweeps run instantly.
    pub fn chaos(plan: IoFaultPlan, policy: RetryPolicy) -> Self {
        Self::new(Box::new(ChaosIo::over_real(plan)), policy.no_sleep())
    }

    /// The retry counters accumulated by every clone of this handle.
    pub fn stats(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            transient_retries: self.stats.transient_retries.load(Ordering::Relaxed),
            retry_exhausted: self.stats.retry_exhausted.load(Ordering::Relaxed),
        }
    }

    /// Runs `op` under the retry policy: transient errors are retried
    /// up to `max_attempts` with backoff, everything else surfaces
    /// immediately.
    fn run<T>(
        &self,
        op: impl Fn(&mut dyn StoreIo) -> std::io::Result<T>,
    ) -> Result<T, StoreError> {
        let mut attempt = 0u32;
        loop {
            let result = {
                let mut io = self.io.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                op(&mut **io)
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    let transient = classify_io_error(&e) == IoErrorClass::Transient;
                    if transient && attempt < self.policy.max_attempts {
                        self.stats.transient_retries.fetch_add(1, Ordering::Relaxed);
                        self.policy.sleep_before_retry(attempt - 1);
                        continue;
                    }
                    if transient {
                        self.stats.retry_exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(StoreError::Io(e));
                }
            }
        }
    }

    /// Creates `path` and its ancestors (retry-wrapped). Public so
    /// higher layers (e.g. the durable pipeline) can route their own
    /// directory setup through the same injectable IO.
    pub fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        self.run(|io| io.create_dir_all(path))
    }

    pub(crate) fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>, StoreError> {
        self.run(|io| io.list_dir(path))
    }

    pub(crate) fn read_file(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.run(|io| io.read_file(path))
    }

    pub(crate) fn read_at(
        &self,
        path: &Path,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, StoreError> {
        self.run(|io| io.read_at(path, offset, len))
    }

    pub(crate) fn write_file(&self, path: &Path, data: &[u8]) -> Result<(), StoreError> {
        self.run(|io| io.write_file(path, data))
    }

    pub(crate) fn write_at(
        &self,
        path: &Path,
        offset: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        self.run(|io| io.write_at(path, offset, data))
    }

    pub(crate) fn set_len(&self, path: &Path, len: u64) -> Result<(), StoreError> {
        self.run(|io| io.set_len(path, len))
    }

    pub(crate) fn file_len(&self, path: &Path) -> Result<u64, StoreError> {
        self.run(|io| io.file_len(path))
    }

    pub(crate) fn sync(&self, path: &Path) -> Result<(), StoreError> {
        self.run(|io| io.sync(path))
    }

    pub(crate) fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        self.run(|io| io.rename(from, to))
    }

    pub(crate) fn remove(&self, path: &Path) -> Result<(), StoreError> {
        self.run(|io| io.remove(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_runtime::faults::IoFault;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ngl-io-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn path_classification_matches_store_layout() {
        assert_eq!(classify_path(Path::new("/x/wal-00000003.log")), IoPathClass::Wal);
        assert_eq!(classify_path(Path::new("/x/snap-00000001.ck")), IoPathClass::Snapshot);
        assert_eq!(classify_path(Path::new("/x/snap-00000001.ck.tmp")), IoPathClass::Snapshot);
        assert_eq!(classify_path(Path::new("/x/spill.dat")), IoPathClass::Spill);
        assert_eq!(classify_path(Path::new("/x/model.meta")), IoPathClass::Meta);
        assert_eq!(classify_path(Path::new("/x/whatever.bin")), IoPathClass::Other);
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        let dir = tmpdir("retry");
        let file = dir.join("wal-00000000.log");
        std::fs::write(&file, b"hello").unwrap();
        // Fail the first two reads of WAL files; the third succeeds.
        let plan = IoFaultPlan::new()
            .with_fault(IoFault {
                op: IoOp::Read,
                class: IoPathClass::Wal,
                index: 0,
                kind: IoFaultKind::Transient,
            })
            .with_fault(IoFault {
                op: IoOp::Read,
                class: IoPathClass::Wal,
                index: 1,
                kind: IoFaultKind::Transient,
            });
        let io = IoHandle::chaos(plan, RetryPolicy::default());
        assert_eq!(io.read_file(&file).unwrap(), b"hello");
        let stats = io.stats();
        assert_eq!(stats.transient_retries, 2);
        assert_eq!(stats.retry_exhausted, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let dir = tmpdir("exhaust");
        let file = dir.join("wal-00000000.log");
        std::fs::write(&file, b"hello").unwrap();
        let mut plan = IoFaultPlan::new();
        for i in 0..5 {
            plan = plan.with_fault(IoFault {
                op: IoOp::Read,
                class: IoPathClass::Wal,
                index: i,
                kind: IoFaultKind::Transient,
            });
        }
        let io = IoHandle::chaos(plan, RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
        assert!(io.read_file(&file).is_err());
        let stats = io.stats();
        assert_eq!(stats.transient_retries, 2);
        assert_eq!(stats.retry_exhausted, 1);
        // The file is untouched; a later call (indices past the plan)
        // succeeds.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_space_is_never_retried() {
        let dir = tmpdir("nospace");
        let file = dir.join("wal-00000000.log");
        let plan = IoFaultPlan::new().with_fault(IoFault {
            op: IoOp::Write,
            class: IoPathClass::Wal,
            index: 0,
            kind: IoFaultKind::NoSpace { span: 1 },
        });
        let io = IoHandle::chaos(plan, RetryPolicy::default());
        let err = io.write_at(&file, 0, b"data").unwrap_err();
        assert!(err.is_no_space(), "expected ENOSPC, got: {err}");
        assert_eq!(io.stats().transient_retries, 0);
        // The span has passed; the next write succeeds untouched.
        io.write_at(&file, 0, b"data").unwrap();
        assert_eq!(io.read_file(&file).unwrap(), b"data");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_leaves_a_prefix_on_disk() {
        let dir = tmpdir("torn");
        let file = dir.join("wal-00000000.log");
        let plan = IoFaultPlan::new().with_fault(IoFault {
            op: IoOp::Write,
            class: IoPathClass::Wal,
            index: 0,
            kind: IoFaultKind::TornWrite { keep_pct: 50 },
        });
        let io = IoHandle::chaos(plan, RetryPolicy::default());
        assert!(io.write_at(&file, 0, &[0xAB; 100]).is_err());
        assert_eq!(std::fs::read(&file).unwrap(), vec![0xAB; 50]);
        // A rewrite at the same offset heals the torn region.
        io.write_at(&file, 0, &[0xCD; 100]).unwrap();
        assert_eq!(std::fs::read(&file).unwrap(), vec![0xCD; 100]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_io_round_trips_through_handle_cache() {
        let dir = tmpdir("realio");
        let file = dir.join("spill.dat");
        let mut io = RealIo::new();
        io.write_file(&file, b"").unwrap();
        io.write_at(&file, 0, b"abcdef").unwrap();
        assert_eq!(io.read_at(&file, 2, 3).unwrap(), b"cde");
        assert_eq!(io.file_len(&file).unwrap(), 6);
        io.set_len(&file, 3).unwrap();
        assert_eq!(io.read_file(&file).unwrap(), b"abc");
        let moved = dir.join("spill2.dat");
        io.rename(&file, &moved).unwrap();
        io.sync(&moved).unwrap();
        assert_eq!(io.read_file(&moved).unwrap(), b"abc");
        io.remove(&moved).unwrap();
        assert!(io.read_file(&moved).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_policy_env_override() {
        // Serialize with other env-reading tests via a unique var use.
        std::env::set_var(STORE_RETRIES_ENV, "7");
        assert_eq!(RetryPolicy::from_env().max_attempts, 7);
        std::env::set_var(STORE_RETRIES_ENV, "0");
        assert_eq!(RetryPolicy::from_env().max_attempts, 1);
        std::env::remove_var(STORE_RETRIES_ENV);
        assert_eq!(RetryPolicy::from_env().max_attempts, RetryPolicy::default().max_attempts);
    }
}
