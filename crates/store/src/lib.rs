//! # ngl-store
//!
//! The durable-state substrate of the NER Globalizer: a **segment-based
//! append-only write-ahead log** ([`Wal`]), a **crash-consistent
//! snapshot store** ([`SnapshotStore`]) and a positional **spill file**
//! ([`SpillFile`]) for cold surfaces. Deliberately dependency-free —
//! `std` only — so every byte on disk is laid out by this crate.
//!
//! ## Record framing
//!
//! Every WAL record is framed as
//!
//! ```text
//! len (u32 LE) | tag (u8) | fnv1a64(tag ++ payload) (u64 LE) | payload
//! ```
//!
//! The checksum covers the tag byte and the payload, so neither a torn
//! (truncated) tail nor a bit-flipped final record can be mistaken for
//! valid data: a reader scans records until the first frame that is
//! incomplete or fails its checksum and stops there, yielding exactly
//! the checksum-valid prefix. [`Wal::open`] additionally *repairs* the
//! tail — it truncates the active segment to the valid prefix so that
//! subsequent appends never land behind garbage.
//!
//! ## Segments, rotation, compaction
//!
//! The log is a directory of numbered segment files (`wal-NNNNNNNN.log`).
//! Appends go to the highest-numbered (active) segment and roll over to
//! a fresh segment once [`Wal::segment_bytes`] is exceeded or
//! [`Wal::rotate`] is called explicitly. After a snapshot has captured
//! all state up to a point, [`Wal::compact_below`] deletes the segments
//! that precede it — the delta log stays proportional to the stream
//! since the last snapshot, not to the stream's lifetime.
//!
//! ## Snapshots
//!
//! [`SnapshotStore`] files (`snap-NNNNNNNN.ck`) carry their own
//! `magic | version | seq | len | checksum` header and are written with
//! the tmp-file + fsync + atomic-rename dance, so a crash mid-snapshot
//! leaves the previous snapshot intact. [`SnapshotStore::latest`] walks
//! candidates newest-first and silently skips corrupt ones — recovery
//! always finds the newest snapshot that still verifies.

//!
//! ## Injectable IO and fault handling
//!
//! All three components perform disk IO through the [`io::StoreIo`]
//! layer (shared as a cloneable [`IoHandle`]): production uses the
//! passthrough [`io::RealIo`], chaos tests swap in [`io::ChaosIo`]
//! with a seeded fault plan. Transient errors are retried inside the
//! handle under a bounded [`io::RetryPolicy`]; persistent and
//! disk-full errors surface as typed [`StoreError`]s that the layers
//! above (see `ngl-core::durable`) translate into graceful
//! degradation instead of a panic.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

pub mod io;

pub use io::{
    classify_io_error, ChaosIo, IoErrorClass, IoHandle, IoStatsSnapshot, RealIo, RetryPolicy,
    Sleeper, StoreIo, STORE_RETRIES_ENV,
};

/// Per-record frame header: `len u32 | tag u8 | checksum u64`.
const FRAME_HEADER: usize = 4 + 1 + 8;
/// Upper bound on a single record payload — a corrupted length field
/// must never trigger a giant allocation.
const MAX_PAYLOAD: usize = 1 << 30;
/// Default segment roll-over size.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

const SNAP_MAGIC: &[u8; 4] = b"NGLS";
const SNAP_VERSION: u32 = 1;
/// Snapshot header: magic | version u32 | seq u64 | len u64 | checksum u64.
const SNAP_HEADER: usize = 4 + 4 + 8 + 8 + 8;

/// FNV-1a 64-bit: the workspace's tiny, dependency-free integrity hash.
/// Guards against torn writes and bit rot, not adversaries.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a over several slices without concatenating them.
fn fnv1a64_parts(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for part in parts {
        for &b in *part {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Data on disk is malformed beyond the tolerated torn tail (e.g. a
    /// checksum failure in a non-final segment).
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Application-level record type.
    pub tag: u8,
    /// Opaque record body.
    pub payload: Vec<u8>,
}

/// Result of scanning one segment's bytes: the valid records, the byte
/// length of the valid prefix, and whether the scan consumed the whole
/// buffer (`false` = a torn or corrupt tail was cut off).
struct SegmentScan {
    records: Vec<Record>,
    valid_len: usize,
    clean: bool,
}

/// Little-endian `u32` at `pos`. Caller has bounds-checked `pos + 4`;
/// the fixed-size copy cannot fail, so no `unwrap` is involved.
fn u32_le_at(data: &[u8], pos: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[pos..pos + 4]);
    u32::from_le_bytes(b)
}

/// Little-endian `u64` at `pos`. Caller has bounds-checked `pos + 8`.
fn u64_le_at(data: &[u8], pos: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[pos..pos + 8]);
    u64::from_le_bytes(b)
}

/// Decodes records from `data` until the first incomplete or
/// checksum-invalid frame.
fn scan_segment(data: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if data.len() - pos < FRAME_HEADER {
            return SegmentScan { records, valid_len: pos, clean: pos == data.len() };
        }
        let len = u32_le_at(data, pos) as usize;
        let tag = data[pos + 4];
        let checksum = u64_le_at(data, pos + 5);
        if len > MAX_PAYLOAD || data.len() - pos - FRAME_HEADER < len {
            return SegmentScan { records, valid_len: pos, clean: false };
        }
        let body = pos + FRAME_HEADER;
        let Some(end) = body.checked_add(len) else {
            return SegmentScan { records, valid_len: pos, clean: false };
        };
        let payload = &data[body..end];
        if fnv1a64_parts(&[&[tag], payload]) != checksum {
            return SegmentScan { records, valid_len: pos, clean: false };
        }
        records.push(Record { tag, payload: payload.to_vec() });
        pos = end;
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Lists `(seq, path)` of every WAL segment in `dir`, ascending.
fn list_segments(io: &IoHandle, dir: &Path) -> Result<BTreeMap<u64, PathBuf>, StoreError> {
    let mut out = BTreeMap::new();
    for path in io.list_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.insert(seq, path);
        }
    }
    Ok(out)
}

/// A segment-based append-only write-ahead log (see the module docs).
pub struct Wal {
    io: IoHandle,
    dir: PathBuf,
    active_seq: u64,
    active_len: u64,
    segment_bytes: u64,
    /// Whether `open` had to cut a torn tail off a segment.
    repaired_tail: bool,
    /// `(seq, valid_len)` of a failed in-process rollback: a commit
    /// left torn bytes on disk and couldn't truncate them. The next
    /// commit (or explicit [`Wal::repair`]) retries the truncation
    /// before writing anything new.
    pending_repair: Option<(u64, u64)>,
}

impl Wal {
    /// Opens (or creates) the log in `dir` with the default segment
    /// roll-over size, repairing a torn tail on the active segment.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        Self::with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`Self::open`] with an explicit segment roll-over size.
    pub fn with_segment_bytes<P: AsRef<Path>>(
        dir: P,
        segment_bytes: u64,
    ) -> Result<Self, StoreError> {
        Self::open_with_io(dir, segment_bytes, IoHandle::real())
    }

    /// [`Self::open`] over an explicit IO layer (chaos tests inject
    /// faults here).
    pub fn open_with_io<P: AsRef<Path>>(
        dir: P,
        segment_bytes: u64,
        io: IoHandle,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)?;
        let segments = list_segments(&io, &dir)?;
        let active_seq = segments.keys().next_back().copied().unwrap_or(0);
        let mut repaired_tail = false;
        let mut active_len = 0;
        // Repair the tail of the last segment holding data: keep
        // exactly the checksum-valid prefix so future appends continue
        // a readable log. Trailing *empty* segments (leaked by a
        // faulted rotation) are skipped — they hold nothing to repair,
        // and appends resume in the highest-numbered one.
        for (&seq, path) in segments.iter().rev() {
            let data = io.read_file(path)?;
            if data.is_empty() {
                continue;
            }
            let scan = scan_segment(&data);
            if !scan.clean {
                io.set_len(path, scan.valid_len as u64)?;
                io.sync(path)?;
                repaired_tail = true;
            }
            if seq == active_seq {
                active_len = scan.valid_len as u64;
            }
            break;
        }
        if !segments.contains_key(&active_seq) {
            // Fresh log: materialize segment zero so `segments()` and
            // `sync()` see it, matching the pre-IO-layer behaviour.
            io.write_at(&segment_path(&dir, active_seq), 0, &[])?;
        }
        Ok(Self {
            io,
            dir,
            active_seq,
            active_len,
            segment_bytes,
            repaired_tail,
            pending_repair: None,
        })
    }

    /// Whether [`Self::open`] found (and cut off) a torn tail.
    pub fn repaired_tail(&self) -> bool {
        self.repaired_tail
    }

    /// The configured segment roll-over size.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Sequence number of the segment currently receiving appends.
    pub fn active_segment(&self) -> u64 {
        self.active_seq
    }

    /// Retry counters of the underlying IO handle.
    pub fn io_stats(&self) -> IoStatsSnapshot {
        self.io.stats()
    }

    /// Sequence numbers of every on-disk segment, ascending.
    pub fn segments(&self) -> Result<Vec<u64>, StoreError> {
        Ok(list_segments(&self.io, &self.dir)?.into_keys().collect())
    }

    /// Total bytes across all on-disk segments.
    pub fn total_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0u64;
        for path in list_segments(&self.io, &self.dir)?.values() {
            total = total.saturating_add(self.io.file_len(path)?);
        }
        Ok(total)
    }

    /// Retries the truncation a failed commit rollback left behind.
    /// Until it succeeds, the segment carries torn bytes past
    /// `active_len` that every new write must land *after* truncating —
    /// otherwise a reader could see garbage spliced between records.
    pub fn repair(&mut self) -> Result<(), StoreError> {
        if let Some((seq, valid_len)) = self.pending_repair {
            let path = segment_path(&self.dir, seq);
            self.io.set_len(&path, valid_len)?;
            self.pending_repair = None;
        }
        Ok(())
    }

    /// Whether a failed rollback is waiting for [`Self::repair`].
    pub fn needs_repair(&self) -> bool {
        self.pending_repair.is_some()
    }

    /// Encodes one record frame. Oversized payloads are a typed error,
    /// not a panic — an ingestion caller sheds the one record and keeps
    /// going (PR 7 degradation ladder).
    fn frame(tag: u8, payload: &[u8]) -> Result<Vec<u8>, StoreError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StoreError::Corrupt("record payload over MAX_PAYLOAD"));
        }
        let len = u32::try_from(payload.len())
            .map_err(|_| StoreError::Corrupt("record payload over MAX_PAYLOAD"))?;
        let mut frame = Vec::with_capacity(FRAME_HEADER.saturating_add(payload.len()));
        frame.extend_from_slice(&len.to_le_bytes());
        frame.push(tag);
        frame.extend_from_slice(&fnv1a64_parts(&[&[tag], payload]).to_le_bytes());
        frame.extend_from_slice(payload);
        Ok(frame)
    }

    /// Appends one record, rolling to a new segment first if the active
    /// one is full. Returns the number of bytes written (frame included).
    ///
    /// The record is **not** durable until [`Self::sync`] succeeds; for
    /// an all-or-nothing durable append use [`Self::commit`].
    pub fn append(&mut self, tag: u8, payload: &[u8]) -> Result<u64, StoreError> {
        self.repair()?;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        let frame = Self::frame(tag, payload)?;
        let path = segment_path(&self.dir, self.active_seq);
        if let Err(e) = self.io.write_at(&path, self.active_len, &frame) {
            self.rollback(self.active_len);
            return Err(e);
        }
        self.active_len = self.active_len.saturating_add(frame.len() as u64);
        Ok(frame.len() as u64)
    }

    /// Durably appends a group of records **all-or-nothing**: every
    /// frame is written and fsynced, or the segment is rolled back to
    /// its pre-commit length and the error returned. After an `Err`,
    /// the log contains no trace of the group (modulo a torn tail that
    /// [`Self::repair`] / the next commit truncates), so a caller may
    /// simply retry the whole group — there is no window in which a
    /// *later* record (e.g. a finalize digest) could become durable
    /// while an *earlier* one (its batch) is not.
    pub fn commit(&mut self, records: &[(u8, &[u8])]) -> Result<u64, StoreError> {
        self.repair()?;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        let mut buf = Vec::new();
        for &(tag, payload) in records {
            buf.extend_from_slice(&Self::frame(tag, payload)?);
        }
        let pre_len = self.active_len;
        let path = segment_path(&self.dir, self.active_seq);
        let result = self
            .io
            .write_at(&path, pre_len, &buf)
            .and_then(|()| self.io.sync(&path));
        match result {
            Ok(()) => {
                self.active_len = pre_len.saturating_add(buf.len() as u64);
                Ok(buf.len() as u64)
            }
            Err(e) => {
                self.rollback(pre_len);
                Err(e)
            }
        }
    }

    /// Truncates the active segment back to `pre_len` after a failed
    /// write, arming `pending_repair` if even the truncation fails.
    fn rollback(&mut self, pre_len: u64) {
        let path = segment_path(&self.dir, self.active_seq);
        match self.io.set_len(&path, pre_len) {
            Ok(()) => {
                // Make the truncation itself durable on a best-effort
                // basis; if this sync fails the tail is already gone
                // from the file, and crash recovery would cut any
                // resurrected torn bytes anyway.
                self.io.sync(&path).ok();
            }
            Err(_) => self.pending_repair = Some((self.active_seq, pre_len)),
        }
    }

    /// Flushes appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.io.sync(&segment_path(&self.dir, self.active_seq))
    }

    /// Closes the active segment and starts a fresh one; returns the new
    /// segment's sequence number. Transactional: on failure the log
    /// keeps appending to the current segment and no half-created
    /// segment is left behind.
    pub fn rotate(&mut self) -> Result<u64, StoreError> {
        self.repair()?;
        self.io.sync(&segment_path(&self.dir, self.active_seq))?;
        let next_seq = self.active_seq + 1;
        let next_path = segment_path(&self.dir, next_seq);
        if let Err(e) = self.io.write_at(&next_path, 0, &[]) {
            // A fault may have created the file before failing; remove
            // it so no empty segment leaks ahead of the active one.
            self.io.remove(&next_path).ok();
            return Err(e);
        }
        self.active_seq = next_seq;
        self.active_len = 0;
        Ok(self.active_seq)
    }

    /// Deletes every segment with a sequence number strictly below
    /// `seq` (post-snapshot compaction). Returns how many were removed.
    /// On error some segments may already be gone; retrying is safe
    /// (replaying extra pre-snapshot segments is harmless — recovery
    /// filters records by sequence number).
    pub fn compact_below(&mut self, seq: u64) -> Result<usize, StoreError> {
        let mut removed = 0;
        for (s, path) in list_segments(&self.io, &self.dir)? {
            if s < seq && s != self.active_seq {
                self.io.remove(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Reads every record across all segments in order. A torn or
    /// bit-flipped tail on the **last segment holding data** is
    /// tolerated — the replay stops at the last checksum-valid record
    /// and reports `torn_tail = true`; invalid bytes in any earlier
    /// segment are a hard [`StoreError::Corrupt`]. Trailing empty
    /// segments (leaked by a faulted rotation) are ignored.
    pub fn replay(&self) -> Result<Replay, StoreError> {
        let segments = list_segments(&self.io, &self.dir)?;
        let mut loaded = Vec::with_capacity(segments.len());
        for (seq, path) in &segments {
            loaded.push((*seq, self.io.read_file(path)?));
        }
        let last_nonempty =
            loaded.iter().rev().find(|(_, data)| !data.is_empty()).map(|&(seq, _)| seq);
        let mut records = Vec::new();
        let mut torn_tail = false;
        for (seq, data) in &loaded {
            let scan = scan_segment(data);
            if !scan.clean {
                if Some(*seq) != last_nonempty {
                    return Err(StoreError::Corrupt("invalid record before the final segment"));
                }
                torn_tail = true;
            }
            records.extend(scan.records);
        }
        Ok(Replay { records, torn_tail })
    }
}

/// Everything [`Wal::replay`] recovered.
#[derive(Debug)]
pub struct Replay {
    /// The checksum-valid record prefix, in append order.
    pub records: Vec<Record>,
    /// Whether a torn/corrupt tail was cut off the final segment.
    pub torn_tail: bool,
}

// ---- snapshots --------------------------------------------------------

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:08}.ck"))
}

fn list_snapshots(io: &IoHandle, dir: &Path) -> Result<BTreeMap<u64, PathBuf>, StoreError> {
    let mut out = BTreeMap::new();
    for path in io.list_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".ck"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.insert(seq, path);
        }
    }
    Ok(out)
}

/// Crash-consistent, checksummed full-state snapshots (see module docs).
pub struct SnapshotStore {
    io: IoHandle,
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (or creates) the snapshot directory.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        Self::open_with_io(dir, IoHandle::real())
    }

    /// [`Self::open`] over an explicit IO layer.
    pub fn open_with_io<P: AsRef<Path>>(dir: P, io: IoHandle) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)?;
        Ok(Self { io, dir })
    }

    /// Sequence numbers of every on-disk snapshot, ascending.
    pub fn list(&self) -> Result<Vec<u64>, StoreError> {
        Ok(list_snapshots(&self.io, &self.dir)?.into_keys().collect())
    }

    /// Writes a snapshot atomically: tmp file, fsync, rename. A crash
    /// (or an injected fault) at any point leaves either no
    /// `snap-<seq>` file or a complete one — a failed write removes its
    /// temporary on a best-effort basis and never disturbs previously
    /// published snapshots.
    pub fn write(&self, seq: u64, payload: &[u8]) -> Result<u64, StoreError> {
        let path = snapshot_path(&self.dir, seq);
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut bytes = Vec::with_capacity(SNAP_HEADER.saturating_add(payload.len()));
        bytes.extend_from_slice(SNAP_MAGIC);
        bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        let write = self
            .io
            .write_file(&tmp, &bytes)
            .and_then(|()| self.io.sync(&tmp))
            .and_then(|()| self.io.rename(&tmp, &path));
        if let Err(e) = write {
            self.io.remove(&tmp).ok();
            return Err(e);
        }
        Ok(bytes.len() as u64)
    }

    /// Parses one snapshot file, verifying magic, version, length and
    /// checksum.
    fn read(&self, path: &Path, expect_seq: u64) -> Result<Vec<u8>, StoreError> {
        let data = self.io.read_file(path)?;
        if data.len() < SNAP_HEADER || &data[0..4] != SNAP_MAGIC {
            return Err(StoreError::Corrupt("bad snapshot magic"));
        }
        if u32_le_at(&data, 4) != SNAP_VERSION {
            return Err(StoreError::Corrupt("unsupported snapshot version"));
        }
        if u64_le_at(&data, 8) != expect_seq {
            return Err(StoreError::Corrupt("snapshot seq mismatch"));
        }
        let len = u64_le_at(&data, 16) as usize;
        let checksum = u64_le_at(&data, 24);
        if data.len() - SNAP_HEADER != len {
            return Err(StoreError::Corrupt("snapshot length mismatch"));
        }
        if fnv1a64(&data[SNAP_HEADER..]) != checksum {
            return Err(StoreError::Corrupt("snapshot checksum mismatch"));
        }
        Ok(data[SNAP_HEADER..].to_vec())
    }

    /// The newest snapshot that verifies, as `(seq, payload)` — corrupt
    /// or torn snapshot files are skipped in favour of older ones.
    pub fn latest(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        for (seq, path) in list_snapshots(&self.io, &self.dir)?.into_iter().rev() {
            if let Ok(payload) = self.read(&path, seq) {
                return Ok(Some((seq, payload)));
            }
        }
        Ok(None)
    }

    /// Deletes every snapshot with a sequence number strictly below
    /// `seq`. Callers typically keep the latest two (the newest plus one
    /// fallback). Returns how many were removed; on error some
    /// snapshots may already be gone, and retrying is safe.
    pub fn prune_below(&self, seq: u64) -> Result<usize, StoreError> {
        let mut removed = 0;
        for (s, path) in list_snapshots(&self.io, &self.dir)? {
            if s < seq {
                self.io.remove(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

// ---- spill file -------------------------------------------------------

/// Append-only file with positional, checksummed reads — the backing
/// store for cold-surface spill. Each entry is framed as
/// `len u32 | checksum u64 | payload`; [`SpillFile::read`] verifies the
/// frame before returning the payload, so a bad offset or bit rot
/// surfaces as [`StoreError::Corrupt`] rather than garbage state.
///
/// Spill entries are transient (rebuilt from resident state whenever the
/// process restarts or a snapshot is cut), so the file supports
/// [`SpillFile::reset`] instead of compaction.
///
/// Reads go through a **stamp-LRU page cache** (fixed
/// [`SPILL_PAGE`]-byte pages, byte budget configurable via
/// [`SpillFile::set_page_cache_budget`]): rehydration-heavy workloads
/// re-read neighbouring entries of the same surface working set, and
/// the cache turns those from one `seek` + `read` per CTrie match into
/// memory copies. The cache is a [`SharedPageCache`] — private per
/// file by default, or shared across files (one process-wide byte
/// budget) via [`SpillFile::open_with_cache`]. Append-only writes keep
/// every page below the old EOF immutable; the single partially-filled
/// EOF page is invalidated on [`SpillFile::append`] and all of this
/// file's pages on [`SpillFile::reset`], so a cached read can never be
/// stale. Checksum verification is unchanged — cached bytes still have
/// to match their frame checksum.
pub struct SpillFile {
    io: IoHandle,
    path: PathBuf,
    len: u64,
    cache: SharedPageCache,
    /// This file's key space within `cache` (process-unique).
    file_id: u64,
}

/// Frame header of one spill entry: `len u32 | checksum u64`.
const SPILL_HEADER: usize = 4 + 8;

/// Fixed page size of the [`SpillFile`] read cache.
pub const SPILL_PAGE: usize = 4096;

/// Default [`SpillFile`] page-cache budget in bytes (64 pages).
pub const DEFAULT_SPILL_CACHE_BYTES: usize = 64 * SPILL_PAGE;

/// Env var overriding the byte budget of the process-shared spill
/// page cache ([`SharedPageCache::global`]; `0` disables caching).
/// Read once, at first use of the global cache.
pub const SPILL_CACHE_ENV: &str = "NGL_SPILL_CACHE_BYTES";

/// Uniquely identifies one [`SpillFile`] within every cache it may
/// share pages with — process-wide, never reused.
static NEXT_SPILL_FILE_ID: AtomicU64 = AtomicU64::new(0);

static GLOBAL_PAGE_CACHE: OnceLock<SharedPageCache> = OnceLock::new();

/// LRU page cache shareable between [`SpillFile`]s. Pages are keyed
/// `(file id, page index)` and arbitrate **one** byte budget with a
/// monotone recency stamp per page (stamp-LRU): on overflow the
/// coldest page across *all* participating files is evicted first, so
/// a hot file naturally displaces an idle one. Eviction scans for the
/// minimum stamp — the page count is small (budget / 4 KiB), so the
/// scan is cheap and keeps the structure dependency-free.
///
/// Cloning shares the cache (it is an `Arc` internally). Each
/// [`SpillFile`] defaults to a private cache;
/// [`SpillFile::open_with_cache`] opts into sharing, and
/// [`SharedPageCache::global`] is the process-wide instance whose
/// budget [`SPILL_CACHE_ENV`] configures.
#[derive(Clone)]
pub struct SharedPageCache {
    inner: Arc<Mutex<PageCacheInner>>,
}

struct PageCacheInner {
    budget: usize,
    pages: BTreeMap<(u64, u64), (Vec<u8>, u64)>,
    bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SharedPageCache {
    /// A fresh, unshared cache with the given byte budget.
    pub fn new(budget: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(PageCacheInner {
                budget,
                pages: BTreeMap::new(),
                bytes: 0,
                clock: 0,
                hits: 0,
                misses: 0,
            })),
        }
    }

    /// The process-shared cache: one byte budget arbitrated across
    /// every spill file opened against it. The budget comes from
    /// [`SPILL_CACHE_ENV`] (read once, `0` disables caching),
    /// defaulting to [`DEFAULT_SPILL_CACHE_BYTES`].
    pub fn global() -> SharedPageCache {
        GLOBAL_PAGE_CACHE
            .get_or_init(|| {
                let budget = std::env::var(SPILL_CACHE_ENV)
                    .ok()
                    .and_then(|raw| raw.trim().parse::<usize>().ok())
                    .unwrap_or(DEFAULT_SPILL_CACHE_BYTES);
                SharedPageCache::new(budget)
            })
            .clone()
    }

    /// A poisoned mutex only means another thread panicked mid-update;
    /// the cache degrades to possibly-stale *accounting* (never stale
    /// bytes — pages are immutable below EOF), so recover the guard
    /// rather than propagate the panic.
    fn lock(&self) -> MutexGuard<'_, PageCacheInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Sets the byte budget (shared across all participating files).
    /// `0` disables caching and drops every page; shrinking evicts
    /// down to the new budget immediately.
    pub fn set_budget(&self, bytes: usize) {
        let mut inner = self.lock();
        inner.budget = bytes;
        if bytes == 0 {
            inner.pages.clear();
            inner.bytes = 0;
        } else {
            inner.evict_to_budget(None);
        }
    }

    /// The current byte budget.
    pub fn budget(&self) -> usize {
        self.lock().budget
    }

    /// Cumulative `(hits, misses)` across every participating file.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Bytes currently held by cached pages (all files).
    pub fn resident_bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Copies `take` bytes at `within` from the cached page into
    /// `out`, stamping recency. `Ok(false)` = miss (not yet counted —
    /// [`Self::insert_and_copy`] counts it when the load lands).
    fn copy_span(
        &self,
        file_id: u64,
        page_ix: u64,
        within: usize,
        take: usize,
        out: &mut Vec<u8>,
    ) -> Result<bool, StoreError> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.pages.get_mut(&(file_id, page_ix)) {
            Some((page, stamp)) => {
                *stamp = clock;
                if within.saturating_add(take) > page.len() {
                    return Err(StoreError::Corrupt("spill read past end of file"));
                }
                out.extend_from_slice(&page[within..within + take]);
                inner.hits += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Caches a freshly loaded page (counting the miss), copies
    /// `take` bytes at `within` out of it, then evicts
    /// least-recently-used pages down to the byte budget (the new page
    /// itself always stays).
    fn insert_and_copy(
        &self,
        file_id: u64,
        page_ix: u64,
        page: Vec<u8>,
        within: usize,
        take: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        if within.saturating_add(take) > page.len() {
            return Err(StoreError::Corrupt("spill read past end of file"));
        }
        out.extend_from_slice(&page[within..within + take]);
        let mut inner = self.lock();
        inner.misses += 1;
        inner.clock += 1;
        let clock = inner.clock;
        inner.bytes = inner.bytes.saturating_add(page.len());
        if let Some((old, _)) = inner.pages.insert((file_id, page_ix), (page, clock)) {
            // Another handle raced the same page in; keep accounting
            // exact rather than leaking the replaced copy's bytes.
            inner.bytes = inner.bytes.saturating_sub(old.len());
        }
        inner.evict_to_budget(Some((file_id, page_ix)));
        Ok(())
    }

    /// Drops every page of `file_id` with index ≥ `from_page` — the
    /// append-path invalidation for the partially filled EOF page.
    fn invalidate_from(&self, file_id: u64, from_page: u64) {
        let mut inner = self.lock();
        let stale: Vec<(u64, u64)> = inner
            .pages
            .range((file_id, from_page)..=(file_id, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in stale {
            if let Some((page, _)) = inner.pages.remove(&k) {
                inner.bytes -= page.len();
            }
        }
    }

    /// Drops every page of `file_id` (reset path). Other files' pages
    /// are untouched.
    fn clear_file(&self, file_id: u64) {
        self.invalidate_from(file_id, 0);
    }
}

impl PageCacheInner {
    /// Evicts minimum-stamp pages until `bytes <= budget`, never
    /// evicting `keep` (the page an in-flight read still needs).
    fn evict_to_budget(&mut self, keep: Option<(u64, u64)>) {
        while self.bytes > self.budget && self.pages.len() > 1 {
            // An empty scan is impossible while `len() > 1`, but a
            // bookkeeping bug here must degrade to an over-budget cache
            // rather than abort ingestion.
            let Some(oldest) = self
                .pages
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k)
            else {
                break;
            };
            if Some(oldest) == keep {
                break;
            }
            if let Some((page, _)) = self.pages.remove(&oldest) {
                self.bytes -= page.len();
            }
        }
    }
}

impl SpillFile {
    /// Opens (or creates) the spill file at `path`, truncating any
    /// previous contents — spilled entries never outlive the process
    /// that wrote them.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        Self::open_with_io(path, IoHandle::real())
    }

    /// [`Self::open`] over an explicit IO layer, with a private cache.
    pub fn open_with_io<P: AsRef<Path>>(path: P, io: IoHandle) -> Result<Self, StoreError> {
        Self::open_with_cache(path, io, SharedPageCache::new(DEFAULT_SPILL_CACHE_BYTES))
    }

    /// [`Self::open_with_io`] reading through an explicit (possibly
    /// shared) page cache — pass [`SharedPageCache::global`] to join
    /// the process-wide budget.
    pub fn open_with_cache<P: AsRef<Path>>(
        path: P,
        io: IoHandle,
        cache: SharedPageCache,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            io.create_dir_all(parent)?;
        }
        io.write_file(&path, &[])?;
        let file_id = NEXT_SPILL_FILE_ID.fetch_add(1, Ordering::Relaxed);
        Ok(Self { io, path, len: 0, cache, file_id })
    }

    /// Sets the page-cache byte budget. A budget of `0` disables the
    /// cache entirely — every read goes straight to the file, exactly
    /// the pre-cache behaviour. Shrinking the budget evicts down to it
    /// immediately. With a shared cache this adjusts the *shared*
    /// budget — every participating file sees the change.
    pub fn set_page_cache_budget(&mut self, bytes: usize) {
        self.cache.set_budget(bytes);
    }

    /// `(hits, misses)` of the page cache — cache-wide totals when the
    /// cache is shared.
    pub fn page_cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Bytes currently held by cached pages — cache-wide when shared.
    pub fn page_cache_resident_bytes(&self) -> usize {
        self.cache.resident_bytes()
    }

    /// Bytes currently in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been appended since the last reset.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one entry, returning the offset to read it back from.
    /// On error the logical length is unchanged: a retry rewrites the
    /// same offset, overwriting any torn bytes a failed attempt left.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|_| payload.len() <= MAX_PAYLOAD)
            .ok_or(StoreError::Corrupt("spill payload over MAX_PAYLOAD"))?;
        let offset = self.len;
        let mut frame = Vec::with_capacity(SPILL_HEADER.saturating_add(payload.len()));
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let result = self.io.write_at(&self.path, offset, &frame);
        // Every page strictly below the old EOF is immutable in an
        // append-only file; only the partially filled EOF page (if any)
        // now holds different bytes than a cached copy would. Even a
        // *failed* write may have deposited a torn prefix there, so
        // invalidate unconditionally.
        self.cache.invalidate_from(self.file_id, offset / SPILL_PAGE as u64);
        result?;
        self.len = self.len.saturating_add(frame.len() as u64);
        Ok(offset)
    }

    /// Reads back the entry appended at `offset`, verifying its frame.
    pub fn read(&mut self, offset: u64) -> Result<Vec<u8>, StoreError> {
        let head_end = offset.saturating_add(SPILL_HEADER as u64);
        if head_end > self.len {
            return Err(StoreError::Corrupt("spill offset out of range"));
        }
        let header = self.read_span(offset, SPILL_HEADER)?;
        let len = u32_le_at(&header, 0) as usize;
        let checksum = u64_le_at(&header, 4);
        if len > MAX_PAYLOAD || head_end.saturating_add(len as u64) > self.len {
            return Err(StoreError::Corrupt("spill entry length out of range"));
        }
        let payload = self.read_span(head_end, len)?;
        if fnv1a64(&payload) != checksum {
            return Err(StoreError::Corrupt("spill entry checksum mismatch"));
        }
        Ok(payload)
    }

    /// Reads `len` bytes starting at `offset`, assembling the span from
    /// cached pages (loading misses from disk). With a zero budget this
    /// degenerates to a single positional read.
    fn read_span(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        if self.cache.budget() == 0 {
            return self.io.read_at(&self.path, offset, len);
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let Some(end) = offset.checked_add(len as u64) else {
            return Err(StoreError::Corrupt("spill span overflows the offset space"));
        };
        while pos < end {
            let page_ix = pos / SPILL_PAGE as u64;
            let within = (pos % SPILL_PAGE as u64) as usize;
            let take = ((end - pos) as usize).min(SPILL_PAGE - within);
            if !self.cache.copy_span(self.file_id, page_ix, within, take, &mut out)? {
                let page = self.load_page(page_ix)?;
                self.cache.insert_and_copy(self.file_id, page_ix, page, within, take, &mut out)?;
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// Loads one page from disk. The final page of the file is short —
    /// its length is whatever remains before the current EOF.
    fn load_page(&mut self, page_ix: u64) -> Result<Vec<u8>, StoreError> {
        let start = page_ix * SPILL_PAGE as u64;
        if start >= self.len {
            return Err(StoreError::Corrupt("spill page out of range"));
        }
        let len = (SPILL_PAGE as u64).min(self.len - start) as usize;
        self.io.read_at(&self.path, start, len)
    }

    /// Discards all entries (used when every spilled surface has been
    /// rehydrated, e.g. before a snapshot or a CTrie-rebuild). Cached
    /// pages are dropped even when the truncation fails — stale reads
    /// are never served.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.cache.clear_file(self.file_id);
        self.io.set_len(&self.path, 0)?;
        self.len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ngl-store-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads() -> Vec<(u8, Vec<u8>)> {
        vec![
            (1, b"first".to_vec()),
            (2, vec![]),
            (1, vec![0xAB; 300]),
            (3, b"tail record".to_vec()),
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut wal = Wal::open(&dir).unwrap();
        for (tag, p) in payloads() {
            wal.append(tag, &p).unwrap();
        }
        wal.sync().unwrap();
        let replay = wal.replay().unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(
            replay.records,
            payloads().into_iter().map(|(tag, payload)| Record { tag, payload }).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_byte_yields_the_valid_prefix() {
        let dir = tmpdir("truncate");
        let mut wal = Wal::open(&dir).unwrap();
        let mut ends = Vec::new(); // byte offset after each record
        let mut total = 0u64;
        for (tag, p) in payloads() {
            total += wal.append(tag, &p).unwrap();
            ends.push(total);
        }
        wal.sync().unwrap();
        drop(wal);
        let seg = segment_path(&dir, 0);
        let full = std::fs::read(&seg).unwrap();
        assert_eq!(full.len() as u64, total);
        for cut in 0..=full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
            let wal = Wal::open(&dir).unwrap();
            let replay = wal.replay().unwrap();
            assert_eq!(replay.records.len(), expect, "cut at {cut}");
            assert!(!replay.torn_tail, "open() must have repaired the tail (cut {cut})");
            let at_boundary = cut == 0 || ends.contains(&(cut as u64));
            assert_eq!(wal.repaired_tail(), !at_boundary, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_final_record_is_cut_off() {
        let dir = tmpdir("bitflip");
        let mut wal = Wal::open(&dir).unwrap();
        let mut last_start = 0;
        for (tag, p) in payloads() {
            last_start = std::fs::metadata(segment_path(&dir, 0)).map(|m| m.len()).unwrap_or(0);
            wal.append(tag, &p).unwrap();
            wal.sync().unwrap();
        }
        drop(wal);
        let seg = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg).unwrap();
        let flip = last_start as usize + FRAME_HEADER; // first payload byte of last record
        data[flip] ^= 0x01;
        std::fs::write(&seg, &data).unwrap();
        let wal = Wal::open(&dir).unwrap();
        assert!(wal.repaired_tail());
        let replay = wal.replay().unwrap();
        assert_eq!(replay.records.len(), payloads().len() - 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_after_tail_repair_stay_readable() {
        let dir = tmpdir("repair-append");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(1, b"keep").unwrap();
        wal.append(2, b"gone").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let seg = segment_path(&dir, 0);
        let data = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &data[..data.len() - 2]).unwrap(); // tear the tail
        let mut wal = Wal::open(&dir).unwrap();
        assert!(wal.repaired_tail());
        wal.append(3, b"after repair").unwrap();
        wal.sync().unwrap();
        let replay = wal.replay().unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].payload, b"after repair");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_compaction() {
        let dir = tmpdir("rotate");
        // Tiny segments so appends roll over naturally.
        let mut wal = Wal::with_segment_bytes(&dir, 64).unwrap();
        for i in 0..10u8 {
            wal.append(i, &[i; 40]).unwrap();
        }
        wal.sync().unwrap();
        let segments = wal.segments().unwrap();
        assert!(segments.len() > 1, "tiny segments must have rotated: {segments:?}");
        assert_eq!(wal.replay().unwrap().records.len(), 10);
        // Compact below the active segment: only it survives.
        let active = wal.active_segment();
        let removed = wal.compact_below(active).unwrap();
        assert_eq!(removed, segments.len() - 1);
        assert_eq!(wal.segments().unwrap(), vec![active]);
        // Replay now only sees records in the surviving segment.
        assert!(wal.replay().unwrap().records.len() < 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_rotate_then_corrupt_middle_segment_is_a_hard_error() {
        let dir = tmpdir("corrupt-middle");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(1, b"segment zero").unwrap();
        wal.rotate().unwrap();
        wal.append(2, b"segment one").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip a byte in the *first* segment: not a tolerated torn tail.
        let seg0 = segment_path(&dir, 0);
        let mut data = std::fs::read(&seg0).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        std::fs::write(&seg0, &data).unwrap();
        let wal = Wal::open(&dir).unwrap();
        assert!(matches!(wal.replay(), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_fall_back_to_the_newest_valid_one() {
        let dir = tmpdir("snap");
        let snaps = SnapshotStore::open(&dir).unwrap();
        assert!(snaps.latest().unwrap().is_none());
        snaps.write(3, b"state at 3").unwrap();
        snaps.write(7, b"state at 7").unwrap();
        assert_eq!(snaps.latest().unwrap(), Some((7, b"state at 7".to_vec())));
        // Corrupt the newest: latest() falls back to seq 3.
        let p7 = snapshot_path(&dir, 7);
        let mut data = std::fs::read(&p7).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x10;
        std::fs::write(&p7, &data).unwrap();
        assert_eq!(snaps.latest().unwrap(), Some((3, b"state at 3".to_vec())));
        // Truncated newest is also skipped.
        std::fs::write(&p7, &data[..10]).unwrap();
        assert_eq!(snaps.latest().unwrap(), Some((3, b"state at 3".to_vec())));
        assert_eq!(snaps.prune_below(7).unwrap(), 1);
        assert_eq!(snaps.list().unwrap(), vec![7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_write_is_atomic_no_tmp_left_behind() {
        let dir = tmpdir("snap-atomic");
        let snaps = SnapshotStore::open(&dir).unwrap();
        snaps.write(1, &[0x55; 1000]).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        assert_eq!(snaps.latest().unwrap().unwrap().1, vec![0x55; 1000]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_file_round_trips_and_detects_rot() {
        let dir = tmpdir("spill");
        let path = dir.join("spill.dat");
        let mut spill = SpillFile::open(&path).unwrap();
        assert!(spill.is_empty());
        let a = spill.append(b"cold surface A").unwrap();
        let b = spill.append(&[0x77; 500]).unwrap();
        assert_eq!(spill.read(a).unwrap(), b"cold surface A");
        assert_eq!(spill.read(b).unwrap(), vec![0x77; 500]);
        // Reads are positional — order doesn't matter, repeats are fine.
        assert_eq!(spill.read(a).unwrap(), b"cold surface A");
        // A bogus offset is a typed error, not garbage.
        assert!(matches!(spill.read(a + 1), Err(StoreError::Corrupt(_))));
        assert!(matches!(spill.read(1 << 40), Err(StoreError::Corrupt(_))));
        spill.reset().unwrap();
        assert!(spill.is_empty());
        assert!(spill.read(a).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_page_cache_serves_repeat_reads_from_memory() {
        let dir = tmpdir("spill-cache-hits");
        let mut spill = SpillFile::open(dir.join("spill.dat")).unwrap();
        let a = spill.append(&[0x11; 64]).unwrap();
        let b = spill.append(&[0x22; 64]).unwrap();
        assert_eq!(spill.read(a).unwrap(), vec![0x11; 64]);
        let (_, misses_after_first) = spill.page_cache_stats();
        assert!(misses_after_first >= 1, "first read must load the page");
        // Both entries live on the same 4 KiB page: every subsequent
        // read is a pure cache hit.
        for _ in 0..5 {
            assert_eq!(spill.read(b).unwrap(), vec![0x22; 64]);
            assert_eq!(spill.read(a).unwrap(), vec![0x11; 64]);
        }
        let (hits, misses) = spill.page_cache_stats();
        assert_eq!(misses, misses_after_first, "repeat reads must not touch disk");
        assert!(hits >= 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_append_invalidates_the_partial_tail_page() {
        let dir = tmpdir("spill-cache-tail");
        let mut spill = SpillFile::open(dir.join("spill.dat")).unwrap();
        let a = spill.append(&[0xAA; 40]).unwrap();
        // Cache the (short, partial) tail page...
        assert_eq!(spill.read(a).unwrap(), vec![0xAA; 40]);
        // ...then grow the file: the entry landing on that same page
        // must be readable, i.e. the stale cached copy was dropped.
        let b = spill.append(&[0xBB; 40]).unwrap();
        assert_eq!(spill.read(b).unwrap(), vec![0xBB; 40]);
        assert_eq!(spill.read(a).unwrap(), vec![0xAA; 40]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_page_cache_respects_its_byte_budget() {
        let dir = tmpdir("spill-cache-budget");
        let mut spill = SpillFile::open(dir.join("spill.dat")).unwrap();
        spill.set_page_cache_budget(2 * SPILL_PAGE);
        let offsets: Vec<u64> =
            (0..8).map(|i| spill.append(&vec![i as u8; SPILL_PAGE]).unwrap()).collect();
        for &off in &offsets {
            spill.read(off).unwrap();
            assert!(
                spill.page_cache_resident_bytes() <= 2 * SPILL_PAGE + SPILL_PAGE,
                "resident {} exceeded budget + one in-flight page",
                spill.page_cache_resident_bytes()
            );
        }
        // Shrinking the budget evicts immediately; zero disables caching.
        spill.set_page_cache_budget(0);
        assert_eq!(spill.page_cache_resident_bytes(), 0);
        let (_, misses_before) = spill.page_cache_stats();
        for (i, &off) in offsets.iter().enumerate() {
            assert_eq!(spill.read(off).unwrap(), vec![i as u8; SPILL_PAGE]);
        }
        let (_, misses_after) = spill.page_cache_stats();
        assert_eq!(misses_before, misses_after, "budget 0 must bypass the cache");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_reset_clears_cached_pages() {
        let dir = tmpdir("spill-cache-reset");
        let mut spill = SpillFile::open(dir.join("spill.dat")).unwrap();
        let a = spill.append(&[0xCC; 100]).unwrap();
        assert_eq!(spill.read(a).unwrap(), vec![0xCC; 100]);
        assert!(spill.page_cache_resident_bytes() > 0);
        spill.reset().unwrap();
        assert_eq!(spill.page_cache_resident_bytes(), 0);
        // New contents after reset are served correctly (no stale page).
        let b = spill.append(&[0xDD; 100]).unwrap();
        assert_eq!(spill.read(b).unwrap(), vec![0xDD; 100]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_cache_arbitrates_one_budget_across_files() {
        let dir = tmpdir("spill-cache-shared");
        let cache = SharedPageCache::new(2 * SPILL_PAGE);
        let mut a =
            SpillFile::open_with_cache(dir.join("a.dat"), IoHandle::real(), cache.clone()).unwrap();
        let mut b =
            SpillFile::open_with_cache(dir.join("b.dat"), IoHandle::real(), cache.clone()).unwrap();
        let offs_a: Vec<u64> =
            (0..4).map(|i| a.append(&vec![0x10 + i as u8; SPILL_PAGE]).unwrap()).collect();
        let offs_b: Vec<u64> =
            (0..4).map(|i| b.append(&vec![0x20 + i as u8; SPILL_PAGE]).unwrap()).collect();
        for (&oa, &ob) in offs_a.iter().zip(&offs_b) {
            a.read(oa).unwrap();
            b.read(ob).unwrap();
            // One budget across both files: resident bytes never exceed
            // the shared cap plus one in-flight page.
            assert!(
                cache.resident_bytes() <= 2 * SPILL_PAGE + SPILL_PAGE,
                "shared resident {} exceeded the shared budget",
                cache.resident_bytes()
            );
        }
        // Per-file views report the shared totals.
        assert_eq!(a.page_cache_stats(), cache.stats());
        assert_eq!(b.page_cache_stats(), cache.stats());
        let (_, misses) = cache.stats();
        assert!(misses >= 8, "every page load is a shared-cache miss");

        // Resetting one file must not drop the other file's pages.
        let before = cache.resident_bytes();
        assert!(before > 0);
        a.reset().unwrap();
        let (_, misses_before) = cache.stats();
        assert_eq!(b.read(offs_b[3]).unwrap(), vec![0x23; SPILL_PAGE]);
        let (_, misses_after) = cache.stats();
        assert_eq!(misses_before, misses_after, "b's hot page must survive a's reset");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_cache_keeps_the_hot_file_resident() {
        let dir = tmpdir("spill-cache-hot");
        let cache = SharedPageCache::new(2 * SPILL_PAGE);
        let mut hot =
            SpillFile::open_with_cache(dir.join("hot.dat"), IoHandle::real(), cache.clone())
                .unwrap();
        let mut cold =
            SpillFile::open_with_cache(dir.join("cold.dat"), IoHandle::real(), cache.clone())
                .unwrap();
        let h = hot.append(&[0xAB; 64]).unwrap();
        hot.read(h).unwrap();
        // Stream uncached pages through the cold file while touching
        // the hot file's page between loads: stamp-LRU keeps the
        // recently-stamped hot page resident and evicts cold's older
        // pages instead, even though cold is the bigger file.
        for i in 0..6 {
            let off = cold.append(&vec![i as u8; SPILL_PAGE]).unwrap();
            cold.read(off).unwrap();
            hot.read(h).unwrap();
        }
        assert!(
            cache.resident_bytes() <= 2 * SPILL_PAGE + SPILL_PAGE,
            "cold streaming must stay inside the shared budget"
        );
        let (_, misses_before) = cache.stats();
        hot.read(h).unwrap();
        let (_, misses_after) = cache.stats();
        assert_eq!(misses_after, misses_before, "the hot page must still be cached");
        std::fs::remove_dir_all(&dir).ok();
    }
}
