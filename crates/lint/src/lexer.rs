//! A small, purpose-built lexer for the invariant lints.
//!
//! This is *not* a Rust parser. It does exactly the two things the
//! rules need and nothing more:
//!
//! 1. **Masking** — produce a copy of the source in which every string
//!    literal (plain, raw, byte, byte-raw), char literal and comment is
//!    replaced by spaces, byte for byte, with newlines preserved. Rules
//!    that pattern-match code (`unwrap(`, `Instant::now`, `as u32`, …)
//!    run over the mask, so a banned token inside a string or a doc
//!    comment never trips them.
//! 2. **Comment capture** — record the text of every comment per line,
//!    so `// SAFETY:` justifications and waiver comments can be found
//!    even though they are blanked from the mask.
//!
//! The lexer is conservative where Rust's grammar is subtle (lifetimes
//! vs. char literals, nested block comments, raw-string hash fences) —
//! those are the cases that would otherwise corrupt the mask for the
//! rest of the file.

/// One source file, masked (see module docs).
pub struct Masked {
    /// Source with strings/chars/comments blanked to spaces. Identical
    /// byte length and line structure to the input.
    pub code: String,
    /// `comment[i]` = concatenated comment text appearing on line `i`
    /// (0-based line index), delimiters stripped.
    pub comments: Vec<String>,
}

impl Masked {
    /// Lines of the masked code (0-based index).
    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }
}

/// Minimal token over masked code: identifiers (including keywords and
/// number-ish words) and single punctuation characters. Whitespace is
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier / keyword / numeric word.
    Ident(String),
    /// Any single non-ident, non-space character.
    Punct(char),
}

/// A token plus the 0-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    pub line: usize,
    pub tok: Tok,
}

/// Lexer state while masking.
enum State {
    Normal,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    Str,
    /// Number of `#` in the fence.
    RawStr(u32),
    Char,
}

/// Masks `src` (see module docs). Never fails: unterminated constructs
/// simply mask to the end of the file.
pub fn mask(src: &str) -> Masked {
    let n_lines = src.lines().count().max(1);
    let mut comments = vec![String::new(); n_lines + 1];
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Normal;
    let mut line = 0usize;
    let mut i = 0usize;

    // Pushes a masked (blanked) byte, preserving newlines.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Normal => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    blank(&mut out, b);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    blank(&mut out, b);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                b'"' => {
                    state = State::Str;
                    blank(&mut out, b);
                }
                b'r' | b'b' => {
                    // Possible raw / byte / byte-raw string start:
                    // prefix in {r, b, br}, optional `#` fence, `"`.
                    // Only applies when this byte starts a token (the
                    // `r` in `from_str` is mid-identifier).
                    let starts_token = i == 0
                        || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                    let mut j = i + 1;
                    let mut is_raw = b == b'r';
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        is_raw = true;
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while is_raw && bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if starts_token
                        && bytes.get(j) == Some(&b'"')
                        && (is_raw || j == i + 1)
                    {
                        for &pb in &bytes[i..j] {
                            out.push(pb); // keep the r/b/# prefix as code
                        }
                        blank(&mut out, b'"');
                        i = j + 1;
                        state = if is_raw { State::RawStr(hashes) } else { State::Str };
                        continue;
                    }
                    // Not a string prefix: plain identifier character.
                    out.push(b);
                }
                b'\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`). A
                    // lifetime is `'` + ident-start not followed by a
                    // closing quote.
                    let next = bytes.get(i + 1).copied();
                    let after = bytes.get(i + 2).copied();
                    let is_lifetime = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic())
                        && after != Some(b'\'');
                    if is_lifetime {
                        out.push(b);
                    } else {
                        state = State::Char;
                        blank(&mut out, b);
                    }
                }
                _ => out.push(b),
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Normal;
                    out.push(b'\n');
                } else {
                    comments[line].push(b as char);
                    blank(&mut out, b);
                }
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    blank(&mut out, b);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    if depth == 1 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    continue;
                }
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    blank(&mut out, b);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                if b == b'\n' {
                    out.push(b'\n');
                } else {
                    comments[line].push(b as char);
                    blank(&mut out, b);
                }
            }
            State::Str => match b {
                b'\\' => {
                    blank(&mut out, b);
                    if let Some(&esc) = bytes.get(i + 1) {
                        blank(&mut out, esc);
                        i += 2;
                        continue;
                    }
                }
                b'"' => {
                    state = State::Normal;
                    blank(&mut out, b);
                }
                _ => blank(&mut out, b),
            },
            State::RawStr(hashes) => {
                if b == b'"' {
                    // Close only when followed by exactly `hashes` #s.
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for &nb in &bytes[i..j] {
                            blank(&mut out, nb);
                        }
                        i = j;
                        state = State::Normal;
                        continue;
                    }
                }
                blank(&mut out, b);
            }
            State::Char => match b {
                b'\\' => {
                    blank(&mut out, b);
                    if let Some(&esc) = bytes.get(i + 1) {
                        blank(&mut out, esc);
                        i += 2;
                        continue;
                    }
                }
                b'\'' => {
                    state = State::Normal;
                    blank(&mut out, b);
                }
                b'\n' => {
                    // Unterminated char literal — bail back to code so
                    // one stray quote can't blank the rest of the file.
                    state = State::Normal;
                    out.push(b'\n');
                }
                _ => blank(&mut out, b),
            },
        }
        if b == b'\n' {
            line += 1;
        }
        i += 1;
    }

    let code = String::from_utf8_lossy(&out).into_owned();
    comments.truncate(n_lines);
    Masked { code, comments }
}

/// Tokenizes masked code into identifiers and punctuation with 0-based
/// line numbers.
pub fn tokenize(masked_code: &str) -> Vec<SpannedTok> {
    let mut toks = Vec::new();
    let mut line = 0usize;
    let mut ident = String::new();
    let mut ident_line = 0usize;
    for ch in masked_code.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if ident.is_empty() {
                ident_line = line;
            }
            ident.push(ch);
            continue;
        }
        if !ident.is_empty() {
            toks.push(SpannedTok { line: ident_line, tok: Tok::Ident(std::mem::take(&mut ident)) });
        }
        if ch == '\n' {
            line += 1;
            continue;
        }
        if !ch.is_whitespace() {
            toks.push(SpannedTok { line, tok: Tok::Punct(ch) });
        }
    }
    if !ident.is_empty() {
        toks.push(SpannedTok { line: ident_line, tok: Tok::Ident(ident) });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let s = \"unsafe unwrap()\"; // Instant::now in comment\nlet t = 1;\n";
        let m = mask(src);
        assert!(!m.code.contains("unsafe"));
        assert!(!m.code.contains("Instant"));
        assert!(m.code.contains("let s ="));
        assert!(m.code.contains("let t = 1;"));
        assert_eq!(m.code.len(), src.len());
        assert!(m.comments[0].contains("Instant::now in comment"));
    }

    #[test]
    fn raw_strings_mask_to_their_fence() {
        let src = "let s = r#\"has \"quotes\" and unwrap()\"#; let x = 2;\n";
        let m = mask(src);
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("let x = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let d = '\\n'; let e = 1;\n";
        let m = mask(src);
        assert!(m.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.code.contains("'x'"));
        assert!(m.code.contains("let e = 1;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let real = 3;\n";
        let m = mask(src);
        assert!(!m.code.contains("outer"));
        assert!(!m.code.contains("still"));
        assert!(m.code.contains("let real = 3;"));
        assert!(m.comments[0].contains("inner"));
    }

    #[test]
    fn tokens_carry_lines() {
        let toks = tokenize("a.b()\nc!\n");
        assert_eq!(
            toks,
            vec![
                SpannedTok { line: 0, tok: Tok::Ident("a".into()) },
                SpannedTok { line: 0, tok: Tok::Punct('.') },
                SpannedTok { line: 0, tok: Tok::Ident("b".into()) },
                SpannedTok { line: 0, tok: Tok::Punct('(') },
                SpannedTok { line: 0, tok: Tok::Punct(')') },
                SpannedTok { line: 1, tok: Tok::Ident("c".into()) },
                SpannedTok { line: 1, tok: Tok::Punct('!') },
            ]
        );
    }

    #[test]
    fn byte_strings_are_blanked() {
        let src = "let b = b\"unsafe\"; let r = br#\"expect(\"#; let k = 9;\n";
        let m = mask(src);
        assert!(!m.code.contains("unsafe"));
        assert!(!m.code.contains("expect"));
        assert!(m.code.contains("let k = 9;"));
    }
}
