//! `ngl-lint` — workspace invariant-lint gate.
//!
//! ```text
//! cargo run -p ngl-lint                 # lint the workspace, human output
//! cargo run -p ngl-lint -- --json out.json
//! cargo run -p ngl-lint -- --root path/to/tree
//! cargo run -p ngl-lint -- --list-rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    list_rules: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, json: None, list_rules: false, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a file argument (or `-` for stdout)")?;
                args.json = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage, exit 2 handled below
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "ngl-lint: workspace invariant lints\n\n\
         USAGE: ngl-lint [--root DIR] [--json FILE|-] [--list-rules] [--quiet]\n\n\
         Exit codes: 0 clean, 1 violations, 2 usage/IO error."
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("ngl-lint: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in ngl_lint::RULES {
            println!("{:<4}{:<18}{}", r.id, r.name, r.description);
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match ngl_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ngl-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match ngl_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ngl-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &args.json {
        let json = report.to_json();
        if json_path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("ngl-lint: failed to write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if !args.quiet {
        for d in &report.diagnostics {
            println!("{}:{}: [{} {}] {}", d.file, d.line, d.rule, d.name, d.message);
        }
        let waived = report.waivers.iter().filter(|w| w.used).count();
        println!(
            "ngl-lint: {} file(s) scanned, {} violation(s), {} active waiver(s)",
            report.files_scanned,
            report.diagnostics.len(),
            waived
        );
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
