//! # ngl-lint
//!
//! A dependency-free static-analysis pass enforcing the workspace's
//! hand-written invariants as named, individually-suppressible rules.
//! The determinism and crash-safety guarantees the pipeline tests rely
//! on (bitwise-identical outputs across `NGL_THREADS` / `NGL_KERNEL`,
//! typed-error degradation on every durable path) rest on conventions
//! no compiler checks — this crate checks them mechanically so
//! refactors can't silently erode them.
//!
//! ## Rule catalog
//!
//! | Rule | Name | Invariant |
//! |------|------|-----------|
//! | R1 | `safety-comment` | every `unsafe` block/fn/impl is preceded by a `// SAFETY:` comment (or a `# Safety` doc section) |
//! | R2 | `no-panic-paths` | no `unwrap` / `expect` / `panic!` in non-test code on ingestion/durable/store paths (`crates/store/src`, `core::durable`, `runtime::pool`) |
//! | R3 | `determinism-ban` | no `std::thread::spawn`, `Instant::now`, `SystemTime` or entropy-seeded RNG outside `ngl-runtime`, the serving shell (`ngl-serve`) and bench/CLI code |
//! | R4 | `kernel-layer` | no raw f32 dot/cosine/norm accumulation loops outside `ngl_nn::kernels` (heuristic: zip→mul→sum chains, `fold(0.0` reductions, zipped `+=` accumulators) |
//! | R5 | `checked-framing` | codec/WAL byte-framing code uses checked arithmetic: no bare narrowing `as` casts, no unchecked `+`/`+=` on length/offset operands |
//! | W1 | `waiver-reason` | every waiver comment names a known rule and carries a reason |
//!
//! ## Waivers
//!
//! A violation is suppressed by an inline waiver **with a reason**,
//! either trailing the offending line or on a comment line directly
//! above it:
//!
//! ```text
//! // ngl-lint: allow(R3, wall-clock stage timings only; never feeds computation)
//! let t0 = Instant::now();
//! ```
//!
//! `allow(R3)` without a reason — or naming an unknown rule — is
//! itself a violation (W1), so the waiver ledger stays auditable.
//!
//! ## Scope conventions
//!
//! Test code (`#[cfg(test)]` modules/items, `tests/`, `benches/`,
//! `examples/`) is exempt from R2–R5; R1 applies everywhere — an
//! unsound `unsafe` block in a test is still unsound. Fixture sources
//! under a `fixture_data` directory are skipped entirely (they exist
//! to *violate* rules).

#![forbid(unsafe_code)]

pub mod lexer;

use lexer::{Masked, SpannedTok, Tok};
use std::path::{Path, PathBuf};

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable id (`R1`..`R5`, `W1`).
    pub id: &'static str,
    /// Human-readable slug.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// The rule catalog (see crate docs).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        name: "safety-comment",
        description: "every `unsafe` is preceded by a `// SAFETY:` comment or `# Safety` doc section",
    },
    RuleInfo {
        id: "R2",
        name: "no-panic-paths",
        description: "no unwrap/expect/panic! in non-test code on durable/store/pool paths",
    },
    RuleInfo {
        id: "R3",
        name: "determinism-ban",
        description: "no thread::spawn, Instant::now, SystemTime or entropy RNG outside ngl-runtime/bench/cli",
    },
    RuleInfo {
        id: "R4",
        name: "kernel-layer",
        description: "no raw f32 dot/cosine/norm accumulation loops outside ngl_nn::kernels",
    },
    RuleInfo {
        id: "R5",
        name: "checked-framing",
        description: "codec/WAL framing code uses checked arithmetic (no narrowing `as`, no unchecked `+` on lengths)",
    },
    RuleInfo {
        id: "W1",
        name: "waiver-reason",
        description: "every ngl-lint waiver names a known rule and carries a reason",
    },
];

fn rule_name(id: &str) -> &'static str {
    RULES.iter().find(|r| r.id == id).map(|r| r.name).unwrap_or("unknown")
}

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id && r.id != "W1")
}

/// One reported violation. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: String,
    pub name: String,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// One parsed waiver comment (`allow(RULE, reason)` form). `line` is
/// 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
    /// Whether the waiver suppressed at least one violation.
    pub used: bool,
}

/// Lint result for one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub waivers: Vec<Waiver>,
}

/// Aggregated lint result for a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    pub waivers: Vec<Waiver>,
}

impl Report {
    /// No violations (reasoned waivers are fine).
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable report (stable schema, version 1).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"clean\": {},\n", self.clean()));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&d.rule),
                json_str(&d.name),
                json_str(&d.file),
                d.line,
                json_str(&d.message)
            ));
        }
        s.push_str(if self.diagnostics.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(&w.rule),
                json_str(&w.file),
                w.line,
                json_str(&w.reason),
                w.used
            ));
        }
        s.push_str(if self.waivers.is_empty() { "]\n" } else { "\n  ]\n" });
        s.push_str("}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- file classification ----------------------------------------------

/// Which rule scopes a file falls into, derived from its
/// workspace-relative path.
struct FileClass {
    /// tests/, benches/ or examples/ — exempt from R2–R5 wholesale.
    is_test_file: bool,
    /// Durable/store/pool path: R2 applies.
    r2_scope: bool,
    /// ngl-runtime / ngl-serve / bench / cli: R3 does not apply.
    r3_exempt: bool,
    /// kernels.rs itself or the bench crate (reference baselines).
    r4_exempt: bool,
    /// Codec/WAL byte-framing file: R5 applies.
    r5_scope: bool,
}

impl FileClass {
    fn of(rel: &str) -> Self {
        let is_test_file = rel.starts_with("tests/")
            || rel.contains("/tests/")
            || rel.starts_with("benches/")
            || rel.contains("/benches/")
            || rel.starts_with("examples/")
            || rel.contains("/examples/");
        let r2_scope = rel.starts_with("crates/store/src/")
            || rel == "crates/core/src/durable.rs"
            || rel == "crates/runtime/src/pool.rs";
        let r3_exempt = rel.starts_with("crates/runtime/")
            || rel.starts_with("crates/bench/")
            || rel.starts_with("crates/cli/")
            // The serving shell is wall-clock code by nature: connection
            // handling threads, batching deadlines, ack-latency metrics.
            // The deterministic pipeline it drives stays covered.
            || rel.starts_with("crates/serve/")
            || rel.starts_with("crates/lint/");
        let r4_exempt = rel == "crates/nn/src/kernels.rs"
            || rel.starts_with("crates/bench/")
            || rel.starts_with("crates/lint/");
        let r5_scope = rel == "crates/store/src/lib.rs" || rel == "crates/nn/src/codec.rs";
        Self { is_test_file, r2_scope, r3_exempt, r4_exempt, r5_scope }
    }
}

// ---- test-span detection ----------------------------------------------

/// Marks the lines covered by `#[cfg(test)]` items (modules, fns,
/// uses). Returns one flag per 0-based line.
fn test_spans(toks: &[SpannedTok], n_lines: usize) -> Vec<bool> {
    let mut test = vec![false; n_lines.max(1)];
    let mut i = 0usize;
    while i < toks.len() {
        // Match `#[cfg(` or `#![cfg(`.
        if toks[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('!')));
        if inner {
            j += 1;
        }
        if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
            i += 1;
            continue;
        }
        j += 1;
        if toks.get(j).map(|t| &t.tok) != Some(&Tok::Ident("cfg".into())) {
            i += 1;
            continue;
        }
        j += 1;
        if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
            i += 1;
            continue;
        }
        // Scan the cfg predicate for a bare `test` atom not negated by
        // a directly preceding `not(`.
        let mut depth = 1i32;
        let mut k = j + 1;
        let mut is_test_cfg = false;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth -= 1,
                Tok::Ident(id) if id == "test" => {
                    let negated = k >= 2
                        && toks[k - 1].tok == Tok::Punct('(')
                        && toks[k - 2].tok == Tok::Ident("not".into());
                    if !negated {
                        is_test_cfg = true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        // Skip the closing `]`.
        if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct(']'))) {
            k += 1;
        }
        if !is_test_cfg {
            i = k;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            for flag in test.iter_mut() {
                *flag = true;
            }
            return test;
        }
        // Mark the following item: everything until its closing `;`
        // (brace-less items) or through its brace-matched body. Skip
        // any further attributes first.
        let start_line = toks[i].line;
        let mut m = k;
        while m < toks.len() {
            if toks[m].tok == Tok::Punct('#')
                && matches!(toks.get(m + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            {
                // Skip the attribute.
                let mut depth = 0i32;
                m += 1;
                while m < toks.len() {
                    match toks[m].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                m += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                continue;
            }
            break;
        }
        // Find the end of the item.
        let mut end_line = start_line;
        let mut depth = 0i32;
        while m < toks.len() {
            match toks[m].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth <= 0 {
                        end_line = toks[m].line;
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => {
                    end_line = toks[m].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[m].line;
            m += 1;
        }
        let upper = (end_line + 1).min(test.len());
        for flag in test.iter_mut().take(upper).skip(start_line) {
            *flag = true;
        }
        i = m.max(k);
    }
    test
}

// ---- waivers ----------------------------------------------------------

struct ParsedWaiver {
    line: usize, // 0-based
    rule: String,
    reason: Option<String>,
    used: bool,
}

const WAIVER_MARK: &str = "ngl-lint:";

fn parse_waivers(masked: &Masked, diags: &mut Vec<Diagnostic>, rel: &str) -> Vec<ParsedWaiver> {
    let mut out = Vec::new();
    for (line, text) in masked.comments.iter().enumerate() {
        let Some(at) = text.find(WAIVER_MARK) else { continue };
        let rest = text[at + WAIVER_MARK.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            diags.push(Diagnostic {
                rule: "W1".into(),
                name: rule_name("W1").into(),
                file: rel.into(),
                line: line + 1,
                message: format!("malformed waiver: expected `{WAIVER_MARK} allow(RULE, reason)`"),
            });
            continue;
        };
        let Some(close) = body.rfind(')') else {
            diags.push(Diagnostic {
                rule: "W1".into(),
                name: rule_name("W1").into(),
                file: rel.into(),
                line: line + 1,
                message: "malformed waiver: missing closing `)`".into(),
            });
            continue;
        };
        let body = &body[..close];
        let (rule, reason) = match body.find(',') {
            Some(comma) => {
                let reason = body[comma + 1..].trim();
                (
                    body[..comma].trim().to_string(),
                    if reason.is_empty() { None } else { Some(reason.to_string()) },
                )
            }
            None => (body.trim().to_string(), None),
        };
        if !known_rule(&rule) {
            diags.push(Diagnostic {
                rule: "W1".into(),
                name: rule_name("W1").into(),
                file: rel.into(),
                line: line + 1,
                message: format!("waiver names unknown rule `{rule}`"),
            });
            continue;
        }
        if reason.is_none() {
            diags.push(Diagnostic {
                rule: "W1".into(),
                name: rule_name("W1").into(),
                file: rel.into(),
                line: line + 1,
                message: format!("waiver for {rule} has no reason — `allow({rule}, <why>)` required"),
            });
            continue;
        }
        out.push(ParsedWaiver { line, rule, reason, used: false });
    }
    out
}

/// Whether a (0-based) line holds no code — blank, comment-only, or an
/// attribute. These are "passive" for upward scans (SAFETY lookup,
/// waiver attachment).
fn passive_line(code_line: &str) -> bool {
    let t = code_line.trim();
    t.is_empty() || t.starts_with('#')
}

// ---- the rules --------------------------------------------------------

struct Ctx<'a> {
    rel: &'a str,
    class: FileClass,
    masked: &'a Masked,
    lines: Vec<&'a str>,
    toks: Vec<SpannedTok>,
    test_lines: Vec<bool>,
}

impl Ctx<'_> {
    fn is_test_line(&self, line: usize) -> bool {
        self.class.is_test_file || self.test_lines.get(line).copied().unwrap_or(false)
    }

    fn push(&self, diags: &mut Vec<Diagnostic>, rule: &str, line: usize, message: String) {
        diags.push(Diagnostic {
            rule: rule.into(),
            name: rule_name(rule).into(),
            file: self.rel.into(),
            line: line + 1,
            message,
        });
    }
}

fn has_safety(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// R1: every `unsafe` keyword is preceded by a SAFETY justification.
fn rule_r1(ctx: &Ctx, diags: &mut Vec<Diagnostic>) {
    for t in &ctx.toks {
        let Tok::Ident(id) = &t.tok else { continue };
        if id != "unsafe" {
            continue;
        }
        let line = t.line;
        if ctx.masked.comments.get(line).is_some_and(|c| has_safety(c)) {
            continue;
        }
        let mut ok = false;
        let mut l = line;
        while l > 0 {
            l -= 1;
            if ctx.masked.comments.get(l).is_some_and(|c| has_safety(c)) {
                ok = true;
                break;
            }
            if !passive_line(ctx.lines.get(l).copied().unwrap_or("")) {
                break;
            }
        }
        if !ok {
            ctx.push(
                diags,
                "R1",
                line,
                "`unsafe` without a preceding `// SAFETY:` comment (or `# Safety` doc section)"
                    .into(),
            );
        }
    }
}

/// R2: no unwrap/expect/panic! on durable/store/pool paths.
fn rule_r2(ctx: &Ctx, diags: &mut Vec<Diagnostic>) {
    if !ctx.class.r2_scope {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        let Tok::Ident(id) = &toks[i].tok else { continue };
        if ctx.is_test_line(toks[i].line) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].tok == Tok::Punct('.');
        let next_paren = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
        let next_bang = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
        let what = match id.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => format!(".{id}()"),
            "panic" if next_bang => "panic!".to_string(),
            _ => continue,
        };
        ctx.push(
            diags,
            "R2",
            toks[i].line,
            format!("`{what}` on a durable/store path — return a typed error instead (PR 7 degradation ladder)"),
        );
    }
}

/// R3: determinism ban outside ngl-runtime / bench / cli.
fn rule_r3(ctx: &Ctx, diags: &mut Vec<Diagnostic>) {
    if ctx.class.r3_exempt {
        return;
    }
    let toks = &ctx.toks;
    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let path_sep = |i: usize| -> bool {
        matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
    };
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        let line = t.line;
        match ident(i) {
            Some("Instant") if path_sep(i + 1) && ident(i + 3) == Some("now") => {
                ctx.push(
                    diags,
                    "R3",
                    line,
                    "`Instant::now` outside ngl-runtime/bench/cli — wall-clock reads break replay determinism".into(),
                );
            }
            Some("SystemTime") => {
                ctx.push(
                    diags,
                    "R3",
                    line,
                    "`SystemTime` outside ngl-runtime/bench/cli — wall-clock reads break replay determinism".into(),
                );
            }
            Some("spawn")
                if i >= 2 && path_sep(i - 2) && ident(i - 3) == Some("thread") =>
            {
                ctx.push(
                    diags,
                    "R3",
                    line,
                    "`thread::spawn` outside ngl-runtime — all parallelism goes through the worker pool".into(),
                );
            }
            Some(rng @ ("thread_rng" | "from_entropy" | "OsRng")) => {
                ctx.push(
                    diags,
                    "R3",
                    line,
                    format!("`{rng}` is entropy-seeded — use a seeded `StdRng` so runs are reproducible"),
                );
            }
            Some("random") if i >= 2 && path_sep(i - 2) && ident(i - 3) == Some("rand") => {
                ctx.push(
                    diags,
                    "R3",
                    line,
                    "`rand::random` is entropy-seeded — use a seeded `StdRng` so runs are reproducible".into(),
                );
            }
            _ => {}
        }
    }
}

/// R4: kernel-layer enforcement (heuristic — see crate docs).
fn rule_r4(ctx: &Ctx, diags: &mut Vec<Diagnostic>) {
    if ctx.class.r4_exempt {
        return;
    }
    // Statement segments: masked code split at `;`, `{`, `}`.
    let mut seg = String::new();
    let mut seg_line = 0usize;
    let mut line = 0usize;
    let mut flagged_lines: Vec<usize> = Vec::new();
    let flush = |seg: &mut String, seg_line: usize, flagged: &mut Vec<usize>| {
        let s = seg.as_str();
        let zip_reduce = s.contains(".zip(")
            && (s.contains(".sum") || s.contains(".fold("))
            && s.contains('*');
        let fold_acc = s.contains(".fold(0.0") && s.contains('*');
        let norm_chain = s.contains(".map(") && s.contains("powi(2)") && s.contains(".sum");
        if zip_reduce || fold_acc || norm_chain {
            flagged.push(seg_line + s.lines().count().saturating_sub(1));
        }
        seg.clear();
    };
    for ch in ctx.masked.code.chars() {
        match ch {
            ';' | '{' | '}' => {
                flush(&mut seg, seg_line, &mut flagged_lines);
                seg_line = line;
            }
            '\n' => {
                line += 1;
                seg.push('\n');
            }
            c => {
                if seg.is_empty() {
                    seg_line = line;
                }
                seg.push(c);
            }
        }
    }
    flush(&mut seg, seg_line, &mut flagged_lines);
    for l in flagged_lines {
        if !ctx.is_test_line(l) {
            ctx.push(
                diags,
                "R4",
                l,
                "raw f32 reduction loop outside ngl_nn::kernels — use kernels::{dot, cosine, sq_norm, cosine_best_of} so NGL_KERNEL stays a pure speed knob".into(),
            );
        }
    }
    // Zipped `+=` accumulators: `acc += a * b` within 3 lines of a
    // `.zip(` iterator (the classic hand-rolled dot loop).
    for (l, code) in ctx.lines.iter().enumerate() {
        if ctx.is_test_line(l) {
            continue;
        }
        let Some(pe) = code.find("+=") else { continue };
        if !code[pe..].contains('*') {
            continue;
        }
        if code.trim_start().starts_with('*') {
            continue; // elementwise update through a deref, not a reduction
        }
        let from = l.saturating_sub(3);
        if (from..=l).any(|k| ctx.lines.get(k).is_some_and(|c| c.contains(".zip("))) {
            ctx.push(
                diags,
                "R4",
                l,
                "hand-rolled zip/multiply accumulator outside ngl_nn::kernels — use the kernel layer".into(),
            );
        }
    }
}

/// R5: checked arithmetic in codec/WAL framing files.
fn rule_r5(ctx: &Ctx, diags: &mut Vec<Diagnostic>) {
    if !ctx.class.r5_scope {
        return;
    }
    let toks = &ctx.toks;
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let lengthy = |s: &str| {
        let l = s.to_ascii_lowercase();
        l.contains("len") || l.contains("offset")
    };
    // Gathers identifier names adjacent to a `+`, walking through
    // `.`/`::`/call parentheses in one direction.
    let gather = |start: usize, forward: bool| -> Vec<String> {
        let mut out = Vec::new();
        let mut idx = start as isize;
        let mut hops = 0;
        while hops < 10 {
            hops += 1;
            let Some(t) = toks.get(idx as usize) else { break };
            if (idx as usize) >= toks.len() {
                break;
            }
            match &t.tok {
                Tok::Ident(s) => out.push(s.clone()),
                Tok::Punct('.') | Tok::Punct(':') | Tok::Punct('(') | Tok::Punct(')') => {}
                _ => break,
            }
            if forward {
                idx += 1;
            } else {
                if idx == 0 {
                    break;
                }
                idx -= 1;
            }
        }
        out
    };
    for i in 0..toks.len() {
        if ctx.is_test_line(toks[i].line) {
            continue;
        }
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Ident(id) if id == "as" => {
                if let Some(Tok::Ident(target)) = toks.get(i + 1).map(|t| &t.tok) {
                    if NARROW.contains(&target.as_str()) {
                        ctx.push(
                            diags,
                            "R5",
                            line,
                            format!("bare `as {target}` narrowing in framing code — use `{target}::try_from` (or prove the bound and waive)"),
                        );
                    }
                }
            }
            Tok::Punct('+') => {
                // Skip `+=`'s RHS handling below; treat `+` and `+=`
                // the same for operand inspection.
                let compound = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('=')));
                // Exclude `+` that is part of `+=` RHS scan start.
                let rhs_start = if compound { i + 2 } else { i + 1 };
                let lhs = if i > 0 { gather(i - 1, false) } else { Vec::new() };
                let rhs = gather(rhs_start, true);
                if lhs.iter().chain(rhs.iter()).any(|s| lengthy(s)) {
                    let op = if compound { "+=" } else { "+" };
                    ctx.push(
                        diags,
                        "R5",
                        line,
                        format!("unchecked `{op}` on a length/offset operand in framing code — use `checked_add` (or prove the bound and waive)"),
                    );
                }
            }
            _ => {}
        }
    }
}

// ---- per-file driver ---------------------------------------------------

/// Lints one source file. `rel` is the workspace-relative path with
/// `/` separators — it determines rule scoping.
pub fn lint_source(rel: &str, src: &str) -> FileReport {
    let masked = lexer::mask(src);
    let toks = lexer::tokenize(&masked.code);
    let lines: Vec<&str> = masked.code.lines().collect();
    let test_lines = test_spans(&toks, lines.len());
    let ctx = Ctx { rel, class: FileClass::of(rel), masked: &masked, lines, toks, test_lines };

    let mut diags = Vec::new();
    let mut waivers = parse_waivers(&masked, &mut diags, rel);
    rule_r1(&ctx, &mut diags);
    rule_r2(&ctx, &mut diags);
    rule_r3(&ctx, &mut diags);
    rule_r4(&ctx, &mut diags);
    rule_r5(&ctx, &mut diags);

    // Apply waivers: a violation on (1-based) line D is suppressed by a
    // reasoned waiver for its rule on the same line, or on a contiguous
    // run of passive lines directly above.
    let applies = |w: &ParsedWaiver, diag_line0: usize, lines: &[&str]| -> bool {
        if w.line == diag_line0 {
            return true;
        }
        if w.line > diag_line0 {
            return false;
        }
        ((w.line + 1)..diag_line0).all(|l| passive_line(lines.get(l).copied().unwrap_or("")))
    };
    diags.retain(|d| {
        if d.rule == "W1" {
            return true;
        }
        let line0 = d.line - 1;
        for w in waivers.iter_mut() {
            if w.rule == d.rule && applies(w, line0, &ctx.lines) {
                w.used = true;
                return false;
            }
        }
        true
    });

    FileReport {
        diagnostics: diags,
        waivers: waivers
            .into_iter()
            .map(|w| Waiver {
                rule: w.rule,
                file: rel.into(),
                line: w.line + 1,
                reason: w.reason.unwrap_or_default(),
                used: w.used,
            })
            .collect(),
    }
}

// ---- workspace driver --------------------------------------------------

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixture_data", "node_modules"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

/// Lints every `.rs` file under `root` (skipping `target/`, VCS and
/// fixture directories), aggregating diagnostics sorted by file/line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let file_report = lint_source(&rel, &src);
        report.diagnostics.extend(file_report.diagnostics);
        report.waivers.extend(file_report.waivers);
        report.files_scanned += 1;
    }
    report.diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report.diagnostics.dedup();
    report.waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_without_safety_is_flagged_and_with_safety_is_not() {
        let bad = "fn f() {\n    let x = unsafe { g() };\n}\n";
        let rep = lint_source("crates/nn/src/x.rs", bad);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].rule, "R1");
        assert_eq!(rep.diagnostics[0].line, 2);

        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    let x = unsafe { g() };\n}\n";
        assert!(lint_source("crates/nn/src/x.rs", good).diagnostics.is_empty());
    }

    #[test]
    fn waiver_requires_reason() {
        let src = "fn f() {\n    // ngl-lint: allow(R1)\n    let x = unsafe { g() };\n}\n";
        let rep = lint_source("crates/nn/src/x.rs", src);
        // Unreasoned waiver is W1 and does NOT suppress the R1.
        assert!(rep.diagnostics.iter().any(|d| d.rule == "W1"));
        assert!(rep.diagnostics.iter().any(|d| d.rule == "R1"));

        let src = "fn f() {\n    // ngl-lint: allow(R1, audited by hand in PR 8)\n    let x = unsafe { g() };\n}\n";
        let rep = lint_source("crates/nn/src/x.rs", src);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.waivers.len(), 1);
        assert!(rep.waivers[0].used);
    }

    #[test]
    fn test_modules_are_exempt_from_r2_but_not_r1() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        foo().unwrap();
        let _ = unsafe { bar() };
    }
}
";
        let rep = lint_source("crates/store/src/lib.rs", src);
        assert!(rep.diagnostics.iter().all(|d| d.rule != "R2"), "{:?}", rep.diagnostics);
        assert!(rep.diagnostics.iter().any(|d| d.rule == "R1"));
    }

    #[test]
    fn banned_tokens_in_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // Instant::now is banned. .unwrap() too. panic! also.\n    \"Instant::now unwrap() unsafe\"\n}\n";
        let rep = lint_source("crates/store/src/lib.rs", src);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn json_escapes_and_schema() {
        let mut r = Report { files_scanned: 2, ..Default::default() };
        r.diagnostics.push(Diagnostic {
            rule: "R1".into(),
            name: "safety-comment".into(),
            file: "a\"b.rs".into(),
            line: 3,
            message: "msg with \"quotes\" and \\ backslash".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\\\\ backslash"));
    }
}
