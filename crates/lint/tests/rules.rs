//! Fixture-based tests for the `ngl-lint` rule engine, plus the
//! acceptance mutations from the issue: stripping a SAFETY comment
//! from the real `kernels.rs`/`pool.rs` must make the lint fail, and
//! adding an `unwrap()` to `crates/store/src/` must make it fail.
//!
//! Fixtures live in `tests/fixture_data/` (a directory `lint_workspace`
//! deliberately skips) and are linted under *synthetic* relative paths,
//! because rule scoping is path-driven.

use std::path::Path;

use ngl_lint::{find_workspace_root, lint_source, lint_workspace, Diagnostic, Report, Waiver};

fn rules(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

// ---- R1: SAFETY comments ----------------------------------------------

#[test]
fn r1_fires_on_bare_unsafe() {
    let report = lint_source("crates/nn/src/simd.rs", include_str!("fixture_data/r1_bad.rs"));
    assert_eq!(rules(&report.diagnostics), ["R1"]);
    assert_eq!(report.diagnostics[0].line, 2);
}

#[test]
fn r1_satisfied_by_safety_comment() {
    let report = lint_source("crates/nn/src/simd.rs", include_str!("fixture_data/r1_good.rs"));
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn r1_applies_even_in_test_files() {
    let report = lint_source("crates/nn/tests/simd.rs", include_str!("fixture_data/r1_bad.rs"));
    assert_eq!(rules(&report.diagnostics), ["R1"]);
}

// ---- R2: panic-free durable paths -------------------------------------

#[test]
fn r2_fires_on_store_paths_but_not_in_test_modules() {
    let src = include_str!("fixture_data/r2.rs");
    let report = lint_source("crates/store/src/fixture.rs", src);
    assert_eq!(rules(&report.diagnostics), ["R2"], "{:?}", report.diagnostics);
    assert_eq!(report.diagnostics[0].line, 2, "only the non-test unwrap");
}

#[test]
fn r2_ignores_files_outside_durable_scope() {
    let src = include_str!("fixture_data/r2.rs");
    let report = lint_source("crates/text/src/fixture.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ---- R3: determinism ban ----------------------------------------------

#[test]
fn r3_fires_on_wall_clock_and_ad_hoc_threads() {
    let src = include_str!("fixture_data/r3.rs");
    let report = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(rules(&report.diagnostics), ["R3", "R3"], "{:?}", report.diagnostics);
}

#[test]
fn r3_exempts_runtime_bench_and_cli() {
    let src = include_str!("fixture_data/r3.rs");
    for rel in
        ["crates/runtime/src/fixture.rs", "crates/bench/src/fixture.rs", "crates/cli/src/main.rs"]
    {
        let report = lint_source(rel, src);
        assert!(report.diagnostics.is_empty(), "{rel}: {:?}", report.diagnostics);
    }
}

// ---- R4: kernel-layer enforcement -------------------------------------

#[test]
fn r4_fires_on_hand_rolled_reductions() {
    let src = include_str!("fixture_data/r4.rs");
    let report = lint_source("crates/core/src/fixture.rs", src);
    let fired = rules(&report.diagnostics);
    assert!(fired.contains(&"R4"), "{:?}", report.diagnostics);
    assert!(fired.iter().all(|r| *r == "R4"), "{:?}", report.diagnostics);
    assert!(report.diagnostics.len() >= 2, "both the chain and the loop: {:?}", report.diagnostics);
}

#[test]
fn r4_exempts_the_kernel_layer_itself() {
    let src = include_str!("fixture_data/r4.rs");
    let report = lint_source("crates/nn/src/kernels.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ---- R5: checked framing arithmetic -----------------------------------

#[test]
fn r5_fires_on_bare_narrowing_and_unchecked_adds() {
    let src = include_str!("fixture_data/r5_bad.rs");
    let report = lint_source("crates/nn/src/codec.rs", src);
    assert_eq!(rules(&report.diagnostics), ["R5", "R5"], "{:?}", report.diagnostics);
}

#[test]
fn r5_accepts_try_from_and_checked_add() {
    let src = include_str!("fixture_data/r5_good.rs");
    let report = lint_source("crates/nn/src/codec.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn r5_only_applies_to_framing_files() {
    let src = include_str!("fixture_data/r5_bad.rs");
    let report = lint_source("crates/core/src/fixture.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ---- waivers -----------------------------------------------------------

#[test]
fn reasoned_waiver_suppresses_and_is_marked_used() {
    let report =
        lint_source("crates/core/src/fixture.rs", include_str!("fixture_data/r3_waived.rs"));
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.waivers.len(), 1);
    assert!(report.waivers[0].used);
    assert_eq!(report.waivers[0].rule, "R3");
    assert!(!report.waivers[0].reason.is_empty());
}

#[test]
fn waiver_without_reason_is_rejected_and_does_not_suppress() {
    let report =
        lint_source("crates/core/src/fixture.rs", include_str!("fixture_data/waiver_no_reason.rs"));
    let fired = rules(&report.diagnostics);
    assert!(fired.contains(&"W1"), "{:?}", report.diagnostics);
    assert!(fired.contains(&"R3"), "rejected waiver must not suppress: {:?}", report.diagnostics);
    assert!(report.waivers.is_empty());
}

#[test]
fn waiver_naming_unknown_rule_is_rejected() {
    let report = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixture_data/waiver_unknown_rule.rs"),
    );
    assert_eq!(rules(&report.diagnostics), ["W1"]);
}

#[test]
fn unused_reasoned_waiver_is_reported_but_not_an_error() {
    let report =
        lint_source("crates/core/src/fixture.rs", include_str!("fixture_data/waiver_unused.rs"));
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.waivers.len(), 1);
    assert!(!report.waivers[0].used);
}

// ---- JSON schema -------------------------------------------------------

#[test]
fn json_report_has_the_stable_v1_schema() {
    let report = Report {
        files_scanned: 2,
        diagnostics: vec![Diagnostic {
            rule: "R1".into(),
            name: "safety-comment".into(),
            file: "crates/nn/src/\"odd\".rs".into(),
            line: 3,
            message: "line one\nline two".into(),
        }],
        waivers: vec![Waiver {
            rule: "R3".into(),
            file: "crates/core/src/pipeline.rs".into(),
            line: 9,
            reason: "stage timing only".into(),
            used: true,
        }],
    };
    let json = report.to_json();
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"files_scanned\": 2"), "{json}");
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(json.contains(r#""rule": "R1""#), "{json}");
    assert!(json.contains(r#"\"odd\""#), "quotes must be escaped: {json}");
    assert!(json.contains(r"line one\nline two"), "newlines must be escaped: {json}");
    assert!(json.contains(r#""used": true"#), "{json}");

    let clean = Report { files_scanned: 0, diagnostics: vec![], waivers: vec![] };
    let json = clean.to_json();
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("\"diagnostics\": []"), "{json}");
}

// ---- the workspace itself ---------------------------------------------

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

#[test]
fn workspace_is_lint_clean_with_reasoned_waivers_only() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan saw {} files", report.files_scanned);
    assert!(
        report.clean(),
        "workspace must lint clean at HEAD:\n{:#?}",
        report.diagnostics
    );
    for w in &report.waivers {
        assert!(!w.reason.is_empty(), "unreasoned waiver survived: {w:?}");
    }
}

// ---- acceptance mutations ---------------------------------------------

fn read_real(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel)).expect(rel)
}

#[test]
fn stripping_safety_comments_from_kernels_fails_r1() {
    let rel = "crates/nn/src/kernels.rs";
    let src = read_real(rel);
    let baseline = lint_source(rel, &src);
    assert!(baseline.diagnostics.is_empty(), "{:?}", baseline.diagnostics);

    let mutated = src.replace("SAFETY:", "NOTE:").replace("# Safety", "# Notes");
    assert_ne!(src, mutated, "kernels.rs must actually carry SAFETY comments");
    let report = lint_source(rel, &mutated);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "R1"),
        "deleting SAFETY comments must trip R1: {:?}",
        report.diagnostics
    );
}

#[test]
fn stripping_safety_comments_from_pool_fails_r1() {
    let rel = "crates/runtime/src/pool.rs";
    let src = read_real(rel);
    let baseline = lint_source(rel, &src);
    assert!(baseline.diagnostics.is_empty(), "{:?}", baseline.diagnostics);

    let mutated = src.replace("SAFETY:", "NOTE:").replace("# Safety", "# Notes");
    assert_ne!(src, mutated, "pool.rs must actually carry SAFETY comments");
    let report = lint_source(rel, &mutated);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "R1"),
        "deleting SAFETY comments must trip R1: {:?}",
        report.diagnostics
    );
}

#[test]
fn adding_an_unwrap_to_the_store_fails_r2() {
    let rel = "crates/store/src/lib.rs";
    let src = read_real(rel);
    let baseline = lint_source(rel, &src);
    assert!(baseline.diagnostics.is_empty(), "{:?}", baseline.diagnostics);

    let mutated = format!(
        "{src}\npub fn injected_regression(v: &[u8]) -> u8 {{\n    v.first().copied().unwrap()\n}}\n"
    );
    let report = lint_source(rel, &mutated);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "R2"),
        "a fresh unwrap in the store must trip R2: {:?}",
        report.diagnostics
    );
}
