pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn run(f: impl FnOnce() + Send + 'static) {
    std::thread::spawn(f);
}
