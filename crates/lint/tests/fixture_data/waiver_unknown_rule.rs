pub fn nothing() {
    // ngl-lint: allow(R9, this rule does not exist)
}
