pub fn stamp() -> std::time::Instant {
    // ngl-lint: allow(R3)
    std::time::Instant::now()
}
