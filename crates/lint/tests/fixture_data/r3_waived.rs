pub fn stamp() -> std::time::Instant {
    // ngl-lint: allow(R3, fixture exercises the waiver suppression path)
    std::time::Instant::now()
}
