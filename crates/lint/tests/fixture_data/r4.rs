pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

pub fn dot_loop(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}
