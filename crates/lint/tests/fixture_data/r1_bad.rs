pub fn peek(v: &[f32]) -> f32 {
    unsafe { *v.get_unchecked(0) }
}
