pub fn header(len: usize, offset: usize) -> (u32, usize) {
    let word = len as u32;
    let end = offset + len;
    (word, end)
}
