// ngl-lint: allow(R2, nothing here actually panics; the waiver is stale)
pub fn quiet() -> usize {
    0
}
