pub fn read_len(bytes: &[u8]) -> usize {
    let first = bytes.first().copied().unwrap();
    first as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
