pub fn header(len: usize, offset: usize) -> Option<(u32, usize)> {
    let word = u32::try_from(len).ok()?;
    let end = offset.checked_add(len)?;
    Some((word, end))
}
