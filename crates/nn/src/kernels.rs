//! Fused compute kernels with a fixed, dispatch-independent
//! accumulation order, plus the i8 symmetric quantization used for
//! stored embeddings.
//!
//! ## Determinism contract
//!
//! Every reducing kernel (dot, squared norm, fused cosine) accumulates
//! into **8 fixed lanes**: the input is consumed in chunks of 8, lane
//! `j` only ever sees elements `8k + j`, and a short tail is
//! zero-padded to a full chunk and pushed through the identical lane
//! step. The final reduction is the fixed tree
//! `s_j = l_j + l_{j+4}` for `j < 4`, then `(s_0 + s_2) + (s_1 + s_3)`.
//!
//! The scalar path executes this order with plain `f32` ops; the SIMD
//! paths (SSE2 always on x86_64, AVX when detected at runtime) execute
//! the *same* per-lane multiply-add sequence with packed ops — one
//! IEEE multiply and one IEEE add per element per path, no FMA
//! contraction — so scalar and SIMD results are **bitwise identical**
//! for every input, which keeps pipeline outputs stable across
//! `NGL_KERNEL` and `NGL_THREADS` settings.
//!
//! ## Dispatch
//!
//! `NGL_KERNEL=scalar|simd` selects the path at first use (default:
//! `simd`, which falls back to scalar off x86_64);
//! [`set_kernel_mode`] overrides it at runtime for tests and benches.
//! Block scans resolve the kernel function once via [`dot_fn`] /
//! [`cosine_fn`] instead of re-dispatching per row.
//!
//! ## Quantized storage
//!
//! [`QuantizedVec`] stores a vector as one `f32` scale plus one `i8`
//! per element (~4× smaller at rest). The scale is constrained to a
//! **power of two**, so quantize/dequantize arithmetic is exact in
//! `f32` and the codec is *canonical*: re-encoding a dequantized
//! vector reproduces the identical `(scale, i8…)` bytes. Embeddings
//! are [`canonicalize`]d once at creation ("i8 at rest, f32 in
//! compute"), after which every storage round-trip is lossless.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lane count of the fixed accumulation order (one AVX register of
/// `f32`, or two SSE registers).
pub const LANES: usize = 8;

/// Env var selecting the kernel path (`scalar` or `simd`).
pub const KERNEL_ENV: &str = "NGL_KERNEL";

/// Which kernel implementation backs the dispatched entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Plain `f32` loops in the fixed 8-lane order.
    Scalar,
    /// `core::arch` packed ops (AVX or SSE2 on x86_64) in the same
    /// order; identical results bitwise. Falls back to scalar on
    /// non-x86_64 targets.
    Simd,
}

/// 0 = unresolved, 1 = scalar, 2 = simd.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The active kernel mode, resolving `NGL_KERNEL` on first use
/// (unknown or missing values default to [`KernelMode::Simd`]).
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Scalar,
        2 => KernelMode::Simd,
        _ => {
            let mode = match std::env::var(KERNEL_ENV).ok().as_deref() {
                Some("scalar") => KernelMode::Scalar,
                _ => KernelMode::Simd,
            };
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Overrides the dispatched kernel path. Safe at any point — both
/// paths produce bitwise-identical results — so tests can flip modes
/// mid-process to compare them.
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(
        match mode {
            KernelMode::Scalar => 1,
            KernelMode::Simd => 2,
        },
        Ordering::Relaxed,
    );
}

/// Signature of the one-vs-one reducing kernels.
pub type VecKernel = fn(&[f32], &[f32]) -> f32;

// ---- fixed-order scalar reference ------------------------------------

/// Zero-pads a short tail to one full lane chunk.
#[inline(always)]
fn tail_pad(src: &[f32]) -> [f32; LANES] {
    let mut buf = [0.0f32; LANES];
    buf[..src.len()].copy_from_slice(src);
    buf
}

/// The fixed reduction tree shared by every path.
#[inline(always)]
fn reduce8(l: [f32; LANES]) -> f32 {
    let s0 = l[0] + l[4];
    let s1 = l[1] + l[5];
    let s2 = l[2] + l[6];
    let s3 = l[3] + l[7];
    (s0 + s2) + (s1 + s3)
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            lanes[j] += x[j] * y[j];
        }
    }
    if !ca.remainder().is_empty() {
        let x = tail_pad(ca.remainder());
        let y = tail_pad(cb.remainder());
        for j in 0..LANES {
            lanes[j] += x[j] * y[j];
        }
    }
    reduce8(lanes)
}

fn sq_norm_scalar(a: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    for x in &mut ca {
        for j in 0..LANES {
            lanes[j] += x[j] * x[j];
        }
    }
    if !ca.remainder().is_empty() {
        let x = tail_pad(ca.remainder());
        for j in 0..LANES {
            lanes[j] += x[j] * x[j];
        }
    }
    reduce8(lanes)
}

/// Guard against the zero vector, matching `cosine::EPS`.
const COS_EPS: f32 = 1e-12;

/// Combines the three fused accumulations into the clamped similarity.
#[inline(always)]
fn cosine_finish(dot: f32, na: f32, nb: f32) -> f32 {
    let denom = (na.sqrt() * nb.sqrt()).max(COS_EPS);
    (dot / denom).clamp(-1.0, 1.0)
}

fn cosine_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ld = [0.0f32; LANES];
    let mut la = [0.0f32; LANES];
    let mut lb = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            ld[j] += x[j] * y[j];
            la[j] += x[j] * x[j];
            lb[j] += y[j] * y[j];
        }
    }
    if !ca.remainder().is_empty() {
        let x = tail_pad(ca.remainder());
        let y = tail_pad(cb.remainder());
        for j in 0..LANES {
            ld[j] += x[j] * y[j];
            la[j] += x[j] * x[j];
            lb[j] += y[j] * y[j];
        }
    }
    cosine_finish(reduce8(ld), reduce8(la), reduce8(lb))
}

fn axpy_scalar(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

// ---- SIMD paths (x86_64) ---------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{cosine_finish, tail_pad, LANES};
    use core::arch::x86_64::*;

    /// `(s_0 + s_2) + (s_1 + s_3)` of `s_j = l_j + l_{j+4}`, where `s`
    /// is already the packed 4-lane sum. SSE value intrinsics are part
    /// of the x86_64 baseline, so this is a safe function.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn reduce4(s: __m128) -> f32 {
        // t = (s0+s2, s1+s3, ..)
        let t = _mm_add_ps(s, _mm_movehl_ps(s, s));
        // u0 = (s0+s2) + (s1+s3)
        let u = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0b01));
        _mm_cvtss_f32(u)
    }

    macro_rules! avx_reduce {
        ($acc:expr) => {{
            let lo = _mm256_castps256_ps128($acc);
            let hi = _mm256_extractf128_ps($acc, 1);
            // s_j = l_j + l_{j+4}
            reduce4(_mm_add_ps(lo, hi))
        }};
    }

    /// 8-lane AVX dot. `#[target_feature]` makes this unsafe to call
    /// unless the caller guarantees AVX (`avx_available()`). Lengths
    /// need not match: the reduction runs over the common prefix,
    /// exactly like the scalar `zip` path.
    #[target_feature(enable = "avx")]
    pub fn dot_avx(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc = _mm256_setzero_ps();
        for k in 0..chunks {
            // SAFETY: k < chunks = n / LANES, so [k*LANES, k*LANES + 8)
            // is in bounds of both slices (n <= a.len(), b.len()).
            let (x, y) = unsafe {
                (
                    _mm256_loadu_ps(a.as_ptr().add(k * LANES)),
                    _mm256_loadu_ps(b.as_ptr().add(k * LANES)),
                )
            };
            acc = _mm256_add_ps(acc, _mm256_mul_ps(x, y));
        }
        if !n.is_multiple_of(LANES) {
            let x = tail_pad(&a[chunks * LANES..n]);
            let y = tail_pad(&b[chunks * LANES..n]);
            // SAFETY: tail_pad returns an owned [f32; LANES] on the
            // stack, so one 8-lane load from its start is in bounds.
            let (xv, yv) = unsafe { (_mm256_loadu_ps(x.as_ptr()), _mm256_loadu_ps(y.as_ptr())) };
            acc = _mm256_add_ps(acc, _mm256_mul_ps(xv, yv));
        }
        avx_reduce!(acc)
    }

    /// 8-lane AVX squared norm; unsafe to call unless the caller
    /// guarantees AVX (`avx_available()`).
    #[target_feature(enable = "avx")]
    pub fn sq_norm_avx(a: &[f32]) -> f32 {
        let chunks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        for k in 0..chunks {
            // SAFETY: k < chunks = len / LANES, so the 8-lane load at
            // k*LANES is in bounds.
            let x = unsafe { _mm256_loadu_ps(a.as_ptr().add(k * LANES)) };
            acc = _mm256_add_ps(acc, _mm256_mul_ps(x, x));
        }
        if !a.len().is_multiple_of(LANES) {
            let x = tail_pad(&a[chunks * LANES..]);
            // SAFETY: tail_pad returns an owned [f32; LANES]; the
            // 8-lane load from its start is in bounds.
            let xv = unsafe { _mm256_loadu_ps(x.as_ptr()) };
            acc = _mm256_add_ps(acc, _mm256_mul_ps(xv, xv));
        }
        avx_reduce!(acc)
    }

    /// 8-lane AVX fused cosine; unsafe to call unless the caller
    /// guarantees AVX (`avx_available()`). Lengths need not match: the
    /// reduction runs over the common prefix, exactly like the scalar
    /// `zip` path.
    #[target_feature(enable = "avx")]
    pub fn cosine_avx(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut ad = _mm256_setzero_ps();
        let mut aa = _mm256_setzero_ps();
        let mut ab = _mm256_setzero_ps();
        for k in 0..chunks {
            // SAFETY: k < chunks = n / LANES, so [k*LANES, k*LANES + 8)
            // is in bounds of both slices (n <= a.len(), b.len()).
            let (x, y) = unsafe {
                (
                    _mm256_loadu_ps(a.as_ptr().add(k * LANES)),
                    _mm256_loadu_ps(b.as_ptr().add(k * LANES)),
                )
            };
            ad = _mm256_add_ps(ad, _mm256_mul_ps(x, y));
            aa = _mm256_add_ps(aa, _mm256_mul_ps(x, x));
            ab = _mm256_add_ps(ab, _mm256_mul_ps(y, y));
        }
        if !n.is_multiple_of(LANES) {
            let x = tail_pad(&a[chunks * LANES..n]);
            let y = tail_pad(&b[chunks * LANES..n]);
            // SAFETY: tail_pad returns owned [f32; LANES] buffers, so
            // 8-lane loads from their starts are in bounds.
            let (xv, yv) = unsafe { (_mm256_loadu_ps(x.as_ptr()), _mm256_loadu_ps(y.as_ptr())) };
            ad = _mm256_add_ps(ad, _mm256_mul_ps(xv, yv));
            aa = _mm256_add_ps(aa, _mm256_mul_ps(xv, xv));
            ab = _mm256_add_ps(ab, _mm256_mul_ps(yv, yv));
        }
        cosine_finish(avx_reduce!(ad), avx_reduce!(aa), avx_reduce!(ab))
    }

    /// 8-lane AVX in-place `y += alpha * x`; unsafe to call unless
    /// the caller guarantees AVX (`avx_available()`). Lengths need not
    /// match: the update runs over the common prefix, exactly like the
    /// scalar `zip` path.
    #[target_feature(enable = "avx")]
    pub fn axpy_avx(y: &mut [f32], alpha: f32, x: &[f32]) {
        let n = y.len().min(x.len());
        let chunks = n / LANES;
        let al = _mm256_set1_ps(alpha);
        for k in 0..chunks {
            // SAFETY: k < chunks = n / LANES, so the 8-lane load/store
            // window [k*LANES, k*LANES + 8) is in bounds of both
            // slices; x and y are distinct borrows, so no aliasing.
            unsafe {
                let xv = _mm256_loadu_ps(x.as_ptr().add(k * LANES));
                let yv = _mm256_loadu_ps(y.as_ptr().add(k * LANES));
                _mm256_storeu_ps(
                    y.as_mut_ptr().add(k * LANES),
                    _mm256_add_ps(yv, _mm256_mul_ps(al, xv)),
                );
            }
        }
        // Elementwise op: a scalar tail is bitwise identical.
        for i in chunks * LANES..n {
            y[i] += alpha * x[i];
        }
    }

    /// SSE2 versions: two 128-bit accumulators standing in for the
    /// low/high halves of the 8-lane register. `#[target_feature]`
    /// makes these unsafe to call, but the caller's obligation — SSE2
    /// support — is part of the x86_64 baseline, so every x86_64 call
    /// site discharges it trivially.
    #[target_feature(enable = "sse2")]
    pub fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        for k in 0..chunks {
            // SAFETY: k < chunks = n / LANES, so offsets up to
            // k*LANES + 8 are in bounds of both slices.
            let (x0, y0, x1, y1) = unsafe {
                (
                    _mm_loadu_ps(a.as_ptr().add(k * LANES)),
                    _mm_loadu_ps(b.as_ptr().add(k * LANES)),
                    _mm_loadu_ps(a.as_ptr().add(k * LANES + 4)),
                    _mm_loadu_ps(b.as_ptr().add(k * LANES + 4)),
                )
            };
            lo = _mm_add_ps(lo, _mm_mul_ps(x0, y0));
            hi = _mm_add_ps(hi, _mm_mul_ps(x1, y1));
        }
        if !n.is_multiple_of(LANES) {
            let x = tail_pad(&a[chunks * LANES..n]);
            let y = tail_pad(&b[chunks * LANES..n]);
            // SAFETY: tail_pad returns owned [f32; LANES] (= 8) stack
            // buffers, so 4-lane loads at offsets 0 and 4 are in
            // bounds.
            unsafe {
                lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(x.as_ptr()), _mm_loadu_ps(y.as_ptr())));
                hi = _mm_add_ps(
                    hi,
                    _mm_mul_ps(_mm_loadu_ps(x.as_ptr().add(4)), _mm_loadu_ps(y.as_ptr().add(4))),
                );
            }
        }
        reduce4(_mm_add_ps(lo, hi))
    }

    #[target_feature(enable = "sse2")]
    pub fn sq_norm_sse2(a: &[f32]) -> f32 {
        dot_sse2(a, a)
    }

    #[target_feature(enable = "sse2")]
    pub fn cosine_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut d_lo = _mm_setzero_ps();
        let mut d_hi = _mm_setzero_ps();
        let mut a_lo = _mm_setzero_ps();
        let mut a_hi = _mm_setzero_ps();
        let mut b_lo = _mm_setzero_ps();
        let mut b_hi = _mm_setzero_ps();
        let mut step = |x0: __m128, y0: __m128, x1: __m128, y1: __m128| {
            d_lo = _mm_add_ps(d_lo, _mm_mul_ps(x0, y0));
            d_hi = _mm_add_ps(d_hi, _mm_mul_ps(x1, y1));
            a_lo = _mm_add_ps(a_lo, _mm_mul_ps(x0, x0));
            a_hi = _mm_add_ps(a_hi, _mm_mul_ps(x1, x1));
            b_lo = _mm_add_ps(b_lo, _mm_mul_ps(y0, y0));
            b_hi = _mm_add_ps(b_hi, _mm_mul_ps(y1, y1));
        };
        for k in 0..chunks {
            // SAFETY: k < chunks = n / LANES, so offsets up to
            // k*LANES + 8 are in bounds of both slices.
            let (x0, y0, x1, y1) = unsafe {
                (
                    _mm_loadu_ps(a.as_ptr().add(k * LANES)),
                    _mm_loadu_ps(b.as_ptr().add(k * LANES)),
                    _mm_loadu_ps(a.as_ptr().add(k * LANES + 4)),
                    _mm_loadu_ps(b.as_ptr().add(k * LANES + 4)),
                )
            };
            step(x0, y0, x1, y1);
        }
        if !n.is_multiple_of(LANES) {
            let x = tail_pad(&a[chunks * LANES..n]);
            let y = tail_pad(&b[chunks * LANES..n]);
            // SAFETY: tail_pad returns owned [f32; LANES] (= 8) stack
            // buffers, so 4-lane loads at offsets 0 and 4 are in
            // bounds.
            let (x0, y0, x1, y1) = unsafe {
                (
                    _mm_loadu_ps(x.as_ptr()),
                    _mm_loadu_ps(y.as_ptr()),
                    _mm_loadu_ps(x.as_ptr().add(4)),
                    _mm_loadu_ps(y.as_ptr().add(4)),
                )
            };
            step(x0, y0, x1, y1);
        }
        cosine_finish(
            reduce4(_mm_add_ps(d_lo, d_hi)),
            reduce4(_mm_add_ps(a_lo, a_hi)),
            reduce4(_mm_add_ps(b_lo, b_hi)),
        )
    }

    #[target_feature(enable = "sse2")]
    pub fn axpy_sse2(y: &mut [f32], alpha: f32, x: &[f32]) {
        let n = y.len().min(x.len());
        let chunks = n / 4;
        let al = _mm_set1_ps(alpha);
        for k in 0..chunks {
            // SAFETY: k < chunks = n / 4, so the 4-lane load/store
            // window [k*4, k*4 + 4) is in bounds of both slices; x and
            // y are distinct borrows, so no aliasing.
            unsafe {
                let xv = _mm_loadu_ps(x.as_ptr().add(k * 4));
                let yv = _mm_loadu_ps(y.as_ptr().add(k * 4));
                _mm_storeu_ps(y.as_mut_ptr().add(k * 4), _mm_add_ps(yv, _mm_mul_ps(al, xv)));
            }
        }
        for i in chunks * 4..n {
            y[i] += alpha * x[i];
        }
    }
}

// ---- dispatch ---------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[inline]
fn avx_available() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

/// The resolved dot kernel — resolve once before a block scan instead
/// of re-dispatching per row.
pub fn dot_fn() -> VecKernel {
    match kernel_mode() {
        KernelMode::Scalar => dot_scalar,
        KernelMode::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx_available() {
                    // SAFETY: AVX presence was just checked.
                    |a, b| unsafe { x86::dot_avx(a, b) }
                } else {
                    // SAFETY: SSE2 is part of the x86_64 baseline.
                    |a, b| unsafe { x86::dot_sse2(a, b) }
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            dot_scalar
        }
    }
}

/// The resolved fused-cosine kernel.
pub fn cosine_fn() -> VecKernel {
    match kernel_mode() {
        KernelMode::Scalar => cosine_scalar,
        KernelMode::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx_available() {
                    // SAFETY: AVX presence was just checked.
                    |a, b| unsafe { x86::cosine_avx(a, b) }
                } else {
                    // SAFETY: SSE2 is part of the x86_64 baseline.
                    |a, b| unsafe { x86::cosine_sse2(a, b) }
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            cosine_scalar
        }
    }
}

/// Dot product in the fixed 8-lane order.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match kernel_mode() {
        KernelMode::Scalar => dot_scalar(a, b),
        KernelMode::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx_available() {
                    // SAFETY: AVX presence was just checked.
                    unsafe { x86::dot_avx(a, b) }
                } else {
                    // SAFETY: SSE2 is part of the x86_64 baseline.
                    unsafe { x86::dot_sse2(a, b) }
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            dot_scalar(a, b)
        }
    }
}

/// Squared Euclidean norm in the fixed 8-lane order.
#[inline]
pub fn sq_norm(a: &[f32]) -> f32 {
    match kernel_mode() {
        KernelMode::Scalar => sq_norm_scalar(a),
        KernelMode::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx_available() {
                    // SAFETY: AVX presence was just checked.
                    unsafe { x86::sq_norm_avx(a) }
                } else {
                    // SAFETY: SSE2 is part of the x86_64 baseline.
                    unsafe { x86::sq_norm_sse2(a) }
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            sq_norm_scalar(a)
        }
    }
}

/// Fused single-pass cosine similarity in `[-1, 1]` (0 when either
/// vector is ~zero), accumulating dot and both squared norms together.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    match kernel_mode() {
        KernelMode::Scalar => cosine_scalar(a, b),
        KernelMode::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx_available() {
                    // SAFETY: AVX presence was just checked.
                    unsafe { x86::cosine_avx(a, b) }
                } else {
                    // SAFETY: SSE2 is part of the x86_64 baseline.
                    unsafe { x86::cosine_sse2(a, b) }
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            cosine_scalar(a, b)
        }
    }
}

/// In-place `y += alpha * x`. Elementwise (no accumulation), so every
/// path is trivially bitwise identical.
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    match kernel_mode() {
        KernelMode::Scalar => axpy_scalar(y, alpha, x),
        KernelMode::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx_available() {
                    // SAFETY: AVX presence was just checked.
                    unsafe { x86::axpy_avx(y, alpha, x) }
                } else {
                    // SAFETY: SSE2 is part of the x86_64 baseline.
                    unsafe { x86::axpy_sse2(y, alpha, x) }
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            axpy_scalar(y, alpha, x)
        }
    }
}

/// One-vs-many block scan: the row with the highest cosine similarity
/// to `query` (first row wins ties — strict `>` update). Resolves the
/// kernel once for the whole scan. Returns `None` for no rows.
pub fn cosine_best_of<P: AsRef<[f32]>>(query: &[f32], rows: &[P]) -> Option<(usize, f32)> {
    let cos = cosine_fn();
    let mut best: Option<(usize, f32)> = None;
    for (i, row) in rows.iter().enumerate() {
        let s = cos(query, row.as_ref());
        if best.is_none_or(|(_, bs)| s > bs) {
            best = Some((i, s));
        }
    }
    best
}

// ---- i8 symmetric quantization ---------------------------------------

/// Largest representable quantized magnitude (symmetric — `-128` is
/// never produced, so negation is always exact).
pub const Q_MAX: i32 = 127;

/// A vector quantized to one `i8` per element with a shared
/// power-of-two scale: `x_i ≈ data[i] * scale`, `|data[i]| ≤ 127`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVec {
    /// Power-of-two dequantization step (0.0 for the all-zero vector).
    pub scale: f32,
    /// Quantized elements in `[-127, 127]`.
    pub data: Vec<i8>,
}

/// The smallest power of two `p` with `max_abs/p ≤ ~127`, clamped to
/// the normal `f32` range so multiplying / dividing by it is exact.
/// Returns 0.0 for a zero (or non-finite) magnitude.
fn quant_scale(max_abs: f32) -> f32 {
    if !max_abs.is_finite() || max_abs <= 0.0 {
        return 0.0;
    }
    let t = max_abs / 127.0;
    let bits = t.to_bits();
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;
    let mut k = if exp == 0 { -126 } else { exp - 127 };
    if mant != 0 && exp != 0 {
        k += 1; // round up to the next power of two
    }
    k = k.clamp(-126, 127);
    f32::from_bits(((k + 127) as u32) << 23)
}

impl QuantizedVec {
    /// Quantizes `xs`. The maximum absolute error is `scale / 2`, zero
    /// elements are preserved exactly, and the encoding is canonical:
    /// quantizing a [`Self::dequantize`]d vector reproduces the same
    /// `(scale, data)` bit for bit.
    pub fn quantize(xs: &[f32]) -> Self {
        let max_abs = xs.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let scale = quant_scale(max_abs);
        if scale == 0.0 {
            return Self { scale, data: vec![0; xs.len()] };
        }
        let inv = 1.0 / scale; // power of two: exact
        let data: Vec<i8> = xs
            .iter()
            .map(|&x| (x * inv).round().clamp(-(Q_MAX as f32), Q_MAX as f32) as i8)
            .collect();
        // Sub-normal magnitudes can hit the 2^-126 scale clamp and
        // quantize to all zeros; collapse to the canonical zero
        // encoding so re-quantizing the round-trip stays stable.
        if data.iter().all(|&q| q == 0) {
            return Self { scale: 0.0, data };
        }
        Self { scale, data }
    }

    /// Reconstructs the `f32` vector (`data[i] * scale`, exact for a
    /// power-of-two scale).
    pub fn dequantize(&self) -> Vec<f32> {
        self.data.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Encoded payload size in bytes (scale + elements), for storage
    /// accounting; the `f32` equivalent is `4 * len`.
    pub fn payload_bytes(&self) -> usize {
        4 + self.data.len()
    }
}

/// Dequantization-free dot product: exact `i32` accumulation (order
/// free) scaled by the product of the two scales.
pub fn dot_quantized(a: &QuantizedVec, b: &QuantizedVec) -> f32 {
    debug_assert_eq!(a.data.len(), b.data.len());
    let acc: i32 = a.data.iter().zip(&b.data).map(|(&x, &y)| x as i32 * y as i32).sum();
    acc as f32 * (a.scale * b.scale)
}

/// Replaces `xs` with its quantize→dequantize round-trip, making the
/// values *canonical*: every later [`QuantizedVec::quantize`] of the
/// slice is bitwise lossless. The pipeline applies this exactly once,
/// where an embedding is created.
pub fn canonicalize(xs: &mut [f32]) {
    let q = QuantizedVec::quantize(xs);
    if q.scale == 0.0 {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
        return;
    }
    for (x, &qi) in xs.iter_mut().zip(&q.data) {
        *x = qi as f32 * q.scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f32s covering sign, magnitude and
    /// exact-zero cases.
    fn gen(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|i| {
                s ^= s >> 27;
                s = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                if i % 11 == 7 {
                    0.0
                } else {
                    ((s >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
                }
            })
            .collect()
    }

    fn scalar_kernels() -> [(&'static str, VecKernel); 3] {
        [("dot", dot_scalar), ("sq_norm", |a, _| sq_norm_scalar(a)), ("cosine", cosine_scalar)]
    }

    #[cfg(target_arch = "x86_64")]
    fn simd_kernels() -> Vec<(&'static str, VecKernel)> {
        let mut v: Vec<(&'static str, VecKernel)> = vec![
            // SAFETY: SSE2 is part of the x86_64 baseline.
            ("dot", |a, b| unsafe { x86::dot_sse2(a, b) }),
            // SAFETY: SSE2 is part of the x86_64 baseline.
            ("sq_norm", |a, _| unsafe { x86::sq_norm_sse2(a) }),
            // SAFETY: SSE2 is part of the x86_64 baseline.
            ("cosine", |a, b| unsafe { x86::cosine_sse2(a, b) }),
        ];
        if avx_available() {
            // SAFETY: AVX presence was just checked.
            v.push(("dot", |a, b| unsafe { x86::dot_avx(a, b) }));
            // SAFETY: AVX presence was just checked.
            v.push(("sq_norm", |a, _| unsafe { x86::sq_norm_avx(a) }));
            // SAFETY: AVX presence was just checked.
            v.push(("cosine", |a, b| unsafe { x86::cosine_avx(a, b) }));
        }
        v
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_matches_scalar_bitwise_across_lane_remainders() {
        // Every tail remainder 0..8 several times over, plus the empty
        // vector: lengths 0..=67.
        for n in 0..=67usize {
            let a = gen(2 * n as u64 + 1, n);
            let b = gen(3 * n as u64 + 7, n);
            for (name, simd) in simd_kernels() {
                let scalar = scalar_kernels()
                    .into_iter()
                    .find(|(s, _)| *s == name)
                    .expect("paired scalar kernel")
                    .1;
                let s = scalar(&a, &b);
                let v = simd(&a, &b);
                assert_eq!(s.to_bits(), v.to_bits(), "{name} len {n}: {s} vs {v}");
            }
            // axpy: elementwise, compare whole output vectors.
            let mut ys = gen(5 * n as u64 + 3, n);
            let mut yv = ys.clone();
            axpy_scalar(&mut ys, 0.37, &a);
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { x86::axpy_sse2(&mut yv, 0.37, &a) };
            assert_eq!(
                ys.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                yv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "axpy sse2 len {n}"
            );
            if avx_available() {
                let mut ya = gen(5 * n as u64 + 3, n);
                // SAFETY: AVX presence was just checked.
                unsafe { x86::axpy_avx(&mut ya, 0.37, &a) };
                assert_eq!(
                    ys.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    ya.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "axpy avx len {n}"
                );
            }
        }
    }

    #[test]
    fn dispatched_modes_agree_bitwise() {
        let a = gen(11, 33);
        let b = gen(13, 33);
        let prev = kernel_mode();
        set_kernel_mode(KernelMode::Scalar);
        let (d1, n1, c1) = (dot(&a, &b), sq_norm(&a), cosine(&a, &b));
        set_kernel_mode(KernelMode::Simd);
        let (d2, n2, c2) = (dot(&a, &b), sq_norm(&a), cosine(&a, &b));
        set_kernel_mode(prev);
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(n1.to_bits(), n2.to_bits());
        assert_eq!(c1.to_bits(), c2.to_bits());
    }

    #[test]
    fn dot_matches_naive_within_tolerance() {
        for n in [1usize, 3, 8, 17, 64] {
            let a = gen(n as u64, n);
            let b = gen(n as u64 + 100, n);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let d = dot_scalar(&a, &b);
            assert!((naive - d).abs() <= 1e-4 * (1.0 + naive.abs()), "len {n}: {naive} vs {d}");
        }
    }

    #[test]
    fn cosine_best_of_first_max_wins() {
        let rows = vec![vec![1.0f32, 0.0], vec![0.0, 1.0], vec![2.0, 0.0], vec![1.0, 0.0]];
        // Rows 0, 2 and 3 all have similarity 1 with the query; the
        // first must win.
        let (i, s) = cosine_best_of(&[3.0, 0.0], &rows).expect("non-empty");
        assert_eq!(i, 0);
        assert!((s - 1.0).abs() < 1e-6);
        assert_eq!(cosine_best_of::<Vec<f32>>(&[1.0], &[]), None);
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        for seed in 0..32u64 {
            let xs = gen(seed, 40);
            let q = QuantizedVec::quantize(&xs);
            let back = q.dequantize();
            for (i, (&x, &y)) in xs.iter().zip(&back).enumerate() {
                assert!(
                    (x - y).abs() <= q.scale * 0.5,
                    "seed {seed} elem {i}: {x} -> {y}, scale {}",
                    q.scale
                );
                if x == 0.0 {
                    assert_eq!(y, 0.0, "zero must be preserved exactly");
                }
            }
        }
    }

    #[test]
    fn quantization_is_canonical() {
        for seed in 0..32u64 {
            let xs = gen(seed.wrapping_mul(77).wrapping_add(5), 24);
            let q1 = QuantizedVec::quantize(&xs);
            let mut canon = xs.clone();
            canonicalize(&mut canon);
            // Dequantize agrees with canonicalize…
            assert_eq!(q1.dequantize(), canon, "seed {seed}");
            // …and re-quantizing canonical values is bitwise stable.
            let q2 = QuantizedVec::quantize(&canon);
            assert_eq!(q1.scale.to_bits(), q2.scale.to_bits(), "seed {seed} scale");
            assert_eq!(q1.data, q2.data, "seed {seed} data");
            // Canonicalizing twice is the identity.
            let mut canon2 = canon.clone();
            canonicalize(&mut canon2);
            assert_eq!(
                canon.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                canon2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "seed {seed} idempotency"
            );
        }
    }

    #[test]
    fn quantize_edge_cases() {
        // All zeros.
        let q = QuantizedVec::quantize(&[0.0, 0.0, -0.0]);
        assert_eq!(q.scale, 0.0);
        assert_eq!(q.dequantize(), vec![0.0, 0.0, 0.0]);
        // Empty.
        let q = QuantizedVec::quantize(&[]);
        assert!(q.is_empty());
        // Tiny magnitudes stay in the normal-scale clamp.
        let xs = [1.0e-40f32, -2.0e-40, 0.0];
        let q = QuantizedVec::quantize(&xs);
        let mut canon = xs;
        canonicalize(&mut canon);
        assert_eq!(q.dequantize(), canon.to_vec());
        let q2 = QuantizedVec::quantize(&canon);
        assert_eq!(q.scale.to_bits(), q2.scale.to_bits());
        assert_eq!(q.data, q2.data);
        // Huge magnitudes.
        let xs = [3.0e38f32, -1.0e38];
        let q = QuantizedVec::quantize(&xs);
        assert!(q.scale.is_finite() && q.scale > 0.0);
        let e0 = (q.dequantize()[0] - xs[0]).abs();
        assert!(e0 <= q.scale * 0.5);
    }

    #[test]
    fn quantized_dot_tracks_f32_dot() {
        for seed in 40..56u64 {
            let xs = gen(seed, 32);
            let ys = gen(seed + 1000, 32);
            let qx = QuantizedVec::quantize(&xs);
            let qy = QuantizedVec::quantize(&ys);
            let qd = dot_quantized(&qx, &qy);
            let fd = dot_scalar(&qx.dequantize(), &qy.dequantize());
            assert!(
                (qd - fd).abs() <= 1e-3 * (1.0 + fd.abs()),
                "seed {seed}: quantized {qd} vs dequantized {fd}"
            );
        }
    }

    #[test]
    fn payload_bytes_ratio_is_quarter_ish() {
        let q = QuantizedVec::quantize(&gen(7, 64));
        let ratio = q.payload_bytes() as f64 / (4 * 64) as f64;
        assert!(ratio <= 0.30, "ratio {ratio}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantize_roundtrip_bounds(
            xs in prop::collection::vec(-100.0f32..100.0, 0..48),
        ) {
            let q = QuantizedVec::quantize(&xs);
            let back = q.dequantize();
            prop_assert_eq!(back.len(), xs.len());
            for (&x, &y) in xs.iter().zip(&back) {
                prop_assert!((x - y).abs() <= q.scale * 0.5);
                if x == 0.0 {
                    prop_assert!(y == 0.0);
                }
            }
            // Canonicality: re-encode of the round-trip is identical.
            let q2 = QuantizedVec::quantize(&back);
            prop_assert_eq!(q.scale.to_bits(), q2.scale.to_bits());
            prop_assert_eq!(&q.data, &q2.data);
        }

        #[test]
        fn scalar_and_simd_dot_agree(
            pair in prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0), 0..67),
        ) {
            let a: Vec<f32> = pair.iter().map(|p| p.0).collect();
            let b: Vec<f32> = pair.iter().map(|p| p.1).collect();
            let s = {
                let prev = kernel_mode();
                set_kernel_mode(KernelMode::Scalar);
                let v = dot(&a, &b);
                set_kernel_mode(prev);
                v
            };
            let v = {
                let prev = kernel_mode();
                set_kernel_mode(KernelMode::Simd);
                let v = dot(&a, &b);
                set_kernel_mode(prev);
                v
            };
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }
}
