//! Cosine geometry helpers.
//!
//! The Phrase Embedder (§V-B) and the candidate clustering step (§V-C)
//! both operate under cosine distance, so these functions are used across
//! several crates. A tiny epsilon guards the zero vector: the paper never
//! defines cosine distance at zero, and a zero pooled embedding can only
//! arise from an all-zero token embedding, which we still must not turn
//! into NaN.

use crate::kernels;

const EPS: f32 = 1e-12;

/// Cosine similarity in `[-1, 1]` (0 when either vector is ~zero).
///
/// Backed by the fused single-pass kernel ([`kernels::cosine`]), whose
/// fixed 8-lane accumulation order makes the result independent of the
/// `NGL_KERNEL` dispatch.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::cosine(a, b)
}

/// Cosine similarity for vectors already normalized by [`l2_normalize`]:
/// a plain dot product clamped to `[-1, 1]`, skipping both norm
/// accumulations and the division.
pub fn cosine_similarity_prenorm(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::dot(a, b).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cos(a, b)` in `[0, 2]`.
///
/// A value of `1` means orthogonality — the margin the paper sets for its
/// triplet loss and the natural upper bound for the agglomerative
/// clustering threshold (§V-C).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// Normalizes `v` to unit L2 norm in place. A ~zero vector is left as is.
pub fn l2_normalize(v: &mut [f32]) {
    let n: f32 = kernels::sq_norm(v).sqrt();
    if n > EPS {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Returns a unit-norm copy of `v`.
pub fn l2_normalized(v: &[f32]) -> Vec<f32> {
    let mut out = v.to_vec();
    l2_normalize(&mut out);
    out
}

/// Gradient of cosine similarity `cos(a, b)` with respect to `a`.
///
/// `d cos / d a = b / (|a||b|) - cos(a,b) * a / |a|²`
pub fn cosine_similarity_grad_a(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; a.len()];
    cosine_similarity_grad_a_into(a, b, &mut out);
    out
}

/// Allocation-free variant of [`cosine_similarity_grad_a`]: writes the
/// gradient into `out`, which training loops reuse across pairs.
pub fn cosine_similarity_grad_a_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let na: f32 = kernels::sq_norm(a).sqrt().max(EPS);
    let nb: f32 = kernels::sq_norm(b).sqrt().max(EPS);
    let cos = cosine_similarity(a, b);
    for ((o, &ai), &bi) in out.iter_mut().zip(a).zip(b) {
        *o = bi / (na * nb) - cos * ai / (na * na);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_distance() {
        let v = [0.3, -0.2, 0.9];
        assert!((cosine_distance(&v, &v)).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_vectors_have_distance_one() {
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn opposite_vectors_have_distance_two() {
        assert!((cosine_distance(&[1.0, 0.0], &[-2.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_is_safe() {
        let d = cosine_distance(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(d.is_finite());
        assert!((d - 1.0).abs() < 1e-6, "zero vector treated as orthogonal");
    }

    #[test]
    fn normalization_yields_unit_norm() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn similarity_is_scale_invariant() {
        let a = [1.0f32, 2.0, -1.0];
        let b = [0.5f32, -0.25, 2.0];
        let scaled: Vec<f32> = a.iter().map(|x| x * 7.5).collect();
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&scaled, &b)).abs() < 1e-5);
    }

    #[test]
    fn prenorm_matches_full_similarity_on_unit_vectors() {
        let a = l2_normalized(&[1.0, 2.0, -1.0, 0.5]);
        let b = l2_normalized(&[0.5, -0.25, 2.0, 1.5]);
        let full = cosine_similarity(&a, &b);
        let fast = cosine_similarity_prenorm(&a, &b);
        assert!((full - fast).abs() < 1e-6, "{full} vs {fast}");
    }

    #[test]
    fn grad_into_matches_allocating_variant() {
        let a = [0.4f32, -0.7, 1.1, 0.2, -0.9];
        let b = [0.9f32, 0.2, -0.3, 1.4, 0.6];
        let alloc = cosine_similarity_grad_a(&a, &b);
        let mut out = [0.0f32; 5];
        cosine_similarity_grad_a_into(&a, &b, &mut out);
        assert_eq!(alloc, out.to_vec());
    }

    #[test]
    fn cosine_grad_matches_finite_difference() {
        let a = [0.4f32, -0.7, 1.1];
        let b = [0.9f32, 0.2, -0.3];
        let grad = cosine_similarity_grad_a(&a, &b);
        let h = 1e-3f32;
        for i in 0..a.len() {
            let mut ap = a;
            ap[i] += h;
            let mut am = a;
            am[i] -= h;
            let fd = (cosine_similarity(&ap, &b) - cosine_similarity(&am, &b)) / (2.0 * h);
            assert!(
                (fd - grad[i]).abs() < 1e-3,
                "grad[{i}]: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }
}
