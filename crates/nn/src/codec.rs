//! Compact binary (de)serialization for model tensors.
//!
//! A hand-rolled little-endian codec over the `bytes` crate: trained
//! models (the encoder, phrase embedder and classifier) are persisted as
//! versioned binary blobs so a deployment can train once and ship the
//! weights. Formats are length-prefixed and checked on read — a
//! truncated or corrupted blob fails with [`CodecError`] instead of
//! producing a garbage model.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::layers::Dense;
use crate::linalg::Matrix;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A length or tag field was implausible.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity cap on decoded element counts (64M scalars ≈ 256 MB) so a
/// corrupted length field cannot trigger an enormous allocation.
const MAX_ELEMENTS: u64 = 64 << 20;

/// Writes a `u64` (lengths, counts, seeds).
pub fn put_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64_le(v);
}

/// Reads a `u64`.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u64_le())
}

/// Writes an `f32`.
pub fn put_f32(buf: &mut BytesMut, v: f32) {
    buf.put_f32_le(v);
}

/// Reads an `f32`.
pub fn get_f32(buf: &mut Bytes) -> Result<f32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_f32_le())
}

/// Writes a length-prefixed `f32` slice.
pub fn put_f32_slice(buf: &mut BytesMut, v: &[f32]) {
    put_u64(buf, v.len() as u64);
    buf.reserve(4 * v.len());
    for &x in v {
        buf.put_f32_le(x);
    }
}

/// Reads a length-prefixed `f32` vector.
pub fn get_f32_vec(buf: &mut Bytes) -> Result<Vec<f32>, CodecError> {
    let n = get_u64(buf)?;
    if n > MAX_ELEMENTS {
        return Err(CodecError::Invalid("slice length"));
    }
    if (buf.remaining() as u64) < 4 * n {
        return Err(CodecError::UnexpectedEof);
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Writes an `f32` slice as a length-prefixed quantized record: `u64`
/// length, `f32` power-of-two scale, then one `i8` per element (~4×
/// smaller at rest than [`put_f32_slice`]).
///
/// Quantization happens here via [`crate::kernels::QuantizedVec`]; on
/// *canonicalized* vectors (see [`crate::kernels::canonicalize`]) the
/// encode→decode round-trip is bitwise lossless and re-encoding is
/// byte-identical, which durable checkpoints rely on.
pub fn put_quantized_f32_slice(buf: &mut BytesMut, v: &[f32]) {
    let q = crate::kernels::QuantizedVec::quantize(v);
    put_u64(buf, q.data.len() as u64);
    buf.put_f32_le(q.scale);
    buf.reserve(q.data.len());
    for &x in &q.data {
        buf.put_i8(x);
    }
}

/// Reads a quantized `f32` record written by [`put_quantized_f32_slice`],
/// returning the dequantized vector.
pub fn get_quantized_f32_vec(buf: &mut Bytes) -> Result<Vec<f32>, CodecError> {
    let n = get_u64(buf)?;
    if n > MAX_ELEMENTS {
        return Err(CodecError::Invalid("quantized slice length"));
    }
    if (buf.remaining() as u64) < 4 + n {
        return Err(CodecError::UnexpectedEof);
    }
    let scale = buf.get_f32_le();
    if !scale.is_finite() || scale < 0.0 {
        return Err(CodecError::Invalid("quantized scale"));
    }
    Ok((0..n).map(|_| buf.get_i8() as f32 * scale).collect())
}

/// Writes a matrix (rows, cols, data).
pub fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    put_u64(buf, m.rows() as u64);
    put_u64(buf, m.cols() as u64);
    buf.reserve(4 * m.as_slice().len());
    for &x in m.as_slice() {
        buf.put_f32_le(x);
    }
}

/// Reads a matrix.
pub fn get_matrix(buf: &mut Bytes) -> Result<Matrix, CodecError> {
    let rows = get_u64(buf)?;
    let cols = get_u64(buf)?;
    let n = rows.checked_mul(cols).ok_or(CodecError::Invalid("matrix shape"))?;
    if n > MAX_ELEMENTS {
        return Err(CodecError::Invalid("matrix size"));
    }
    if (buf.remaining() as u64) < 4 * n {
        return Err(CodecError::UnexpectedEof);
    }
    let data = (0..n).map(|_| buf.get_f32_le()).collect();
    Ok(Matrix::from_vec(rows as usize, cols as usize, data))
}

/// Writes a dense layer (weights + bias).
pub fn put_dense(buf: &mut BytesMut, d: &Dense) {
    put_matrix(buf, d.weights());
    put_f32_slice(buf, d.bias());
}

/// Reads a dense layer.
pub fn get_dense(buf: &mut Bytes) -> Result<Dense, CodecError> {
    let w = get_matrix(buf)?;
    let b = get_f32_vec(buf)?;
    if b.len() != w.cols() {
        return Err(CodecError::Invalid("dense bias length"));
    }
    Ok(Dense::from_parts(w, b))
}

/// Writes a batch-norm layer (γ, β, running stats).
pub fn put_batchnorm(buf: &mut BytesMut, bn: &crate::layers::BatchNorm1d) {
    let (gamma, beta, mean, var) = bn.parts();
    put_f32_slice(buf, gamma);
    put_f32_slice(buf, beta);
    put_f32_slice(buf, mean);
    put_f32_slice(buf, var);
}

/// Reads a batch-norm layer.
pub fn get_batchnorm(buf: &mut Bytes) -> Result<crate::layers::BatchNorm1d, CodecError> {
    let gamma = get_f32_vec(buf)?;
    let beta = get_f32_vec(buf)?;
    let mean = get_f32_vec(buf)?;
    let var = get_f32_vec(buf)?;
    if beta.len() != gamma.len() || mean.len() != gamma.len() || var.len() != gamma.len() {
        return Err(CodecError::Invalid("batch-norm part lengths"));
    }
    Ok(crate::layers::BatchNorm1d::from_parts(gamma, beta, mean, var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Init;
    use rand::SeedableRng;

    fn round_trip<T, W, R>(value: &T, write: W, read: R) -> T
    where
        W: Fn(&mut BytesMut, &T),
        R: Fn(&mut Bytes) -> Result<T, CodecError>,
    {
        let mut buf = BytesMut::new();
        write(&mut buf, value);
        let mut bytes = buf.freeze();
        let out = read(&mut bytes).expect("decode");
        assert_eq!(bytes.remaining(), 0, "trailing bytes");
        out
    }

    #[test]
    fn matrix_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.5, 0.0, 1e-9, -7.25]);
        let back = round_trip(&m, put_matrix, get_matrix);
        assert_eq!(m, back);
    }

    #[test]
    fn dense_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let d = Dense::new(&mut rng, 4, 3, Init::He);
        let mut buf = BytesMut::new();
        put_dense(&mut buf, &d);
        let back = get_dense(&mut buf.freeze()).expect("decode");
        assert_eq!(d.weights(), back.weights());
        assert_eq!(d.bias(), back.bias());
        // And it computes identically.
        let x = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(d.forward(&x), back.forward(&x));
    }

    #[test]
    fn truncated_buffer_fails_cleanly() {
        let m = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let mut buf = BytesMut::new();
        put_matrix(&mut buf, &m);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut sliced = full.slice(0..cut);
            assert!(
                get_matrix(&mut sliced).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_length_is_rejected_without_huge_allocation() {
        let mut buf = BytesMut::new();
        put_u64(&mut buf, u64::MAX / 2); // rows
        put_u64(&mut buf, 3); // cols
        let err = get_matrix(&mut buf.freeze()).expect_err("must fail");
        assert!(matches!(err, CodecError::Invalid(_) | CodecError::UnexpectedEof));
    }

    #[test]
    fn f32_slice_round_trips_empty_and_full() {
        for v in [vec![], vec![1.5f32, -2.5, 0.0]] {
            let got = round_trip(&v, |b, x| put_f32_slice(b, x), get_f32_vec);
            assert_eq!(v, got);
        }
    }

    #[test]
    fn quantized_slice_is_lossless_on_canonical_vectors() {
        let mut v = vec![0.83f32, -1.2, 0.0, 0.004, 2.7, -0.3311];
        crate::kernels::canonicalize(&mut v);
        let got = round_trip(&v, |b, x| put_quantized_f32_slice(b, x), get_quantized_f32_vec);
        assert_eq!(v, got, "canonical vectors round-trip exactly");
        // Re-encoding the decoded vector is byte-identical.
        let mut b1 = BytesMut::new();
        put_quantized_f32_slice(&mut b1, &v);
        let mut b2 = BytesMut::new();
        put_quantized_f32_slice(&mut b2, &got);
        assert_eq!(b1.freeze(), b2.freeze());
    }

    #[test]
    fn quantized_slice_bounds_error_on_raw_vectors() {
        let v = vec![0.83f32, -1.2, 0.0, 0.004, 2.7, -0.3311];
        let mut buf = BytesMut::new();
        put_quantized_f32_slice(&mut buf, &v);
        let got = get_quantized_f32_vec(&mut buf.freeze()).expect("decode");
        let scale = crate::kernels::QuantizedVec::quantize(&v).scale;
        for (&x, &y) in v.iter().zip(&got) {
            assert!((x - y).abs() <= scale * 0.5, "{x} vs {y}");
        }
        assert_eq!(got[2], 0.0, "exact zero preserved");
    }

    #[test]
    fn quantized_slice_truncation_fails_cleanly() {
        let v = vec![1.0f32, -0.5, 0.25];
        let mut buf = BytesMut::new();
        put_quantized_f32_slice(&mut buf, &v);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut sliced = full.slice(0..cut);
            assert!(
                get_quantized_f32_vec(&mut sliced).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}
