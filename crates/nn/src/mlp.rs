//! A small sequential multi-layer perceptron with a softmax
//! classification head — the building block behind the Entity Classifier
//! (§V-D) and the token-classification heads of the Local NER encoders.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::early_stopping::EarlyStopping;
use crate::layers::{Dense, Init, Relu};
use crate::linalg::Matrix;
use crate::loss::SoftmaxCrossEntropy;
use crate::optim::{Adam, AdamState};

/// Hyperparameters for [`Mlp`] construction and training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer widths, input first, class count last, e.g. `[64, 32, 5]`.
    pub layer_sizes: Vec<usize>,
    /// Adam learning rate (paper: 0.0015 for the Entity Classifier).
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Hard epoch cap (paper: 200).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            layer_sizes: vec![],
            lr: 1e-3,
            weight_decay: 1e-4,
            batch_size: 32,
            max_epochs: 200,
            patience: 20,
            seed: 0,
        }
    }
}

/// What a training run did — epochs executed, best validation loss, etc.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs actually run (≤ `max_epochs`).
    pub epochs_run: usize,
    /// Final training loss.
    pub final_train_loss: f32,
    /// Best validation loss seen (∞ when no validation set was used).
    pub best_val_loss: f32,
    /// Epoch (1-based) the best validation loss occurred at.
    pub best_epoch: usize,
}

/// A dense feed-forward classifier: `Dense → ReLU → … → Dense → softmax`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    config: MlpConfig,
    #[serde(skip)]
    adam_states: Vec<AdamState>,
}

impl Mlp {
    /// Builds the network described by `config.layer_sizes`.
    ///
    /// # Panics
    /// Panics when fewer than two sizes are given.
    pub fn new(config: MlpConfig) -> Self {
        assert!(
            config.layer_sizes.len() >= 2,
            "need at least input and output sizes"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::new();
        for w in config.layer_sizes.windows(2) {
            let is_last = w[1] == *config.layer_sizes.last().expect("non-empty")
                && layers.len() == config.layer_sizes.len() - 2;
            let init = if is_last { Init::Xavier } else { Init::He };
            layers.push(Dense::new(&mut rng, w[0], w[1], init));
        }
        let adam_states = Self::fresh_states(&layers);
        Self { layers, config, adam_states }
    }

    fn fresh_states(layers: &[Dense]) -> Vec<AdamState> {
        layers
            .iter()
            .flat_map(|l| {
                [
                    AdamState::new(l.in_dim() * l.out_dim()),
                    AdamState::new(l.out_dim()),
                ]
            })
            .collect()
    }

    /// Re-creates optimizer state after deserialization.
    pub fn reset_optimizer(&mut self) {
        self.adam_states = Self::fresh_states(&self.layers);
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass returning logits; `acts` receives the pre-activation
    /// input of every layer for the backward pass.
    fn forward_cached(&self, x: &Matrix, acts: &mut Vec<Matrix>) -> Matrix {
        acts.clear();
        let relu = Relu;
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            acts.push(cur.clone());
            cur = layer.forward(&cur);
            if i + 1 < self.layers.len() {
                acts.push(cur.clone()); // pre-ReLU cache
                cur = relu.forward(&cur);
            }
        }
        cur
    }

    /// Raw logits for a batch.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        let mut acts = Vec::new();
        self.forward_cached(x, &mut acts)
    }

    /// Class probabilities for a batch.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        SoftmaxCrossEntropy.probabilities(&self.logits(x))
    }

    /// Arg-max class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.logits(x);
        (0..p.rows())
            .map(|r| {
                p.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Mean cross-entropy loss of the model on `(x, y)`.
    pub fn loss(&self, x: &Matrix, y: &[usize]) -> f32 {
        SoftmaxCrossEntropy.forward(&self.logits(x), y).0
    }

    /// One gradient step on a mini-batch; returns the batch loss.
    pub fn train_batch(&mut self, x: &Matrix, y: &[usize], adam: &mut Adam) -> f32 {
        let mut acts = Vec::new();
        let logits = self.forward_cached(x, &mut acts);
        let sce = SoftmaxCrossEntropy;
        let (loss, probs) = sce.forward(&logits, y);
        let mut grad = sce.backward(&probs, y);

        for l in &mut self.layers {
            l.zero_grad();
        }
        let relu = Relu;
        // Walk layers in reverse; `acts` holds [in0, pre0, in1, pre1, ..., inLast].
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let input_idx = 2 * i;
            let input = &acts[input_idx];
            grad = layer.backward(input, &grad);
            if i > 0 {
                let pre_relu = &acts[2 * (i - 1) + 1];
                grad = relu.backward(pre_relu, &grad);
            }
        }

        adam.tick();
        let mut s = 0;
        for layer in &mut self.layers {
            for (param, g) in layer.params_and_grads() {
                adam.step(param, g, &mut self.adam_states[s]);
                s += 1;
            }
        }
        loss
    }

    /// Full training loop with an internal 80/20 train/validation split
    /// (§VI), mini-batching, shuffling, and early stopping. Keeps the
    /// parameters from the best validation epoch.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> TrainReport {
        assert_eq!(x.rows(), y.len(), "label count mismatch");
        assert!(x.rows() >= 2, "need at least two samples");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        order.shuffle(&mut rng);
        let n_val = (x.rows() / 5).max(1).min(x.rows() - 1);
        let (val_idx, train_idx) = order.split_at(n_val);

        let gather = |idx: &[usize]| -> (Matrix, Vec<usize>) {
            let rows: Vec<&[f32]> = idx.iter().map(|&i| x.row(i)).collect();
            (Matrix::from_rows(&rows), idx.iter().map(|&i| y[i]).collect())
        };
        let (val_x, val_y) = gather(val_idx);
        let mut train_order: Vec<usize> = train_idx.to_vec();

        let mut adam = Adam::new(self.config.lr).with_weight_decay(self.config.weight_decay);
        let mut es = EarlyStopping::new(self.config.patience);
        let mut best_snapshot = self.layers.clone();
        let mut final_train_loss = f32::INFINITY;
        let mut epochs_run = 0;

        for _epoch in 0..self.config.max_epochs {
            epochs_run += 1;
            train_order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in train_order.chunks(self.config.batch_size.max(1)) {
                let (bx, by) = gather(chunk);
                epoch_loss += self.train_batch(&bx, &by, &mut adam);
                batches += 1;
            }
            final_train_loss = epoch_loss / batches.max(1) as f32;
            let val_loss = self.loss(&val_x, &val_y);
            if es.record(val_loss) {
                best_snapshot = self.layers.clone();
            }
            if es.should_stop() {
                break;
            }
        }

        self.layers = best_snapshot;
        TrainReport {
            epochs_run,
            final_train_loss,
            best_val_loss: es.best(),
            best_epoch: es.best_epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two Gaussian blobs in 2-D: a 2-layer MLP must separate them.
    #[test]
    fn mlp_learns_two_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let (cx, cy) = if c == 0 { (-1.5, -1.5) } else { (1.5, 1.5) };
            data.push(cx + rng.gen_range(-0.5..0.5f32));
            data.push(cy + rng.gen_range(-0.5..0.5f32));
            labels.push(c);
        }
        let x = Matrix::from_vec(n, 2, data);
        let mut mlp = Mlp::new(MlpConfig {
            layer_sizes: vec![2, 8, 2],
            lr: 0.01,
            max_epochs: 60,
            patience: 15,
            batch_size: 16,
            seed: 7,
            ..MlpConfig::default()
        });
        let report = mlp.fit(&x, &labels);
        assert!(report.best_val_loss < 0.2, "val loss {}", report.best_val_loss);
        let preds = mlp.predict(&x);
        let acc = preds
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f32
            / n as f32;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    /// XOR requires a hidden layer; a linear model cannot solve it.
    #[test]
    fn mlp_learns_xor() {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..50 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                data.push(a);
                data.push(b);
                labels.push(((a as i32) ^ (b as i32)) as usize);
            }
        }
        let x = Matrix::from_vec(labels.len(), 2, data);
        let mut mlp = Mlp::new(MlpConfig {
            layer_sizes: vec![2, 16, 2],
            lr: 0.02,
            max_epochs: 120,
            patience: 40,
            batch_size: 32,
            seed: 3,
            ..MlpConfig::default()
        });
        mlp.fit(&x, &labels);
        let probe = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        assert_eq!(mlp.predict(&probe), vec![0, 1, 1, 0]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mlp = Mlp::new(MlpConfig {
            layer_sizes: vec![3, 4, 5],
            seed: 11,
            ..MlpConfig::default()
        });
        let x = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, 0.0, 0.4]);
        let p = mlp.predict_proba(&x);
        for r in 0..2 {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cfg = MlpConfig { layer_sizes: vec![4, 6, 3], seed: 5, ..MlpConfig::default() };
        let a = Mlp::new(cfg.clone());
        let b = Mlp::new(cfg);
        let x = Matrix::from_vec(1, 4, vec![0.5, -0.5, 0.25, 1.0]);
        assert_eq!(a.logits(&x), b.logits(&x));
    }

    #[test]
    fn clone_preserves_predictions_and_reset_optimizer_is_safe() {
        let mlp = Mlp::new(MlpConfig {
            layer_sizes: vec![3, 5, 2],
            seed: 9,
            ..MlpConfig::default()
        });
        let mut back = mlp.clone();
        back.reset_optimizer();
        let x = Matrix::from_vec(1, 3, vec![0.2, 0.4, -0.6]);
        assert_eq!(mlp.logits(&x), back.logits(&x));
        assert_eq!(mlp.param_count(), back.param_count());
    }
}
