//! Layers with explicit forward/backward passes.
//!
//! Each layer owns its parameters and gradient buffers; callers drive the
//! backward pass by handing back the inputs they kept from the forward
//! pass. This keeps batching explicit and avoids a tape/autograd
//! machinery the models here do not need.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::init::{he_uniform, xavier_uniform};
use crate::linalg::Matrix;

/// Which initialization family a [`Dense`] layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Init {
    /// Glorot/Xavier uniform — for linear / softmax-feeding layers.
    Xavier,
    /// He/Kaiming uniform — for ReLU-feeding layers.
    He,
}

/// A fully connected layer `y = x W + b`.
///
/// `W` is stored `in_dim × out_dim` so a batch `x` of shape
/// `batch × in_dim` maps to `batch × out_dim` with one GEMM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
}

impl Dense {
    /// Creates a layer with the given initialization.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize, init: Init) -> Self {
        let w = match init {
            Init::Xavier => xavier_uniform(rng, in_dim, out_dim),
            Init::He => he_uniform(rng, in_dim, out_dim),
        };
        Self {
            w,
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
        }
    }

    /// Rebuilds a layer from persisted weights and bias (fresh, zeroed
    /// gradient buffers).
    ///
    /// # Panics
    /// Panics when `bias.len() != weights.cols()`.
    pub fn from_parts(weights: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), weights.cols(), "bias length mismatch");
        let gw = Matrix::zeros(weights.rows(), weights.cols());
        let gb = vec![0.0; bias.len()];
        Self { w: weights, b: bias, gw, gb }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass for a batch: `x (b×in) -> b×out`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass. `x` is the forward input, `dy` the upstream
    /// gradient. Accumulates parameter gradients internally and returns
    /// `dx`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        // dW = xᵀ dy ; db = column sums of dy ; dx = dy Wᵀ
        let gw = x.t_matmul(dy);
        self.gw.axpy(1.0, &gw);
        for (g, s) in self.gb.iter_mut().zip(dy.col_sums()) {
            *g += s;
        }
        dy.matmul_t(&self.w)
    }

    /// Zeroes accumulated gradients (call once per optimizer step).
    pub fn zero_grad(&mut self) {
        self.gw.scale(0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Parameter/gradient pairs for the optimizer, weights first.
    pub fn params_and_grads(&mut self) -> [(&mut [f32], &[f32]); 2] {
        // Split borrows: weights+their grads, biases+their grads.
        let Dense { w, b, gw, gb } = self;
        [(w.as_mut_slice(), gw.as_slice()), (b.as_mut_slice(), gb.as_slice())]
    }

    /// Read-only weight matrix (used by tests and diagnostics).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Read-only bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// Element-wise rectified linear unit.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Relu;

impl Relu {
    /// `max(0, x)` element-wise.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let data = x.as_slice().iter().map(|&v| v.max(0.0)).collect();
        Matrix::from_vec(x.rows(), x.cols(), data)
    }

    /// Masks the upstream gradient by the sign of the forward input.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> Matrix {
        let data = x
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(&xi, &gi)| if xi > 0.0 { gi } else { 0.0 })
            .collect();
        Matrix::from_vec(x.rows(), x.cols(), data)
    }
}

/// Row-wise L2 normalization, `y = x / |x|`.
///
/// This is the normalization step of the Phrase Embedder (Eq. 2): the
/// paper reports better performance when the pooled embedding is scaled
/// to unit norm before the final dense layer.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct L2Norm;

const NORM_EPS: f32 = 1e-8;

impl L2Norm {
    /// Normalizes each row of `x` to unit norm.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.clone();
        for r in 0..y.rows() {
            crate::cosine::l2_normalize(y.row_mut(r));
        }
        y
    }

    /// Backward pass: with `y = x/n`, `dx = (dy - y (y·dy)) / n`.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let xr = x.row(r);
            let dyr = dy.row(r);
            let n = crate::linalg::norm(xr).max(NORM_EPS);
            let y: Vec<f32> = xr.iter().map(|v| v / n).collect();
            let proj = crate::linalg::dot(&y, dyr);
            for (c, out) in dx.row_mut(r).iter_mut().enumerate() {
                *out = (dyr[c] - y[c] * proj) / n;
            }
        }
        dx
    }
}

/// Cache produced by a [`BatchNorm1d`] training forward pass; feed it back
/// into [`BatchNorm1d::backward`].
#[derive(Debug, Clone)]
pub struct BatchNormCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

/// 1-D batch normalization over the batch dimension.
///
/// §VI of the paper adds batch normalization when training the Phrase
/// Embedder; this is the standard formulation with running statistics
/// for inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    g_gamma: Vec<f32>,
    g_beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm1d {
    /// New batch-norm over `dim` features with momentum 0.9.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            g_gamma: vec![0.0; dim],
            g_beta: vec![0.0; dim],
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.9,
            eps: 1e-5,
        }
    }

    /// Training-mode forward pass; updates running statistics.
    pub fn forward_train(&mut self, x: &Matrix) -> (Matrix, BatchNormCache) {
        let (b, d) = (x.rows(), x.cols());
        assert!(b > 0, "batch norm needs a non-empty batch");
        let mut mean = vec![0.0f32; d];
        for r in 0..b {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= b as f32);
        let mut var = vec![0.0f32; d];
        for r in 0..b {
            for (c, v) in var.iter_mut().enumerate() {
                let dlt = x.get(r, c) - mean[c];
                *v += dlt * dlt;
            }
        }
        var.iter_mut().for_each(|v| *v /= b as f32);

        for c in 0..d {
            self.running_mean[c] =
                self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean[c];
            self.running_var[c] =
                self.momentum * self.running_var[c] + (1.0 - self.momentum) * var[c];
        }

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Matrix::zeros(b, d);
        let mut y = Matrix::zeros(b, d);
        for r in 0..b {
            for c in 0..d {
                let h = (x.get(r, c) - mean[c]) * inv_std[c];
                x_hat.set(r, c, h);
                y.set(r, c, self.gamma[c] * h + self.beta[c]);
            }
        }
        (y, BatchNormCache { x_hat, inv_std })
    }

    /// Inference-mode forward pass using running statistics.
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        let (b, d) = (x.rows(), x.cols());
        let mut y = Matrix::zeros(b, d);
        for r in 0..b {
            for c in 0..d {
                let inv = 1.0 / (self.running_var[c] + self.eps).sqrt();
                let h = (x.get(r, c) - self.running_mean[c]) * inv;
                y.set(r, c, self.gamma[c] * h + self.beta[c]);
            }
        }
        y
    }

    /// Backward pass for the training forward. Accumulates γ/β gradients
    /// and returns `dx`.
    pub fn backward(&mut self, cache: &BatchNormCache, dy: &Matrix) -> Matrix {
        let (b, d) = (dy.rows(), dy.cols());
        let bf = b as f32;
        let mut dx = Matrix::zeros(b, d);
        for c in 0..d {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for r in 0..b {
                let g = dy.get(r, c);
                sum_dy += g;
                sum_dy_xhat += g * cache.x_hat.get(r, c);
                self.g_gamma[c] += g * cache.x_hat.get(r, c);
                self.g_beta[c] += g;
            }
            for r in 0..b {
                let g = dy.get(r, c);
                let xh = cache.x_hat.get(r, c);
                let v = self.gamma[c] * cache.inv_std[c] / bf
                    * (bf * g - sum_dy - xh * sum_dy_xhat);
                dx.set(r, c, v);
            }
        }
        dx
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.g_gamma.iter_mut().for_each(|g| *g = 0.0);
        self.g_beta.iter_mut().for_each(|g| *g = 0.0);
    }

    /// The learned/running parameters `(γ, β, running_mean, running_var)`
    /// for persistence.
    pub fn parts(&self) -> (&[f32], &[f32], &[f32], &[f32]) {
        (&self.gamma, &self.beta, &self.running_mean, &self.running_var)
    }

    /// Rebuilds a layer from persisted parameters.
    ///
    /// # Panics
    /// Panics when the four vectors have different lengths.
    pub fn from_parts(
        gamma: Vec<f32>,
        beta: Vec<f32>,
        running_mean: Vec<f32>,
        running_var: Vec<f32>,
    ) -> Self {
        let d = gamma.len();
        assert!(
            beta.len() == d && running_mean.len() == d && running_var.len() == d,
            "batch-norm part length mismatch"
        );
        Self {
            gamma,
            beta,
            g_gamma: vec![0.0; d],
            g_beta: vec![0.0; d],
            running_mean,
            running_var,
            momentum: 0.9,
            eps: 1e-5,
        }
    }

    /// Parameter/gradient pairs for the optimizer (γ then β).
    pub fn params_and_grads(&mut self) -> [(&mut [f32], &[f32]); 2] {
        let BatchNorm1d { gamma, beta, g_gamma, g_beta, .. } = self;
        [
            (gamma.as_mut_slice(), g_gamma.as_slice()),
            (beta.as_mut_slice(), g_beta.as_slice()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check<F>(f: F, x: &Matrix, dx: &Matrix, tol: f32)
    where
        F: Fn(&Matrix) -> f32,
    {
        let h = 1e-2f32;
        for i in 0..x.as_slice().len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let fd = (f(&xp) - f(&xm)) / (2.0 * h);
            let an = dx.as_slice()[i];
            assert!(
                (fd - an).abs() < tol,
                "element {i}: analytic {an} vs finite-diff {fd}"
            );
        }
    }

    #[test]
    fn dense_forward_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(&mut rng, 3, 2, Init::Xavier);
        // Force known weights for a hand check.
        layer.w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        layer.b = vec![0.5, -0.5];
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 4.5]);
    }

    #[test]
    fn dense_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dense::new(&mut rng, 4, 3, Init::Xavier);
        let x = Matrix::from_vec(2, 4, (0..8).map(|v| v as f32 * 0.3 - 1.0).collect());
        // Loss = sum of outputs, so upstream grad is all ones.
        let dy = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let mut l = layer.clone();
        let dx = l.backward(&x, &dy);
        finite_diff_check(
            |xx| layer.forward(xx).as_slice().iter().sum::<f32>(),
            &x,
            &dx,
            1e-2,
        );
    }

    #[test]
    fn relu_backward_masks_negative_inputs() {
        let relu = Relu;
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let dy = Matrix::from_vec(1, 4, vec![1.0; 4]);
        let dx = relu.backward(&x, &dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn l2norm_forward_produces_unit_rows() {
        let x = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 2.0]);
        let y = L2Norm.forward(&x);
        for r in 0..2 {
            let n = crate::linalg::norm(y.row(r));
            assert!((n - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn l2norm_backward_matches_finite_difference() {
        let x = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        // Loss: dot(y, [1,2,3]).
        let target = [1.0f32, 2.0, 3.0];
        let dy = Matrix::from_vec(1, 3, target.to_vec());
        let dx = L2Norm.backward(&x, &dy);
        finite_diff_check(
            |xx| {
                let y = L2Norm.forward(xx);
                crate::linalg::dot(y.row(0), &target)
            },
            &x,
            &dx,
            1e-2,
        );
    }

    #[test]
    fn batchnorm_train_normalizes_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let (y, _) = bn.forward_train(&x);
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| y.get(r, c)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "column {c} mean {mean}");
        }
    }

    #[test]
    fn batchnorm_backward_matches_finite_difference() {
        let x = Matrix::from_vec(3, 2, vec![0.1, -0.4, 0.9, 0.3, -0.2, 0.8]);
        let dy = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let mut bn = BatchNorm1d::new(2);
        let (_, cache) = bn.forward_train(&x);
        let dx = bn.backward(&cache, &dy);
        // Fresh instance per evaluation so running stats don't leak.
        finite_diff_check(
            |xx| {
                let mut b = BatchNorm1d::new(2);
                let (y, _) = b.forward_train(xx);
                y.as_slice().iter().sum::<f32>()
            },
            &x,
            &dx,
            5e-2,
        );
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Matrix::from_vec(8, 1, (0..8).map(|v| v as f32).collect());
        for _ in 0..200 {
            let _ = bn.forward_train(&x);
        }
        let y = bn.forward_eval(&x);
        // After many updates the running stats converge to batch stats, so
        // eval output is ~normalized too.
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 8.0;
        assert!(mean.abs() < 0.05, "eval mean {mean}");
    }
}
