//! # ngl-nn
//!
//! A minimal, dependency-light neural-network library backing the NER
//! Globalizer reproduction. It provides exactly the pieces the paper's
//! trainable components need, implemented from scratch with manual
//! backpropagation:
//!
//! * [`Matrix`] — a small row-major `f32` matrix with the linear-algebra
//!   kernels used by the layers (GEMM, transposed GEMM variants, axpy).
//! * [`kernels`] — fused dot / norm / cosine / axpy kernels with a fixed
//!   8-lane accumulation order shared by the scalar and SIMD paths
//!   (`NGL_KERNEL=scalar|simd`), plus the i8 symmetric quantization used
//!   for stored embeddings.
//! * [`Dense`], [`Relu`], [`BatchNorm1d`], [`L2Norm`] — layers with
//!   explicit `forward` / `backward` passes.
//! * [`SoftmaxCrossEntropy`] — fused softmax + cross-entropy for the
//!   token-classification and entity-classification heads.
//! * [`triplet`] and [`soft_nn`] — the two contrastive objectives the
//!   paper trains the Phrase Embedder with (§V-B): cosine-distance
//!   triplet loss with margin, and the soft-nearest-neighbour loss.
//! * [`Adam`] / [`Sgd`] — optimizers (the paper trains everything with
//!   Adam at fixed learning rates).
//! * [`Mlp`] — a small sequential network builder used by the Entity
//!   Classifier and the tagging heads.
//! * [`EarlyStopping`] — the patience-based stopping rule of §VI.
//!
//! Everything is deterministic given a seed: weight initialization takes
//! an explicit RNG, and no global state is used.

#![allow(clippy::needless_range_loop)] // index loops are idiomatic in the numeric kernels
#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod cosine;
pub mod early_stopping;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod linalg;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use codec::CodecError;
pub use cosine::{
    cosine_distance, cosine_similarity, cosine_similarity_prenorm, l2_normalize, l2_normalized,
};
pub use kernels::{set_kernel_mode, KernelMode, QuantizedVec};
pub use early_stopping::EarlyStopping;
pub use layers::{BatchNorm1d, Dense, L2Norm, Relu};
pub use linalg::Matrix;
pub use loss::{soft_nn, triplet, SoftmaxCrossEntropy};
pub use mlp::{Mlp, MlpConfig};
pub use optim::{Adam, AdamState, Sgd};
