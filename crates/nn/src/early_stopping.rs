//! Patience-based early stopping.
//!
//! §VI trains the Phrase Embedder with early stopping after 8 epochs
//! without validation improvement and the Entity Classifier with a
//! 20-epoch patience; this helper tracks the best score and epoch.

/// Tracks a validation metric and signals when training should stop.
///
/// Works for "lower is better" metrics (losses). For "higher is better"
/// metrics, feed the negated value.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    best_epoch: usize,
    epochs_seen: usize,
    stale: usize,
}

impl EarlyStopping {
    /// Stop after `patience` consecutive epochs without improvement.
    pub fn new(patience: usize) -> Self {
        Self {
            patience,
            best: f32::INFINITY,
            best_epoch: 0,
            epochs_seen: 0,
            stale: 0,
        }
    }

    /// Records an epoch's validation value. Returns `true` when the value
    /// improved on the best seen so far (i.e. a new checkpoint should be
    /// saved).
    pub fn record(&mut self, value: f32) -> bool {
        self.epochs_seen += 1;
        if value < self.best {
            self.best = value;
            self.best_epoch = self.epochs_seen;
            self.stale = 0;
            true
        } else {
            self.stale += 1;
            false
        }
    }

    /// Whether the patience budget is exhausted.
    pub fn should_stop(&self) -> bool {
        self.stale >= self.patience
    }

    /// Best value recorded so far.
    pub fn best(&self) -> f32 {
        self.best
    }

    /// 1-based epoch at which the best value was recorded (0 = never).
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_reset_patience() {
        let mut es = EarlyStopping::new(2);
        assert!(es.record(1.0));
        assert!(!es.record(1.5));
        assert!(es.record(0.9)); // reset
        assert!(!es.should_stop());
        assert!(!es.record(1.0));
        assert!(!es.record(1.0));
        assert!(es.should_stop());
        assert_eq!(es.best_epoch(), 3);
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn plateau_counts_as_stale() {
        let mut es = EarlyStopping::new(1);
        es.record(1.0);
        es.record(1.0); // equal, not better
        assert!(es.should_stop());
    }
}
