//! Optimizers.
//!
//! The paper trains every learnable component with Adam at a fixed
//! learning rate (§VI), with weight decay for regularization; a plain SGD
//! is provided for the structured-perceptron-style baselines and tests.

use serde::{Deserialize, Serialize};

/// Per-tensor Adam moment buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamState {
    /// Fresh state for a parameter tensor of `len` scalars.
    pub fn new(len: usize) -> Self {
        Self { m: vec![0.0; len], v: vec![0.0; len] }
    }
}

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay coefficient.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999 and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Sets the weight-decay coefficient (builder style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Advances the shared timestep; call once per optimization step,
    /// before updating the step's tensors.
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to `params` given `grads` and that
    /// tensor's moment `state`. [`Self::tick`] must have been called at
    /// least once.
    pub fn step(&self, params: &mut [f32], grads: &[f32], state: &mut AdamState) {
        assert_eq!(params.len(), grads.len(), "grad length mismatch");
        assert_eq!(params.len(), state.m.len(), "state length mismatch");
        assert!(self.t > 0, "call tick() before step()");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            state.m[i] = self.beta1 * state.m[i] + (1.0 - self.beta1) * g;
            state.v[i] = self.beta2 * state.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = state.m[i] / bc1;
            let v_hat = state.v[i] / bc2;
            params[i] -= self.lr * (m_hat / (v_hat.sqrt() + self.eps)
                + self.weight_decay * params[i]);
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// `params -= lr * grads`.
    pub fn step(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "grad length mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x − 3)² should converge to 3 quickly.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut x = vec![0.0f32];
        let mut state = AdamState::new(1);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.tick();
            adam.step(&mut x, &g, &mut state);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut x = vec![10.0f32];
        let sgd = Sgd::new(0.1);
        for _ in 0..200 {
            let g = vec![2.0 * (x[0] - 3.0)];
            sgd.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut x = vec![5.0f32];
        let mut state = AdamState::new(1);
        let mut adam = Adam::new(0.05).with_weight_decay(0.1);
        for _ in 0..2000 {
            adam.tick();
            // Zero task gradient: decay alone should pull x to 0.
            adam.step(&mut x, &[0.0], &mut state);
        }
        assert!(x[0].abs() < 0.5, "x = {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "call tick() before step()")]
    fn step_without_tick_panics() {
        let adam = Adam::new(0.1);
        let mut state = AdamState::new(1);
        adam.step(&mut [0.0], &[0.0], &mut state);
    }
}
