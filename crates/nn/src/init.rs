//! Weight initialization.
//!
//! Glorot/Xavier uniform for tanh-free dense stacks and He/Kaiming for
//! ReLU stacks. Both take the RNG explicitly so every model in the
//! workspace is reproducible from a single `u64` seed.

use rand::Rng;

use crate::linalg::Matrix;

/// Glorot/Xavier uniform initialization: `U(-l, l)` with
/// `l = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// He/Kaiming uniform initialization for ReLU layers: `U(-l, l)` with
/// `l = sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0f32 / fan_in as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_stays_within_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 64, 32);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        assert_eq!((w.rows(), w.cols()), (64, 32));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(3), 8, 8);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(3), 8, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = he_uniform(&mut StdRng::seed_from_u64(1), 8, 8);
        let b = he_uniform(&mut StdRng::seed_from_u64(2), 8, 8);
        assert_ne!(a, b);
    }
}
