//! Row-major `f32` matrices and the handful of dense kernels the layers
//! need. The matrices here are tiny (embedding dimension ≤ a few hundred,
//! batch sizes in the low thousands), so plain `ikj`-ordered loops are
//! fast enough and keep the crate dependency-free.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// Rows index samples, columns index features throughout this workspace.
///
/// ```
/// use ngl_nn::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let x = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
/// assert_eq!(a.matmul(&x).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix whose rows are the given slices.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` — standard GEMM. `self` is `m×k`, `other` is `k×n`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materializing the transpose.
    /// `self` is `k×m`, `other` is `k×n`, result is `m×n`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materializing the transpose.
    /// `self` is `m×k`, `other` is `n×k`, result is `m×n`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, n) = (self.rows, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                *o = dot(a_row, other.row(j));
            }
        }
        out
    }

    /// Returns an explicit transpose. Only used in tests and cold paths.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Adds `row` (length `cols`) to every row of `self` in place.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(row) {
                *o += b;
            }
        }
    }

    /// Column sums — a length-`cols` vector.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "axpy shape mismatch");
        assert_eq!(self.cols, other.cols, "axpy shape mismatch");
        crate::kernels::axpy(&mut self.data, alpha, &other.data);
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Frobenius norm. Useful in tests and for gradient-norm diagnostics.
    pub fn frobenius_norm(&self) -> f32 {
        crate::kernels::sq_norm(&self.data).sqrt()
    }

    /// Returns true when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// Dot product of two equal-length slices, backed by the dispatched
/// fixed-order kernel ([`crate::kernels::dot`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::dot(a, b)
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    crate::kernels::sq_norm(a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_and_col_sums_round_trip() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let b = Matrix::from_vec(1, 3, vec![2.0, 4.0, 6.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_rows_builds_expected_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }
}
