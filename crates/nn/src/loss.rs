//! Objective functions.
//!
//! * [`SoftmaxCrossEntropy`] — the classification loss used by the Local
//!   NER token head and the Entity Classifier.
//! * [`triplet`] — cosine-distance triplet loss with margin (Eq. 4). The
//!   paper sets the margin to 1 to push mentions of *different* entity
//!   types towards orthogonality.
//! * [`soft_nn`] — the soft-nearest-neighbour loss (Eq. 5) with a
//!   temperature controlling the relative weight of near pairs.

use crate::cosine::{cosine_distance, cosine_similarity_grad_a_into};
use crate::linalg::Matrix;

/// Fused softmax + cross-entropy head.
///
/// Working on logits directly keeps the backward pass the numerically
/// stable `probs - onehot` form.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Row-wise softmax of `logits`.
    pub fn probabilities(&self, logits: &Matrix) -> Matrix {
        let mut out = logits.clone();
        for r in 0..out.rows() {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Mean cross-entropy of `logits` against integer `targets`.
    ///
    /// Returns `(loss, probabilities)`; the probabilities are reused by
    /// [`Self::backward`].
    pub fn forward(&self, logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
        assert_eq!(logits.rows(), targets.len(), "target count mismatch");
        let probs = self.probabilities(logits);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < probs.cols(), "target class {t} out of range");
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        (loss / targets.len() as f32, probs)
    }

    /// Gradient of the mean cross-entropy w.r.t. the logits:
    /// `(probs - onehot) / batch`.
    pub fn backward(&self, probs: &Matrix, targets: &[usize]) -> Matrix {
        let b = targets.len() as f32;
        let mut grad = probs.clone();
        for (r, &t) in targets.iter().enumerate() {
            let row = grad.row_mut(r);
            row[t] -= 1.0;
            for v in row.iter_mut() {
                *v /= b;
            }
        }
        grad
    }
}

/// Numerically stable in-place softmax of one row.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Result of a triplet-loss evaluation.
#[derive(Debug, Clone)]
pub struct TripletResult {
    /// Hinge loss value `max(d(a,p) − d(a,n) + margin, 0)`.
    pub loss: f32,
    /// Gradient w.r.t. the anchor embedding (zero when inactive).
    pub grad_anchor: Vec<f32>,
    /// Gradient w.r.t. the positive embedding.
    pub grad_positive: Vec<f32>,
    /// Gradient w.r.t. the negative embedding.
    pub grad_negative: Vec<f32>,
}

/// Cosine-distance triplet loss (Eq. 4).
///
/// `loss = max(d(a,p) − d(a,n) + margin, 0)` with `d = 1 − cos`.
/// The paper uses `margin = 1.0` so that a negative example is pushed to
/// orthogonality with the anchor.
pub fn triplet(anchor: &[f32], positive: &[f32], negative: &[f32], margin: f32) -> TripletResult {
    let d = anchor.len();
    let d_ap = cosine_distance(anchor, positive);
    let d_an = cosine_distance(anchor, negative);
    let raw = d_ap - d_an + margin;
    if raw <= 0.0 {
        return TripletResult {
            loss: 0.0,
            grad_anchor: vec![0.0; d],
            grad_positive: vec![0.0; d],
            grad_negative: vec![0.0; d],
        };
    }
    // d(a,x) = 1 − cos(a,x) ⇒ ∂d/∂v = −∂cos/∂v. The cosine gradients
    // are written straight into the result vectors (one scratch buffer
    // for the anchor, which combines two of them).
    let mut grad_anchor = vec![0.0f32; d]; // dcos_an_da
    let mut grad_positive = vec![0.0f32; d]; // dcos_ap_dp
    let mut grad_negative = vec![0.0f32; d]; // dcos_an_dn
    let mut scratch = vec![0.0f32; d]; // dcos_ap_da
    cosine_similarity_grad_a_into(anchor, negative, &mut grad_anchor);
    cosine_similarity_grad_a_into(positive, anchor, &mut grad_positive);
    cosine_similarity_grad_a_into(negative, anchor, &mut grad_negative);
    cosine_similarity_grad_a_into(anchor, positive, &mut scratch);
    for (g, &s) in grad_anchor.iter_mut().zip(&scratch) {
        *g -= s;
    }
    for g in grad_positive.iter_mut() {
        *g = -*g;
    }
    TripletResult { loss: raw, grad_anchor, grad_positive, grad_negative }
}

/// Result of a soft-nearest-neighbour batch evaluation.
#[derive(Debug, Clone)]
pub struct SoftNnResult {
    /// Mean loss over anchors that have at least one positive in batch.
    pub loss: f32,
    /// Per-sample gradients, same shape as the input batch.
    pub grads: Matrix,
    /// Number of anchors that contributed (had an in-batch positive).
    pub active_anchors: usize,
}

/// Soft-nearest-neighbour loss (Eq. 5) over a mini-batch.
///
/// `embeddings` is `b × d`, `labels` assigns each row a class, and
/// `temperature` (τ) scales the cosine distances; smaller τ makes near
/// same-class pairs dominate, per Frosst et al. Anchors with no same-class
/// partner in the batch are skipped (their loss is undefined).
pub fn soft_nn(embeddings: &Matrix, labels: &[usize], temperature: f32) -> SoftNnResult {
    let b = embeddings.rows();
    assert_eq!(b, labels.len(), "label count mismatch");
    assert!(temperature > 0.0, "temperature must be positive");
    let mut grads = Matrix::zeros(b, embeddings.cols());
    if b < 2 {
        return SoftNnResult { loss: 0.0, grads, active_anchors: 0 };
    }

    // Pairwise cosine distances and exp(−d/τ) terms.
    let mut dist = vec![0.0f32; b * b];
    let mut e = vec![0.0f32; b * b];
    for i in 0..b {
        for j in 0..b {
            if i == j {
                continue;
            }
            let d = cosine_distance(embeddings.row(i), embeddings.row(j));
            dist[i * b + j] = d;
            e[i * b + j] = (-d / temperature).exp();
        }
    }

    let mut total = 0.0f32;
    let mut active = 0usize;
    // dL/dd_ij accumulated per ordered pair; converted to embedding
    // gradients afterwards.
    let mut dl_dd = vec![0.0f32; b * b];
    for i in 0..b {
        let mut p = 0.0f32; // Σ over positives
        let mut q = 0.0f32; // Σ over all k ≠ i
        for j in 0..b {
            if j == i {
                continue;
            }
            q += e[i * b + j];
            if labels[j] == labels[i] {
                p += e[i * b + j];
            }
        }
        if p <= 0.0 || q <= 0.0 {
            continue;
        }
        active += 1;
        total += -(p.max(1e-30) / q.max(1e-30)).ln().clamp(-50.0, 50.0);
        for j in 0..b {
            if j == i {
                continue;
            }
            // L_i = −log P + log Q ⇒ ∂L_i/∂e_ij = −[pos]/P + 1/Q,
            // ∂e_ij/∂d_ij = −e_ij/τ.
            let de = if labels[j] == labels[i] { -1.0 / p } else { 0.0 } + 1.0 / q;
            dl_dd[i * b + j] += de * (-e[i * b + j] / temperature);
        }
    }

    if active == 0 {
        return SoftNnResult { loss: 0.0, grads, active_anchors: 0 };
    }
    let scale = 1.0 / active as f32;
    total *= scale;

    // Convert ∂L/∂d_ij into embedding gradients: d_ij = 1 − cos(x_i, x_j).
    // The two cosine-gradient buffers are reused across all O(b²) pairs.
    let mut dcos_di = vec![0.0f32; embeddings.cols()];
    let mut dcos_dj = vec![0.0f32; embeddings.cols()];
    for i in 0..b {
        for j in 0..b {
            if i == j || dl_dd[i * b + j] == 0.0 {
                continue;
            }
            let g = dl_dd[i * b + j] * scale;
            cosine_similarity_grad_a_into(embeddings.row(i), embeddings.row(j), &mut dcos_di);
            cosine_similarity_grad_a_into(embeddings.row(j), embeddings.row(i), &mut dcos_dj);
            // ∂d/∂x = −∂cos/∂x; axpy with α = −g is bitwise identical
            // to the elementwise `+= g * (-gi)` form.
            crate::kernels::axpy(grads.row_mut(i), -g, &dcos_di);
            crate::kernels::axpy(grads.row_mut(j), -g, &dcos_dj);
        }
    }

    SoftNnResult { loss: total, grads, active_anchors: active }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let probs = SoftmaxCrossEntropy.probabilities(&logits);
        for r in 0..2 {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Matrix::from_vec(1, 2, vec![5.0, -5.0]);
        let bad = Matrix::from_vec(1, 2, vec![-5.0, 5.0]);
        let (lg, _) = SoftmaxCrossEntropy.forward(&good, &[0]);
        let (lb, _) = SoftmaxCrossEntropy.forward(&bad, &[0]);
        assert!(lg < 0.01);
        assert!(lb > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.5]);
        let targets = [2usize, 0];
        let sce = SoftmaxCrossEntropy;
        let (_, probs) = sce.forward(&logits, &targets);
        let grad = sce.backward(&probs, &targets);
        let h = 1e-2f32;
        for i in 0..logits.as_slice().len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += h;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= h;
            let fd = (sce.forward(&lp, &targets).0 - sce.forward(&lm, &targets).0) / (2.0 * h);
            assert!((fd - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn triplet_is_zero_when_satisfied() {
        // Anchor equals positive, negative orthogonal ⇒ d_ap − d_an + 1 = 0.
        let a = [1.0f32, 0.0];
        let n = [0.0f32, 1.0];
        let res = triplet(&a, &a, &n, 1.0);
        assert_eq!(res.loss, 0.0);
        assert!(res.grad_anchor.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn triplet_penalizes_near_negative() {
        let a = [1.0f32, 0.0];
        let p = [0.0f32, 1.0]; // far positive
        let n = [1.0f32, 0.1]; // near negative
        let res = triplet(&a, &p, &n, 1.0);
        assert!(res.loss > 1.5, "loss {}", res.loss);
    }

    #[test]
    fn triplet_gradients_match_finite_difference() {
        let a = [0.6f32, -0.2, 0.9];
        let p = [0.5f32, 0.1, 0.7];
        let n = [0.4f32, -0.3, 0.8];
        let res = triplet(&a, &p, &n, 1.0);
        assert!(res.loss > 0.0, "test requires an active triplet");
        let h = 1e-3f32;
        for i in 0..3 {
            let mut ap = a;
            ap[i] += h;
            let mut am = a;
            am[i] -= h;
            let fd = (triplet(&ap, &p, &n, 1.0).loss - triplet(&am, &p, &n, 1.0).loss) / (2.0 * h);
            assert!((fd - res.grad_anchor[i]).abs() < 1e-2, "anchor grad {i}");
            let mut pp = p;
            pp[i] += h;
            let mut pm = p;
            pm[i] -= h;
            let fd = (triplet(&a, &pp, &n, 1.0).loss - triplet(&a, &pm, &n, 1.0).loss) / (2.0 * h);
            assert!((fd - res.grad_positive[i]).abs() < 1e-2, "positive grad {i}");
            let mut np = n;
            np[i] += h;
            let mut nm = n;
            nm[i] -= h;
            let fd = (triplet(&a, &p, &np, 1.0).loss - triplet(&a, &p, &nm, 1.0).loss) / (2.0 * h);
            assert!((fd - res.grad_negative[i]).abs() < 1e-2, "negative grad {i}");
        }
    }

    #[test]
    fn soft_nn_lower_when_classes_separated() {
        let tight = Matrix::from_vec(
            4,
            2,
            vec![1.0, 0.05, 1.0, -0.05, -0.05, 1.0, 0.05, 1.0],
        );
        let mixed = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let labels = [0usize, 0, 1, 1];
        let l_tight = soft_nn(&tight, &labels, 0.5).loss;
        let l_mixed = soft_nn(&mixed, &labels, 0.5).loss;
        assert!(
            l_tight < l_mixed,
            "separated batch should score lower: {l_tight} vs {l_mixed}"
        );
    }

    #[test]
    fn soft_nn_skips_anchor_without_positive() {
        let emb = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
        // Class 1 appears once: that anchor must be skipped.
        let res = soft_nn(&emb, &[0, 0, 1], 0.5);
        assert_eq!(res.active_anchors, 2);
        assert!(res.loss.is_finite());
    }

    #[test]
    fn soft_nn_gradient_matches_finite_difference() {
        let emb = Matrix::from_vec(
            4,
            3,
            vec![
                0.9, 0.1, 0.2, //
                0.8, 0.2, 0.1, //
                0.1, 0.9, -0.3, //
                0.2, 0.7, -0.2,
            ],
        );
        let labels = [0usize, 0, 1, 1];
        let res = soft_nn(&emb, &labels, 0.7);
        let h = 1e-3f32;
        for i in 0..emb.as_slice().len() {
            let mut ep = emb.clone();
            ep.as_mut_slice()[i] += h;
            let mut em = emb.clone();
            em.as_mut_slice()[i] -= h;
            let fd =
                (soft_nn(&ep, &labels, 0.7).loss - soft_nn(&em, &labels, 0.7).loss) / (2.0 * h);
            assert!(
                (fd - res.grads.as_slice()[i]).abs() < 5e-2,
                "grad[{i}]: analytic {} vs fd {fd}",
                res.grads.as_slice()[i]
            );
        }
    }
}
