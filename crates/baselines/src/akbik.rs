//! Akbik et al. — pooled contextualized embeddings for NER.
//!
//! The published method keeps a memory of every contextual embedding
//! produced for each unique token, mean-pools that memory, and
//! concatenates the pooled "global" embedding to the local one before
//! the tagging head. We reproduce it on top of the frozen Local NER
//! encoder: the head is retrained on `[local ; pooled]` features, the
//! memory is seeded from the training corpus and extended with the
//! evaluation document before tagging it.

use std::collections::HashMap;

use parking_lot::Mutex;

use ngl_corpus::Dataset;
use ngl_encoder::{SequenceTagger, TokenEncoder};
use ngl_nn::{Matrix, Mlp, MlpConfig};
use ngl_text::{encode_bio, BioTag};

use crate::DocumentTagger;

/// Hyperparameters for the retrained head.
#[derive(Debug, Clone, Copy)]
pub struct AkbikConfig {
    /// Hidden width of the tagging head.
    pub hidden: usize,
    /// Head training epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AkbikConfig {
    fn default() -> Self {
        Self { hidden: 48, epochs: 8, seed: 29 }
    }
}

type Memory = HashMap<String, (Vec<f32>, usize)>;

/// The pooled-embedding tagger.
pub struct AkbikTagger {
    encoder: TokenEncoder,
    head: Mlp,
    memory: Mutex<Memory>,
}

fn fold(token: &str) -> String {
    token.strip_prefix('#').unwrap_or(token).to_lowercase()
}

fn pooled_of(memory: &Memory, token: &str, dim: usize) -> Vec<f32> {
    match memory.get(&fold(token)) {
        Some((sum, n)) => sum.iter().map(|v| v / *n as f32).collect(),
        None => vec![0.0; dim],
    }
}

fn remember(memory: &mut Memory, token: &str, emb: &[f32]) {
    let e = memory
        .entry(fold(token))
        .or_insert_with(|| (vec![0.0; emb.len()], 0));
    for (s, &v) in e.0.iter_mut().zip(emb) {
        *s += v;
    }
    e.1 += 1;
}

impl AkbikTagger {
    /// Trains the pooled-feature head on an annotated corpus, building
    /// the token memory along the way.
    pub fn train(encoder: TokenEncoder, train: &Dataset, cfg: AkbikConfig) -> Self {
        let d = encoder.out_dim();
        let mut memory: Memory = HashMap::new();

        // Pass 1: fill the memory from the training corpus.
        let mut encodings = Vec::with_capacity(train.tweets.len());
        for tweet in &train.tweets {
            let enc = encoder.encode_sentence(&tweet.tokens);
            for (i, tok) in tweet.tokens.iter().enumerate() {
                remember(&mut memory, tok, enc.embeddings.row(i));
            }
            encodings.push(enc.embeddings);
        }

        // Pass 2: build [local ; pooled] features and BIO targets.
        let mut rows: Vec<f32> = Vec::new();
        let mut targets: Vec<usize> = Vec::new();
        for (tweet, emb) in train.tweets.iter().zip(&encodings) {
            if tweet.tokens.is_empty() {
                continue;
            }
            let tags = encode_bio(tweet.tokens.len(), &tweet.gold_spans());
            for (i, tok) in tweet.tokens.iter().enumerate() {
                rows.extend_from_slice(emb.row(i));
                rows.extend(pooled_of(&memory, tok, d));
                targets.push(tags[i].index());
            }
        }
        let x = Matrix::from_vec(targets.len(), 2 * d, rows);
        let mut head = Mlp::new(MlpConfig {
            layer_sizes: vec![2 * d, cfg.hidden, BioTag::COUNT],
            lr: 2e-3,
            batch_size: 256,
            max_epochs: cfg.epochs,
            patience: 3,
            seed: cfg.seed,
            ..MlpConfig::default()
        });
        head.fit(&x, &targets);

        Self { encoder, head, memory: Mutex::new(memory) }
    }

    /// Clears the dynamic part of the memory (for independent eval runs
    /// the caller can rebuild the tagger instead; this is a convenience
    /// for experiments).
    pub fn memory_len(&self) -> usize {
        self.memory.lock().len()
    }

    fn tag_with_memory(&self, tokens: &[String], memory: &Memory) -> Vec<BioTag> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let d = self.encoder.out_dim();
        let enc = self.encoder.encode_sentence(tokens);
        let mut rows: Vec<f32> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            rows.extend_from_slice(enc.embeddings.row(i));
            rows.extend(pooled_of(memory, tok, d));
        }
        let x = Matrix::from_vec(tokens.len(), 2 * d, rows);
        self.head
            .predict(&x)
            .into_iter()
            .map(BioTag::from_index)
            .collect()
    }
}

impl SequenceTagger for AkbikTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        // Update the dynamic memory with this sentence, then tag.
        let mut memory = self.memory.lock();
        let enc = self.encoder.encode_sentence(tokens);
        for (i, tok) in tokens.iter().enumerate() {
            remember(&mut memory, tok, enc.embeddings.row(i));
        }
        self.tag_with_memory(tokens, &memory)
    }
}

impl DocumentTagger for AkbikTagger {
    fn tag_document(&self, sentences: &[Vec<String>]) -> Vec<Vec<BioTag>> {
        // Pass 1: extend the memory with the whole document, so pooled
        // embeddings reflect every occurrence (best case for Akbik).
        let mut memory = self.memory.lock().clone();
        for s in sentences {
            let enc = self.encoder.encode_sentence(s);
            for (i, tok) in s.iter().enumerate() {
                remember(&mut memory, tok, enc.embeddings.row(i));
            }
        }
        // Pass 2: tag with the document-aware memory.
        sentences
            .iter()
            .map(|s| self.tag_with_memory(s, &memory))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_corpus::{DatasetSpec, KnowledgeBase, Topic};
    use ngl_encoder::{train_encoder, EncoderConfig, TrainConfig};
    use ngl_text::decode_bio;

    fn setup() -> (AkbikTagger, Dataset) {
        let kb = KnowledgeBase::build(91, 50);
        let train = Dataset::generate(
            &DatasetSpec::streaming("t", 400, vec![Topic::Health], 91),
            &kb,
        );
        let test = Dataset::generate(
            &DatasetSpec::streaming("e", 80, vec![Topic::Health], 92),
            &kb,
        );
        let mut enc = TokenEncoder::new(EncoderConfig {
            embed_dim: 12,
            hidden_dim: 20,
            out_dim: 12,
            seed: 2,
            ..EncoderConfig::default()
        });
        train_encoder(&mut enc, &train, &TrainConfig { epochs: 3, ..Default::default() });
        let tagger = AkbikTagger::train(enc, &train, AkbikConfig {
            hidden: 24,
            epochs: 4,
            seed: 7,
        });
        (tagger, test)
    }

    #[test]
    fn trained_akbik_finds_entities() {
        let (tagger, test) = setup();
        let sentences: Vec<Vec<String>> =
            test.tweets.iter().map(|t| t.tokens.clone()).collect();
        let tags = tagger.tag_document(&sentences);
        let mut tp = 0usize;
        for (tweet, tag) in test.tweets.iter().zip(&tags) {
            let pred = decode_bio(tag);
            for g in tweet.gold_spans() {
                if pred.iter().any(|p| p.matches(&g)) {
                    tp += 1;
                }
            }
        }
        assert!(tp > 5, "akbik found only {tp} correct spans");
    }

    #[test]
    fn memory_grows_with_tagging() {
        let (tagger, test) = setup();
        let before = tagger.memory_len();
        let novel: Vec<String> = vec!["zyxwolia".into(), "qblorton".into()];
        let _ = tagger.tag(&novel);
        let _ = test; // keep test data alive for symmetry
        assert!(tagger.memory_len() >= before + 2);
    }

    #[test]
    fn empty_sentence_is_safe() {
        let (tagger, _) = setup();
        assert!(tagger.tag(&[]).is_empty());
    }
}
