//! HIRE-NER-style hierarchical contextualized representation.
//!
//! HIRE-NER distills document-level information for each unique token
//! from the entire scope of the document into a memory, fuses it with
//! the sentence-level representation, and decodes labels from the fused
//! representation. Our reproduction: a per-document token memory (mean
//! contextual embedding of each unique folded token across the
//! document) and a learned fusion — the retrained head consumes
//! `[local ; doc ; local ⊙ doc]`, letting it learn how much document
//! context to trust per dimension.

use std::collections::HashMap;

use ngl_corpus::Dataset;
use ngl_encoder::{SequenceTagger, TokenEncoder};
use ngl_nn::{Matrix, Mlp, MlpConfig};
use ngl_text::{encode_bio, BioTag};

use crate::DocumentTagger;

/// Head hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct HireConfig {
    /// Hidden width of the tagging head.
    pub hidden: usize,
    /// Head training epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for HireConfig {
    fn default() -> Self {
        Self { hidden: 48, epochs: 8, seed: 37 }
    }
}

type DocMemory = HashMap<String, (Vec<f32>, usize)>;

/// The document-memory tagger.
pub struct HireNer {
    encoder: TokenEncoder,
    head: Mlp,
}

fn fold(token: &str) -> String {
    token.strip_prefix('#').unwrap_or(token).to_lowercase()
}

fn build_doc_memory(encoder: &TokenEncoder, sentences: &[Vec<String>]) -> (DocMemory, Vec<Matrix>) {
    let mut mem: DocMemory = HashMap::new();
    let mut encs = Vec::with_capacity(sentences.len());
    for s in sentences {
        let enc = encoder.encode_sentence(s);
        for (i, tok) in s.iter().enumerate() {
            let e = mem
                .entry(fold(tok))
                .or_insert_with(|| (vec![0.0; enc.embeddings.cols()], 0));
            for (a, &v) in e.0.iter_mut().zip(enc.embeddings.row(i)) {
                *a += v;
            }
            e.1 += 1;
        }
        encs.push(enc.embeddings);
    }
    (mem, encs)
}

fn fused_features(local: &[f32], mem: &DocMemory, token: &str) -> Vec<f32> {
    let d = local.len();
    let doc: Vec<f32> = match mem.get(&fold(token)) {
        Some((sum, n)) => sum.iter().map(|v| v / *n as f32).collect(),
        None => vec![0.0; d],
    };
    let mut out = Vec::with_capacity(3 * d);
    out.extend_from_slice(local);
    out.extend_from_slice(&doc);
    out.extend(local.iter().zip(&doc).map(|(a, b)| a * b));
    out
}

impl HireNer {
    /// Trains the fused-feature head. The training corpus is treated as
    /// one document, mirroring how the system is applied to a stream.
    pub fn train(encoder: TokenEncoder, train: &Dataset, cfg: HireConfig) -> Self {
        let d = encoder.out_dim();
        let sentences: Vec<Vec<String>> =
            train.tweets.iter().map(|t| t.tokens.clone()).collect();
        let (mem, encs) = build_doc_memory(&encoder, &sentences);
        let mut rows: Vec<f32> = Vec::new();
        let mut targets: Vec<usize> = Vec::new();
        for (tweet, emb) in train.tweets.iter().zip(&encs) {
            if tweet.tokens.is_empty() {
                continue;
            }
            let tags = encode_bio(tweet.tokens.len(), &tweet.gold_spans());
            for (i, tok) in tweet.tokens.iter().enumerate() {
                rows.extend(fused_features(emb.row(i), &mem, tok));
                targets.push(tags[i].index());
            }
        }
        let x = Matrix::from_vec(targets.len(), 3 * d, rows);
        let mut head = Mlp::new(MlpConfig {
            layer_sizes: vec![3 * d, cfg.hidden, BioTag::COUNT],
            lr: 2e-3,
            batch_size: 256,
            max_epochs: cfg.epochs,
            patience: 3,
            seed: cfg.seed,
            ..MlpConfig::default()
        });
        head.fit(&x, &targets);
        Self { encoder, head }
    }
}

impl SequenceTagger for HireNer {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        // A single sentence is its own (tiny) document.
        self.tag_document(std::slice::from_ref(&tokens.to_vec()))
            .pop()
            .unwrap_or_default()
    }
}

impl DocumentTagger for HireNer {
    fn tag_document(&self, sentences: &[Vec<String>]) -> Vec<Vec<BioTag>> {
        let (mem, encs) = build_doc_memory(&self.encoder, sentences);
        sentences
            .iter()
            .zip(&encs)
            .map(|(s, emb)| {
                if s.is_empty() {
                    return Vec::new();
                }
                let mut rows: Vec<f32> = Vec::new();
                for (i, tok) in s.iter().enumerate() {
                    rows.extend(fused_features(emb.row(i), &mem, tok));
                }
                let x = Matrix::from_vec(s.len(), 3 * self.encoder.out_dim(), rows);
                self.head
                    .predict(&x)
                    .into_iter()
                    .map(BioTag::from_index)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_corpus::{DatasetSpec, KnowledgeBase, Topic};
    use ngl_encoder::{train_encoder, EncoderConfig, TrainConfig};
    use ngl_text::decode_bio;

    #[test]
    fn hire_learns_and_uses_document_context() {
        let kb = KnowledgeBase::build(101, 50);
        let train = Dataset::generate(
            &DatasetSpec::streaming("t", 400, vec![Topic::Politics], 71),
            &kb,
        );
        let test = Dataset::generate(
            &DatasetSpec::streaming("e", 80, vec![Topic::Politics], 72),
            &kb,
        );
        let mut enc = TokenEncoder::new(EncoderConfig {
            embed_dim: 12,
            hidden_dim: 20,
            out_dim: 12,
            seed: 4,
            ..EncoderConfig::default()
        });
        train_encoder(&mut enc, &train, &TrainConfig { epochs: 3, ..Default::default() });
        let hire = HireNer::train(enc, &train, HireConfig { hidden: 24, epochs: 4, seed: 9 });
        let sentences: Vec<Vec<String>> =
            test.tweets.iter().map(|t| t.tokens.clone()).collect();
        let tags = hire.tag_document(&sentences);
        assert_eq!(tags.len(), sentences.len());
        let mut tp = 0usize;
        for (tweet, tag) in test.tweets.iter().zip(&tags) {
            let pred = decode_bio(tag);
            for g in tweet.gold_spans() {
                if pred.iter().any(|p| p.matches(&g)) {
                    tp += 1;
                }
            }
        }
        assert!(tp > 5, "hire found only {tp} correct spans");
    }

    #[test]
    fn sentence_interface_matches_singleton_document() {
        let kb = KnowledgeBase::build(102, 30);
        let train = Dataset::generate(
            &DatasetSpec::streaming("t", 150, vec![Topic::Science], 73),
            &kb,
        );
        let enc = TokenEncoder::new(EncoderConfig {
            embed_dim: 8,
            hidden_dim: 12,
            out_dim: 8,
            seed: 5,
            ..EncoderConfig::default()
        });
        let hire = HireNer::train(enc, &train, HireConfig { hidden: 16, epochs: 2, seed: 3 });
        let s: Vec<String> = vec!["Apex".into(), "Labs".into(), "launched".into()];
        let a = hire.tag(&s);
        let b = hire.tag_document(&[s])[0].clone();
        assert_eq!(a, b);
    }
}
