//! Aguilar et al. (WNUT17 best system) stand-in: a feature-rich
//! linear-chain CRF.
//!
//! The original is a multi-task BiLSTM-CNN-CRF over character, token and
//! lexical features. What matters for the comparison is the model
//! *family*: rich hand-engineered local features plus global
//! label-sequence decoding, without large-scale pre-training. This
//! implementation uses hashed orthographic/lexical features, a
//! structured-perceptron trainer and Viterbi decoding.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_corpus::Dataset;
use ngl_encoder::SequenceTagger;
use ngl_text::shape::shape_string;
use ngl_text::{encode_bio, BioTag};

/// CRF hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AguilarConfig {
    /// Hashed feature buckets.
    pub feature_buckets: usize,
    /// Perceptron epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for AguilarConfig {
    fn default() -> Self {
        Self { feature_buckets: 1 << 17, epochs: 5, seed: 23 }
    }
}

const T: usize = BioTag::COUNT;

/// The linear-chain CRF tagger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AguilarTagger {
    cfg: AguilarConfig,
    /// Emission weights, `feature_buckets × T`, flattened.
    emit: Vec<f32>,
    /// Transition weights, `T × T` (from × to).
    trans: Vec<f32>,
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl AguilarTagger {
    /// Untrained tagger (predicts all-O until trained).
    pub fn new(cfg: AguilarConfig) -> Self {
        Self {
            cfg,
            emit: vec![0.0; cfg.feature_buckets * T],
            trans: vec![0.0; T * T],
        }
    }

    /// Trains on an annotated dataset and returns the trained tagger.
    pub fn train(dataset: &Dataset, cfg: AguilarConfig) -> Self {
        let mut tagger = Self::new(cfg);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..dataset.tweets.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let tweet = &dataset.tweets[i];
                if tweet.tokens.is_empty() {
                    continue;
                }
                let gold: Vec<usize> = encode_bio(tweet.tokens.len(), &tweet.gold_spans())
                    .iter()
                    .map(|t| t.index())
                    .collect();
                tagger.perceptron_update(&tweet.tokens, &gold);
            }
        }
        tagger
    }

    /// Hashed feature ids for token `i` of a sentence.
    fn features(&self, tokens: &[String], i: usize) -> Vec<usize> {
        let b = self.cfg.feature_buckets;
        let cur = tokens[i].to_lowercase();
        let prev = if i > 0 { tokens[i - 1].to_lowercase() } else { "<s>".to_string() };
        let shape = shape_string(&tokens[i]);
        let chars: Vec<char> = cur.chars().collect();
        let pre3: String = chars.iter().take(3).collect();
        let suf3: String = chars.iter().rev().take(3).collect();
        // Deliberately local feature set: word identity, orthography and
        // the previous token. The original system sees wider context only
        // through its BiLSTM states — far noisier than explicit n-gram
        // identity features would be — so no next-word/bigram identity
        // features are used here.
        let feats = [
            format!("w={cur}"),
            format!("shape={shape}"),
            format!("pre3={pre3}"),
            format!("suf3={suf3}"),
            format!("prev={prev}"),
            format!("cap={}", tokens[i].chars().next().is_some_and(|c| c.is_uppercase())),
            format!("hash={}", tokens[i].starts_with('#')),
            format!("at={}", tokens[i].starts_with('@')),
        ];
        feats.iter().map(|f| (fnv(f) % b as u64) as usize).collect()
    }

    fn emission_scores(&self, feats: &[usize]) -> [f32; T] {
        let mut s = [0.0f32; T];
        for &f in feats {
            let row = &self.emit[f * T..(f + 1) * T];
            for (o, &w) in s.iter_mut().zip(row) {
                *o += w;
            }
        }
        s
    }

    /// Viterbi decode over emission + transition scores.
    fn viterbi(&self, tokens: &[String]) -> Vec<usize> {
        let n = tokens.len();
        if n == 0 {
            return Vec::new();
        }
        let mut delta = vec![[f32::NEG_INFINITY; T]; n];
        let mut back = vec![[0usize; T]; n];
        let e0 = self.emission_scores(&self.features(tokens, 0));
        delta[0] = e0;
        for i in 1..n {
            let e = self.emission_scores(&self.features(tokens, i));
            for to in 0..T {
                let mut best = (0usize, f32::NEG_INFINITY);
                for from in 0..T {
                    let s = delta[i - 1][from] + self.trans[from * T + to];
                    if s > best.1 {
                        best = (from, s);
                    }
                }
                delta[i][to] = best.1 + e[to];
                back[i][to] = best.0;
            }
        }
        let mut last = (0usize, f32::NEG_INFINITY);
        for t in 0..T {
            if delta[n - 1][t] > last.1 {
                last = (t, delta[n - 1][t]);
            }
        }
        let mut path = vec![0usize; n];
        path[n - 1] = last.0;
        for i in (1..n).rev() {
            path[i - 1] = back[i][path[i]];
        }
        path
    }

    /// Structured-perceptron update toward the gold path.
    fn perceptron_update(&mut self, tokens: &[String], gold: &[usize]) {
        let pred = self.viterbi(tokens);
        if pred == gold {
            return;
        }
        for i in 0..tokens.len() {
            if pred[i] != gold[i] {
                for &f in &self.features(tokens, i) {
                    self.emit[f * T + gold[i]] += 1.0;
                    self.emit[f * T + pred[i]] -= 1.0;
                }
            }
            if i > 0 && (pred[i] != gold[i] || pred[i - 1] != gold[i - 1]) {
                self.trans[gold[i - 1] * T + gold[i]] += 1.0;
                self.trans[pred[i - 1] * T + pred[i]] -= 1.0;
            }
        }
    }
}

impl SequenceTagger for AguilarTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        self.viterbi(tokens)
            .into_iter()
            .map(BioTag::from_index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_corpus::{DatasetSpec, KnowledgeBase, Topic};
    use ngl_text::decode_bio;

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    #[test]
    fn untrained_tagger_predicts_something_valid() {
        let t = AguilarTagger::new(AguilarConfig { feature_buckets: 1 << 10, ..Default::default() });
        let tags = t.tag(&toks("stay home"));
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn empty_sentence_is_safe() {
        let t = AguilarTagger::new(AguilarConfig::default());
        assert!(t.tag(&[]).is_empty());
    }

    #[test]
    fn crf_learns_a_small_stream() {
        let kb = KnowledgeBase::build(51, 40);
        let train = Dataset::generate(
            &DatasetSpec::streaming("t", 400, vec![Topic::Health], 61),
            &kb,
        );
        let test = Dataset::generate(
            &DatasetSpec::streaming("e", 100, vec![Topic::Health], 62),
            &kb,
        );
        let tagger = AguilarTagger::train(&train, AguilarConfig {
            feature_buckets: 1 << 15,
            epochs: 4,
            seed: 1,
        });
        let mut tp = 0usize;
        let mut gold_n = 0usize;
        for tweet in &test.tweets {
            let pred = decode_bio(&tagger.tag(&tweet.tokens));
            for g in tweet.gold_spans() {
                gold_n += 1;
                if pred.iter().any(|p| p.matches(&g)) {
                    tp += 1;
                }
            }
        }
        let recall = tp as f64 / gold_n.max(1) as f64;
        assert!(recall > 0.2, "CRF learned nothing: recall {recall}");
        assert!(recall < 0.99, "CRF unrealistically perfect");
    }

    #[test]
    fn training_is_deterministic() {
        let kb = KnowledgeBase::build(52, 30);
        let train = Dataset::generate(
            &DatasetSpec::streaming("t", 120, vec![Topic::Sports], 63),
            &kb,
        );
        let cfg = AguilarConfig { feature_buckets: 1 << 14, epochs: 2, seed: 5 };
        let a = AguilarTagger::train(&train, cfg);
        let b = AguilarTagger::train(&train, cfg);
        let s = toks("what a match from Zara tonight");
        assert_eq!(a.tag(&s), b.tag(&s));
    }
}
