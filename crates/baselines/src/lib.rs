//! # ngl-baselines
//!
//! Reimplementations of the systems the paper compares against (§VI):
//!
//! **Local NER baselines**
//! * [`AguilarTagger`] — the WNUT17-winning multi-task
//!   BiLSTM-CNN-CRF of Aguilar et al., reproduced as a feature-rich
//!   linear-chain CRF trained with the structured perceptron and decoded
//!   with Viterbi (same model family: rich orthographic/lexical features
//!   + global label-sequence decoding).
//! * [`BertNer`] — Devlin et al.'s BERT fine-tuned for NER. Our stand-in
//!   is the same contextual-encoder architecture as the BERTweet
//!   substitute, but trained on a *clean, well-edited* corpus, which
//!   reproduces the domain-shift handicap BERT-base suffers on noisy
//!   tweets relative to tweet-pretrained BERTweet.
//!
//! **Global NER baselines**
//! * [`AkbikTagger`] — pooled contextualized embeddings: a dynamic
//!   memory of every token's contextual embeddings, mean-pooled and
//!   concatenated to the local embedding before the tagging head.
//! * [`HireNer`] — HIRE-NER-style document-level memory with a learned
//!   per-dimension gate fusing local and document-pooled token
//!   representations.
//! * [`DoclNer`] — DocL-NER-style document-level label-consistency
//!   refinement over a base tagger's predictions.
//!
//! All of them speak [`ngl_encoder::SequenceTagger`]; the document-level
//! systems additionally implement [`DocumentTagger`] so the harness can
//! give them a whole dataset as one "document", exactly as the paper
//! does ("both systems treat messages in a stream as composite content,
//! much like a document").

#![allow(clippy::needless_range_loop)] // index loops are idiomatic in the numeric kernels

#![forbid(unsafe_code)]

pub mod aguilar;
pub mod akbik;
pub mod bert_ner;
pub mod docl;
pub mod hire;

pub use aguilar::{AguilarConfig, AguilarTagger};
pub use akbik::{AkbikConfig, AkbikTagger};
pub use bert_ner::BertNer;
pub use docl::DoclNer;
pub use hire::{HireConfig, HireNer};

use ngl_text::BioTag;

/// A tagger that consumes a whole document (here: a dataset treated as
/// composite content) at once, so it can exploit cross-sentence
/// information.
pub trait DocumentTagger {
    /// Tags every sentence of the document.
    fn tag_document(&self, sentences: &[Vec<String>]) -> Vec<Vec<BioTag>>;
}

/// Helper: applies a per-sentence tagger to a document.
pub fn tag_sentencewise<T: ngl_encoder::SequenceTagger + ?Sized>(
    tagger: &T,
    sentences: &[Vec<String>],
) -> Vec<Vec<BioTag>> {
    sentences.iter().map(|s| tagger.tag(s)).collect()
}
