//! The BERT-NER baseline (Devlin et al., fine-tuned for NER).
//!
//! In the paper this is BERT-base — pre-trained on well-edited text —
//! fine-tuned on WNUT17, which leaves it with a domain-shift handicap on
//! noisy tweets relative to the tweet-pretrained BERTweet. We reproduce
//! that relationship by training the *same* encoder architecture on a
//! clean, well-edited corpus profile (`ngl_corpus::profiles::generic_train`)
//! and evaluating it on the noisy streams.

use ngl_corpus::Dataset;
use ngl_encoder::{
    train_encoder, ContextualTagger, EncoderConfig, SentenceEncoding, SequenceTagger,
    TokenEncoder, TrainConfig,
};
use ngl_text::BioTag;

/// The domain-shifted BERT-NER stand-in.
#[derive(Debug, Clone)]
pub struct BertNer {
    inner: TokenEncoder,
}

impl BertNer {
    /// Trains the baseline on a clean generic corpus (not the noisy
    /// tweet training set).
    pub fn train(generic_corpus: &Dataset, enc_cfg: EncoderConfig, train_cfg: &TrainConfig) -> Self {
        let mut inner = TokenEncoder::new(enc_cfg);
        train_encoder(&mut inner, generic_corpus, train_cfg);
        Self { inner }
    }

    /// Wraps an already trained encoder.
    pub fn from_encoder(inner: TokenEncoder) -> Self {
        Self { inner }
    }

    /// The wrapped encoder.
    pub fn encoder(&self) -> &TokenEncoder {
        &self.inner
    }
}

impl SequenceTagger for BertNer {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        self.inner.tag(tokens)
    }
}

impl ContextualTagger for BertNer {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        self.inner.encode(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_corpus::{DatasetSpec, KnowledgeBase, NoiseProfile, Topic};
    use ngl_text::decode_bio;

    fn spans_found(tagger: &dyn SequenceTagger, data: &Dataset) -> usize {
        let mut tp = 0;
        for t in &data.tweets {
            let pred = decode_bio(&tagger.tag(&t.tokens));
            for g in t.gold_spans() {
                if pred.iter().any(|p| p.matches(&g)) {
                    tp += 1;
                }
            }
        }
        tp
    }

    /// The domain-shift experiment in miniature: a clean-trained model
    /// should underperform a noisy-trained model on noisy tweets.
    #[test]
    fn clean_training_is_handicapped_on_noisy_tweets() {
        let kb = KnowledgeBase::build(71, 60);
        let clean_spec = DatasetSpec {
            noise: NoiseProfile::clean(),
            ..DatasetSpec::streaming("clean", 500, vec![Topic::Health], 81)
        };
        let noisy_spec = DatasetSpec::streaming("noisy", 500, vec![Topic::Health], 82);
        let clean = Dataset::generate(&clean_spec, &kb);
        let noisy = Dataset::generate(&noisy_spec, &kb);
        let test = Dataset::generate(
            &DatasetSpec::streaming("test", 150, vec![Topic::Health], 83),
            &kb,
        );
        let enc_cfg = EncoderConfig {
            embed_dim: 16,
            hidden_dim: 24,
            out_dim: 16,
            seed: 3,
            ..EncoderConfig::default()
        };
        let tc = TrainConfig { epochs: 4, ..Default::default() };
        let bert = BertNer::train(&clean, enc_cfg, &tc);
        let mut tweet_model = TokenEncoder::new(enc_cfg);
        train_encoder(&mut tweet_model, &noisy, &tc);

        let bert_tp = spans_found(&bert, &test);
        let tweet_tp = spans_found(&tweet_model, &test);
        assert!(
            bert_tp < tweet_tp,
            "domain shift not reproduced: clean {bert_tp} vs noisy {tweet_tp}"
        );
        assert!(bert_tp > 0, "clean model should still find something");
    }
}
