//! DocL-NER-style document-level label-consistency refinement.
//!
//! DocL-NER augments a base NER model with a label refinement network
//! that enforces label consistency across a document. Our reproduction
//! implements the refinement as confidence-free majority voting: the
//! base tagger runs over the whole document, mentions sharing the same
//! folded surface string pool their predicted types, and every detected
//! mention is relabelled with its surface's majority type. Consistency
//! improves typing but — unlike NER Globalizer — discovers no new
//! mentions, which is exactly the gap Table V exhibits.

use std::collections::HashMap;

use ngl_encoder::SequenceTagger;
use ngl_text::{decode_bio, encode_bio, BioTag, EntityType, Span};

use crate::DocumentTagger;

/// The refinement wrapper around any base tagger.
pub struct DoclNer<T: SequenceTagger> {
    base: T,
}

impl<T: SequenceTagger> DoclNer<T> {
    /// Wraps a trained base tagger.
    pub fn new(base: T) -> Self {
        Self { base }
    }

    /// The wrapped tagger.
    pub fn base(&self) -> &T {
        &self.base
    }
}

fn surface_of(tokens: &[String], span: &Span) -> String {
    tokens[span.start..span.end]
        .iter()
        .map(|t| t.strip_prefix('#').unwrap_or(t).to_lowercase())
        .collect::<Vec<_>>()
        .join(" ")
}

impl<T: SequenceTagger> DocumentTagger for DoclNer<T> {
    fn tag_document(&self, sentences: &[Vec<String>]) -> Vec<Vec<BioTag>> {
        // Pass 1: base predictions per sentence.
        let preds: Vec<Vec<Span>> = sentences
            .iter()
            .map(|s| decode_bio(&self.base.tag(s)))
            .collect();

        // Pass 2: vote per surface string.
        let mut votes: HashMap<String, [usize; EntityType::COUNT]> = HashMap::new();
        for (s, spans) in sentences.iter().zip(&preds) {
            for span in spans {
                votes.entry(surface_of(s, span)).or_default()[span.ty.index()] += 1;
            }
        }
        let majority: HashMap<String, EntityType> = votes
            .into_iter()
            .map(|(surf, counts)| {
                let best = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .expect("non-empty counts");
                (surf, EntityType::from_index(best))
            })
            .collect();

        // Pass 3: relabel every detection with its surface's majority.
        sentences
            .iter()
            .zip(&preds)
            .map(|(s, spans)| {
                let refined: Vec<Span> = spans
                    .iter()
                    .map(|span| Span {
                        ty: *majority.get(&surface_of(s, span)).unwrap_or(&span.ty),
                        ..*span
                    })
                    .collect();
                encode_bio(s.len(), &refined)
            })
            .collect()
    }
}

impl<T: SequenceTagger> SequenceTagger for DoclNer<T> {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        // Per-sentence use degenerates to the base tagger (a single
        // sentence provides no cross-sentence consistency signal).
        self.base.tag(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted base tagger: tags "washington" as LOC in the first
    /// sentence and PER elsewhere, so the majority vote must flip the
    /// minority label.
    struct Scripted;

    impl SequenceTagger for Scripted {
        fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
            tokens
                .iter()
                .map(|t| {
                    if t.eq_ignore_ascii_case("washington") {
                        // Sentence identity is not visible here; use the
                        // neighbouring token as the disambiguator.
                        if tokens.iter().any(|x| x == "visited") {
                            BioTag::B(EntityType::Location)
                        } else {
                            BioTag::B(EntityType::Person)
                        }
                    } else {
                        BioTag::O
                    }
                })
                .collect()
        }
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    #[test]
    fn majority_vote_relabels_minority_predictions() {
        let docl = DoclNer::new(Scripted);
        let doc = vec![
            toks("we visited washington today"),   // LOC (minority)
            toks("washington signed the bill"),    // PER
            toks("washington spoke to congress"),  // PER
        ];
        let tags = docl.tag_document(&doc);
        for sent_tags in &tags {
            for t in sent_tags {
                if let BioTag::B(ty) = t {
                    assert_eq!(*ty, EntityType::Person, "vote should flip to PER");
                }
            }
        }
    }

    #[test]
    fn refinement_discovers_no_new_mentions() {
        let docl = DoclNer::new(Scripted);
        let doc = vec![toks("nothing here at all"), toks("washington signed it")];
        let tags = docl.tag_document(&doc);
        assert!(tags[0].iter().all(|t| *t == BioTag::O));
        assert_eq!(
            tags[1].iter().filter(|t| **t != BioTag::O).count(),
            1,
            "exactly the base detection survives"
        );
    }

    #[test]
    fn sentence_interface_is_base_passthrough() {
        let docl = DoclNer::new(Scripted);
        let s = toks("washington signed the bill");
        assert_eq!(docl.tag(&s), docl.base().tag(&s));
    }
}
