//! # ngl-ctrie
//!
//! The **CandidatePrefixTrie** (CTrie, §IV) and the mention-extraction
//! scan (§V-A).
//!
//! Local NER registers every candidate surface form it discovers in the
//! CTrie — a forest of token-level prefix tries with case-insensitive
//! (and hashtag-marker-insensitive) node comparison. Global NER then
//! re-scans every tweet of the batch against the trie, extracting *all*
//! mentions of the registered surface forms, including the ones Local
//! NER missed. The scan finds, at each position, the longest token
//! subsequence matching a registered surface, then skips past it; on a
//! failed search it restarts one token to the right.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A discovered occurrence of a registered surface form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MentionOccurrence {
    /// First token index of the occurrence.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
    /// The canonical (folded) surface form matched.
    pub surface: String,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Node {
    children: BTreeMap<String, Node>,
    terminal: bool,
}

/// Case-insensitive token-level prefix trie forest.
///
/// ```
/// use ngl_ctrie::CTrie;
///
/// let mut trie = CTrie::new();
/// trie.insert(&["andy", "beshear"]);
/// trie.insert(&["coronavirus"]);
///
/// let tweet = ["thanks", "Andy", "Beshear", "for", "the", "#Coronavirus", "update"];
/// let mentions = trie.extract_mentions(&tweet, 4);
/// assert_eq!(mentions.len(), 2);
/// assert_eq!(mentions[0].surface, "andy beshear");
/// assert_eq!((mentions[1].start, mentions[1].end), (5, 6));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CTrie {
    root: Node,
    len: usize,
    /// Monotonic counter bumped on every *new* surface registration.
    /// Consumers (the pipeline's incremental mention cache) compare it
    /// against the version they last scanned with: an unchanged version
    /// guarantees the trie accepts exactly the same matches, so earlier
    /// scan results are still valid.
    #[serde(default)]
    version: u64,
}

/// Folds one token for trie matching: lowercase, leading `#` stripped
/// (the paper's case-insensitive comparison of tokens with CTrie nodes,
/// extended to hashtag markers so "#Coronavirus" matches "coronavirus").
pub fn fold_token(token: &str) -> String {
    let t = token.strip_prefix('#').unwrap_or(token);
    t.to_lowercase()
}

impl CTrie {
    /// An empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a surface form given as tokens. Returns `true` when the
    /// surface was not present before. Empty surfaces are rejected.
    pub fn insert<S: AsRef<str>>(&mut self, surface: &[S]) -> bool {
        let folded: Vec<String> = surface
            .iter()
            .map(|t| fold_token(t.as_ref()))
            .filter(|t| !t.is_empty())
            .collect();
        if folded.is_empty() {
            return false;
        }
        let mut node = &mut self.root;
        for tok in &folded {
            node = node.children.entry(tok.clone()).or_default();
        }
        if node.terminal {
            false
        } else {
            node.terminal = true;
            self.len += 1;
            self.version += 1;
            true
        }
    }

    /// The trie's content version: bumped exactly when [`Self::insert`]
    /// registers a previously unknown surface. Re-inserting a known
    /// surface leaves it unchanged.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the exact surface form is registered.
    pub fn contains<S: AsRef<str>>(&self, surface: &[S]) -> bool {
        let mut node = &self.root;
        let mut any = false;
        for t in surface {
            let f = fold_token(t.as_ref());
            if f.is_empty() {
                continue;
            }
            any = true;
            match node.children.get(&f) {
                Some(n) => node = n,
                None => return false,
            }
        }
        any && node.terminal
    }

    /// Number of registered surface forms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no surface forms are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enumerates all registered surface forms (folded, space-joined),
    /// in lexicographic order.
    pub fn surfaces(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len);
        let mut path: Vec<&str> = Vec::new();
        fn walk<'a>(node: &'a Node, path: &mut Vec<&'a str>, out: &mut Vec<String>) {
            if node.terminal {
                out.push(path.join(" "));
            }
            for (tok, child) in &node.children {
                path.push(tok);
                walk(child, path, out);
                path.pop();
            }
        }
        walk(&self.root, &mut path, &mut out);
        out
    }

    /// The §V-A scan: finds all non-overlapping occurrences of registered
    /// surface forms in `tokens`, preferring the longest match at each
    /// position and skipping past each match.
    ///
    /// `max_len` caps the lookahead window (the paper's "up to k
    /// following tokens").
    pub fn extract_mentions<S: AsRef<str>>(
        &self,
        tokens: &[S],
        max_len: usize,
    ) -> Vec<MentionOccurrence> {
        let folded: Vec<String> = tokens.iter().map(|t| fold_token(t.as_ref())).collect();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < folded.len() {
            // Walk the trie from position i, remembering the longest
            // terminal node reached.
            let mut node = &self.root;
            let mut best_end: Option<usize> = None;
            let mut j = i;
            while j < folded.len() && j - i < max_len {
                match node.children.get(&folded[j]) {
                    Some(next) => {
                        node = next;
                        j += 1;
                        if node.terminal {
                            best_end = Some(j);
                        }
                    }
                    None => break,
                }
            }
            match best_end {
                Some(end) => {
                    out.push(MentionOccurrence {
                        start: i,
                        end,
                        surface: folded[i..end].join(" "),
                    });
                    i = end; // skip past the match
                }
                None => i += 1, // restart one token to the right
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(surfaces: &[&str]) -> CTrie {
        let mut t = CTrie::new();
        for s in surfaces {
            let toks: Vec<&str> = s.split(' ').collect();
            t.insert(&toks);
        }
        t
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = CTrie::new();
        assert!(t.insert(&["andy", "beshear"]));
        assert!(!t.insert(&["Andy", "Beshear"])); // case-folded duplicate
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn version_equals_len_always() {
        // `version` and `len` bump together (exactly once per new
        // surface) and never decrease, so they are permanently equal.
        // Checkpoint serialization relies on this: a trie is persisted
        // as its surface list, and re-inserting the surfaces must land
        // back on the recorded version.
        let mut t = CTrie::new();
        assert_eq!(t.version(), t.len() as u64);
        for s in ["andy beshear", "Andy Beshear", "italy", "#Italy", "new york", "italy"] {
            let toks: Vec<&str> = s.split(' ').collect();
            t.insert(&toks);
            assert_eq!(t.version(), t.len() as u64);
        }
        // Rebuilding from the surface list reproduces the version.
        let rebuilt = trie(&t.surfaces().iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(rebuilt.version(), t.version());
        assert_eq!(rebuilt.surfaces(), t.surfaces());
    }

    #[test]
    fn version_bumps_only_on_new_surfaces() {
        let mut t = CTrie::new();
        assert_eq!(t.version(), 0);
        t.insert(&["andy", "beshear"]);
        assert_eq!(t.version(), 1);
        t.insert(&["Andy", "Beshear"]); // duplicate: no bump
        assert_eq!(t.version(), 1);
        t.insert(&["andy"]); // prefix of an existing path is still new
        assert_eq!(t.version(), 2);
        t.insert::<&str>(&[]); // rejected: no bump
        assert_eq!(t.version(), 2);
    }

    #[test]
    fn contains_is_case_insensitive() {
        let t = trie(&["justice department"]);
        assert!(t.contains(&["Justice", "Department"]));
        assert!(t.contains(&["JUSTICE", "DEPARTMENT"]));
        assert!(!t.contains(&["justice"]));
    }

    #[test]
    fn hashtag_marker_is_transparent() {
        let t = trie(&["coronavirus"]);
        assert!(t.contains(&["#Coronavirus"]));
        let m = t.extract_mentions(&toks("worried about #coronavirus today"), 4);
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].start, m[0].end), (2, 3));
        assert_eq!(m[0].surface, "coronavirus");
    }

    #[test]
    fn scan_prefers_longest_match() {
        let t = trie(&["andy", "andy beshear"]);
        let m = t.extract_mentions(&toks("gov Andy Beshear spoke"), 4);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "andy beshear");
        assert_eq!((m[0].start, m[0].end), (1, 3));
    }

    #[test]
    fn scan_finds_multiple_non_overlapping() {
        let t = trie(&["italy", "coronavirus", "us"]);
        let m = t.extract_mentions(&toks("coronavirus cases in Italy and the US rising"), 3);
        let surfaces: Vec<&str> = m.iter().map(|m| m.surface.as_str()).collect();
        assert_eq!(surfaces, vec!["coronavirus", "italy", "us"]);
    }

    #[test]
    fn failed_long_match_falls_back_to_shorter_suffix_start() {
        // "new york city" registered, text has "new york state": the
        // scan must still find "new york" if registered, or restart
        // correctly if not.
        let t = trie(&["new york city", "york"]);
        let m = t.extract_mentions(&toks("the new york state fair"), 4);
        // "new york city" fails at "state"; restart at "york" finds it.
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "york");
        assert_eq!((m[0].start, m[0].end), (2, 3));
    }

    #[test]
    fn max_len_caps_lookahead() {
        let t = trie(&["a b c d"]);
        let text = toks("a b c d");
        assert!(t.extract_mentions(&text, 3).is_empty());
        assert_eq!(t.extract_mentions(&text, 4).len(), 1);
    }

    #[test]
    fn adjacent_matches_both_found() {
        let t = trie(&["andy beshear", "italy"]);
        let m = t.extract_mentions(&toks("Andy Beshear Italy"), 4);
        assert_eq!(m.len(), 2);
        assert_eq!((m[0].start, m[0].end), (0, 2));
        assert_eq!((m[1].start, m[1].end), (2, 3));
    }

    #[test]
    fn surfaces_enumerates_everything() {
        let t = trie(&["b", "a c", "a"]);
        assert_eq!(t.surfaces(), vec!["a", "a c", "b"]);
    }

    #[test]
    fn empty_trie_extracts_nothing() {
        let t = CTrie::new();
        assert!(t.extract_mentions(&toks("anything at all"), 4).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn empty_surface_is_rejected() {
        let mut t = CTrie::new();
        assert!(!t.insert::<&str>(&[]));
        assert!(!t.insert(&["#"]));
        assert!(t.is_empty());
    }

    #[test]
    fn overlap_resolution_is_greedy_left_to_right() {
        // "us open" and "open tennis" both registered; greedy scan takes
        // "us open" and then cannot match "tennis" alone.
        let t = trie(&["us open", "open tennis"]);
        let m = t.extract_mentions(&toks("the us open tennis final"), 4);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "us open");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn token_strategy() -> impl Strategy<Value = String> {
        // Small alphabet to force collisions and repeats.
        prop::sample::select(vec![
            "alpha", "beta", "gamma", "delta", "us", "italy", "covid", "beshear",
        ])
        .prop_map(|s| s.to_string())
    }

    proptest! {
        /// Every registered surface is found when it occurs verbatim.
        #[test]
        fn inserted_surface_is_extracted(
            surface in prop::collection::vec(token_strategy(), 1..3),
            prefix in prop::collection::vec(token_strategy(), 0..3),
        ) {
            let mut t = CTrie::new();
            t.insert(&surface);
            let mut text = prefix.clone();
            text.extend(surface.iter().cloned());
            let m = t.extract_mentions(&text, 8);
            // The surface starts at prefix.len() unless an earlier
            // (possibly overlapping) match consumed those tokens; in all
            // cases at least one occurrence of the surface string exists.
            prop_assert!(
                m.iter().any(|occ| occ.surface == surface.join(" ")),
                "surface {:?} not found in {:?}: {m:?}", surface, text
            );
        }

        /// Matches never overlap and are sorted.
        #[test]
        fn matches_are_disjoint_and_ordered(
            surfaces in prop::collection::vec(
                prop::collection::vec(token_strategy(), 1..3), 1..5),
            text in prop::collection::vec(token_strategy(), 0..20),
        ) {
            let mut t = CTrie::new();
            for s in &surfaces {
                t.insert(s);
            }
            let m = t.extract_mentions(&text, 8);
            for w in m.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            for occ in &m {
                prop_assert!(occ.start < occ.end && occ.end <= text.len());
                prop_assert!(t.contains(&text[occ.start..occ.end]));
            }
        }

        /// `contains` agrees with `surfaces` enumeration.
        #[test]
        fn surfaces_round_trip(
            surfaces in prop::collection::vec(
                prop::collection::vec(token_strategy(), 1..4), 0..8),
        ) {
            let mut t = CTrie::new();
            for s in &surfaces {
                t.insert(s);
            }
            let listed = t.surfaces();
            prop_assert_eq!(listed.len(), t.len());
            for s in listed {
                let toks: Vec<&str> = s.split(' ').collect();
                prop_assert!(t.contains(&toks));
            }
        }
    }
}
