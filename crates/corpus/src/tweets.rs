//! Tweet rendering: template + knowledge base + noise → annotated tweet.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use ngl_text::{EntityType, Span};

use crate::kb::{EntityId, KnowledgeBase, Topic, AMBIGUOUS_NON_ENTITY_WORDS};
use crate::noise::{render_mention, render_word, NoiseProfile};
use crate::templates::{filler_vocab, Part, Template, USER_HANDLES};

/// A gold-standard mention: a typed token span plus the identity of the
/// knowledge-base entity it refers to. Entity identity is what lets the
/// evaluation reproduce Figure 4 (recall vs. mention frequency) and the
/// §VI-C error analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldMention {
    /// Token span with the entity's type.
    pub span: Span,
    /// The referenced entity.
    pub entity: EntityId,
}

/// One generated microblog message with gold annotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotatedTweet {
    /// Message id within its dataset.
    pub id: u64,
    /// The conversation topic the message belongs to.
    pub topic: Topic,
    /// Tokens (pre-tokenized; `text()` joins them back).
    pub tokens: Vec<String>,
    /// Gold mentions in token coordinates.
    pub gold: Vec<GoldMention>,
}

impl AnnotatedTweet {
    /// The raw message text.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }

    /// Just the typed spans of the gold mentions.
    pub fn gold_spans(&self) -> Vec<Span> {
        self.gold.iter().map(|g| g.span).collect()
    }
}

/// Zipf-weighted entity sampler over a topic pool.
///
/// Rank order follows pool order; weight of rank r is `1/(r+1)^s`. With
/// `s > 0` a handful of head entities dominate the stream — the entity
/// recurrence Global NER feeds on. `s = 0` reproduces the uniform,
/// recurrence-free sampling of WNUT17/BTC.
#[derive(Debug, Clone)]
pub struct EntitySampler {
    by_type: [Vec<(EntityId, f64)>; EntityType::COUNT],
    any: Vec<(EntityId, f64)>,
}

impl EntitySampler {
    /// Builds a sampler over `pool` with Zipf exponent `s`.
    pub fn new(kb: &KnowledgeBase, pool: &[EntityId], s: f64) -> Self {
        let mut by_type: [Vec<(EntityId, f64)>; EntityType::COUNT] = Default::default();
        let mut any = Vec::new();
        for (rank, &id) in pool.iter().enumerate() {
            let w = 1.0 / ((rank + 1) as f64).powf(s);
            any.push((id, w));
            by_type[kb.get(id).ty.index()].push((id, w));
        }
        let cumulate = |v: &mut Vec<(EntityId, f64)>| {
            let mut acc = 0.0;
            for e in v.iter_mut() {
                acc += e.1;
                e.1 = acc;
            }
        };
        for v in &mut by_type {
            cumulate(v);
        }
        cumulate(&mut any);
        Self { by_type, any }
    }

    /// Samples an entity, optionally restricted to one type. Falls back
    /// to the full pool when the typed pool is empty.
    pub fn sample(&self, rng: &mut StdRng, ty: Option<EntityType>) -> EntityId {
        let pool = match ty {
            Some(t) if !self.by_type[t.index()].is_empty() => &self.by_type[t.index()],
            _ => &self.any,
        };
        assert!(!pool.is_empty(), "sampler pool is empty");
        let total = pool.last().expect("non-empty").1;
        let x = rng.gen_range(0.0..total);
        let idx = pool.partition_point(|&(_, c)| c < x);
        pool[idx.min(pool.len() - 1)].0
    }

    /// Samples with a per-type weight vector (indexed by
    /// [`EntityType::index`]): first draws the type, then an entity of
    /// that type. Used for weak-context slots, where streams skew toward
    /// the context-poor types (products, orgs shouted without
    /// introduction).
    pub fn sample_type_weighted(&self, rng: &mut StdRng, weights: &[f64; 4]) -> EntityId {
        let available: Vec<(usize, f64)> = (0..EntityType::COUNT)
            .filter(|&t| !self.by_type[t].is_empty())
            .map(|t| (t, weights[t].max(0.0)))
            .collect();
        let total: f64 = available.iter().map(|(_, w)| w).sum();
        if available.is_empty() || total <= 0.0 {
            return self.sample(rng, None);
        }
        let mut x = rng.gen_range(0.0..total);
        for (t, w) in &available {
            x -= w;
            if x <= 0.0 {
                return self.sample(rng, Some(EntityType::from_index(*t)));
            }
        }
        self.sample(rng, None)
    }
}

/// Type weights for weak-context `{E}` slots: context-poor types (ORG,
/// MISC) are over-represented there, mirroring how products, creative
/// works and org acronyms surface in real streams without introduction.
pub const WEAK_SLOT_TYPE_WEIGHTS: [f64; 4] = [0.12, 0.12, 0.38, 0.38];

/// Renders one template into an annotated tweet.
#[allow(clippy::too_many_arguments)] // the slots of one generation step
pub fn generate_tweet(
    rng: &mut StdRng,
    kb: &KnowledgeBase,
    sampler: &EntitySampler,
    noise: &NoiseProfile,
    topic: Topic,
    hashtags: &[String],
    template: &Template,
    id: u64,
) -> AnnotatedTweet {
    let mut tokens: Vec<String> = Vec::new();
    let mut gold: Vec<GoldMention> = Vec::new();
    for part in &template.parts {
        match part {
            Part::Word(w) => tokens.push(render_word(rng, noise, w)),
            Part::Entity(ty) => {
                push_mention(rng, kb, sampler, noise, Some(*ty), &mut tokens, &mut gold);
            }
            Part::AnyEntity => {
                let id = sampler.sample_type_weighted(rng, &WEAK_SLOT_TYPE_WEIGHTS);
                push_mention_of(rng, kb, id, noise, &mut tokens, &mut gold);
            }
            Part::Ambiguous => {
                let w = AMBIGUOUS_NON_ENTITY_WORDS
                    [rng.gen_range(0..AMBIGUOUS_NON_ENTITY_WORDS.len())];
                tokens.push(w.to_string());
            }
            Part::Hashtag => {
                let h = &hashtags[rng.gen_range(0..hashtags.len().max(1))];
                tokens.push(h.clone());
            }
            Part::User => {
                tokens.push(USER_HANDLES[rng.gen_range(0..USER_HANDLES.len())].to_string());
            }
            Part::Url => tokens.push(random_url(rng)),
            Part::Number => tokens.push(rng.gen_range(2..20_000u32).to_string()),
            Part::Filler => {
                let vocab = filler_vocab(topic);
                let n = rng.gen_range(2..=4usize);
                for _ in 0..n {
                    let w = vocab[rng.gen_range(0..vocab.len())];
                    tokens.push(render_word(rng, noise, w));
                }
            }
        }
    }
    AnnotatedTweet { id, topic, tokens, gold }
}

fn push_mention(
    rng: &mut StdRng,
    kb: &KnowledgeBase,
    sampler: &EntitySampler,
    noise: &NoiseProfile,
    ty: Option<EntityType>,
    tokens: &mut Vec<String>,
    gold: &mut Vec<GoldMention>,
) {
    let id = sampler.sample(rng, ty);
    push_mention_of(rng, kb, id, noise, tokens, gold);
}

fn push_mention_of(
    rng: &mut StdRng,
    kb: &KnowledgeBase,
    id: EntityId,
    noise: &NoiseProfile,
    tokens: &mut Vec<String>,
    gold: &mut Vec<GoldMention>,
) {
    let rec = kb.get(id);
    let alias = &rec.aliases[rng.gen_range(0..rec.aliases.len())];
    let rendered = render_mention(rng, noise, alias);
    let start = tokens.len();
    tokens.extend(rendered);
    let end = tokens.len();
    gold.push(GoldMention { span: Span::new(start, end, rec.ty), entity: id });
}

fn random_url(rng: &mut StdRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let tail: String = (0..8)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect();
    format!("https://t.co/{tail}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::strong_templates;
    use rand::SeedableRng;

    fn setup() -> (KnowledgeBase, EntitySampler) {
        let kb = KnowledgeBase::build(3, 30);
        let pool: Vec<EntityId> = kb.topic_entities(Topic::Health).to_vec();
        let sampler = EntitySampler::new(&kb, &pool, 1.0);
        (kb, sampler)
    }

    #[test]
    fn gold_spans_point_at_mention_tokens() {
        let (kb, sampler) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let noise = NoiseProfile::default();
        let hashtags = vec!["#covid".to_string()];
        for (i, t) in strong_templates(Topic::Health).iter().enumerate() {
            let tw = generate_tweet(
                &mut rng, &kb, &sampler, &noise, Topic::Health, &hashtags, t, i as u64,
            );
            assert_eq!(tw.gold.len(), t.entity_slots());
            for g in &tw.gold {
                assert!(g.span.end <= tw.tokens.len());
                let surface = g.span.surface(&tw.tokens).to_lowercase();
                let rec = kb.get(g.entity);
                let matches_alias = rec.aliases.iter().any(|a| {
                    let canon = a.join(" ");
                    // Noise may add typos/elongations; require the first
                    // characters to agree as a sanity anchor.
                    surface.chars().next() == canon.chars().next()
                        || surface.trim_start_matches('#').chars().next()
                            == canon.trim_start_matches('#').chars().next()
                });
                assert!(matches_alias, "span {surface:?} vs entity {}", rec.name());
                assert_eq!(g.span.ty, rec.ty);
            }
        }
    }

    #[test]
    fn zipf_sampler_skews_to_head() {
        let (kb, _) = setup();
        let pool: Vec<EntityId> = kb.topic_entities(Topic::Health).to_vec();
        let sampler = EntitySampler::new(&kb, &pool, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = 0;
        let n = 4000;
        for _ in 0..n {
            let id = sampler.sample(&mut rng, None);
            let rank = pool.iter().position(|&p| p == id).expect("in pool");
            if rank < pool.len() / 5 {
                head += 1;
            }
        }
        assert!(
            head as f64 / n as f64 > 0.5,
            "head fraction {} too small for zipf",
            head as f64 / n as f64
        );
    }

    #[test]
    fn uniform_sampler_is_flat() {
        let (kb, _) = setup();
        let pool: Vec<EntityId> = kb.topic_entities(Topic::Health).to_vec();
        let sampler = EntitySampler::new(&kb, &pool, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut head = 0;
        let n = 4000;
        for _ in 0..n {
            let id = sampler.sample(&mut rng, None);
            let rank = pool.iter().position(|&p| p == id).expect("in pool");
            if rank < pool.len() / 5 {
                head += 1;
            }
        }
        let frac = head as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.05, "uniform head fraction {frac}");
    }

    #[test]
    fn typed_sampling_respects_type() {
        let (kb, sampler) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let id = sampler.sample(&mut rng, Some(EntityType::Location));
            assert_eq!(kb.get(id).ty, EntityType::Location);
        }
    }

    #[test]
    fn tweet_text_round_trips_through_tokenizer() {
        let (kb, sampler) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let noise = NoiseProfile::default();
        let hashtags = vec!["#covid".to_string()];
        for (i, t) in strong_templates(Topic::Health).iter().enumerate() {
            let tw = generate_tweet(
                &mut rng, &kb, &sampler, &noise, Topic::Health, &hashtags, t, i as u64,
            );
            let retok: Vec<String> = ngl_text::tokenize(&tw.text())
                .into_iter()
                .map(|t| t.text)
                .collect();
            assert_eq!(retok, tw.tokens, "tokenizer disagrees on {:?}", tw.text());
        }
    }
}
