//! # ngl-corpus
//!
//! The data substrate for the NER Globalizer reproduction. The paper
//! evaluates on tweet streams crawled from the Twitter API plus the
//! WNUT17 and BTC benchmark corpora — none of which can be shipped here
//! — so this crate *simulates* them: a procedural entity knowledge base,
//! a topic-conditioned tweet grammar with surface noise, and dataset
//! profiles that reproduce the statistics of Table I:
//!
//! | Dataset | Size | #Topics | #Hashtags |
//! |---------|------|---------|-----------|
//! | D1      | 1K   | 1       | 1         |
//! | D2      | 2K   | 1 (Covid) | 1     |
//! | D3      | 3K   | 3       | 6         |
//! | D4      | 6K   | 5       | 5         |
//! | D5      | 3430 | 1       | 1         |
//! | WNUT17  | 1287 | —       | —         |
//! | BTC     | 9553 | —       | —         |
//!
//! Streaming profiles (D1–D5) draw entities Zipf-style from a bounded
//! topical pool, so the same entity recurs across many tweets — the
//! property Global NER exploits. Non-streaming profiles (WNUT17/BTC)
//! sample entities near-uniformly from a much larger pool across all
//! topics, so recurrence is rare — which is exactly what distinguishes
//! those corpora in the paper's evaluation.
//!
//! Every generator is deterministic given the profile's seed.

#![forbid(unsafe_code)]

pub mod conll;
pub mod dataset;
pub mod kb;
pub mod namegen;
pub mod noise;
pub mod profiles;
pub mod stream;
pub mod templates;
pub mod tweets;

pub use conll::{from_conll, to_conll, ConllError};
pub use dataset::{Dataset, DatasetSpec, DatasetStats};
pub use kb::{EntityId, EntityRecord, KnowledgeBase, Topic};
pub use noise::NoiseProfile;
pub use profiles::{all_eval_profiles, StandardDatasets};
pub use stream::{capture, DatasetSource, StreamPhase, SyntheticStream, TweetSource};
pub use tweets::{AnnotatedTweet, GoldMention};
