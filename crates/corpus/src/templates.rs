//! The tweet grammar: topic-conditioned templates with typed slots.
//!
//! Templates are written in a tiny DSL — literal lowercase words plus
//! slot markers:
//!
//! * `{P}` `{L}` `{O}` `{M}` — a mention of an entity of that type,
//!   surrounded by a *type-indicative* context (this is what the Local
//!   NER encoder learns to exploit);
//! * `{E}` — a mention of an entity of *any* type in a weak, generic
//!   context (these drive the local misses and mistypes the paper
//!   observes: "so worried about X" says nothing about X's type);
//! * `{A}` — a non-entity usage of an ambiguous common word
//!   ("they told **us** to stay home");
//! * `{H}` topic hashtag, `{U}` @user, `{W}` URL, `{N}` number,
//!   `{F}` a short run of topic filler words.

use crate::kb::Topic;
use ngl_text::EntityType;

/// One element of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Part {
    /// Literal word.
    Word(String),
    /// Typed entity slot with an informative context.
    Entity(EntityType),
    /// Entity slot of any type in a weak context.
    AnyEntity,
    /// Non-entity use of an ambiguous word.
    Ambiguous,
    /// The stream hashtag.
    Hashtag,
    /// An @user mention.
    User,
    /// A URL.
    Url,
    /// A number.
    Number,
    /// 2–4 topic filler words.
    Filler,
}

/// A parsed template.
#[derive(Debug, Clone)]
pub struct Template {
    /// The slot sequence.
    pub parts: Vec<Part>,
}

impl Template {
    /// Parses the DSL described in the module docs.
    ///
    /// # Panics
    /// Panics on an unknown slot marker — templates are compiled-in data,
    /// so this is a programmer error.
    pub fn parse(spec: &str) -> Self {
        let parts = spec
            .split_whitespace()
            .map(|w| match w {
                "{P}" => Part::Entity(EntityType::Person),
                "{L}" => Part::Entity(EntityType::Location),
                "{O}" => Part::Entity(EntityType::Organization),
                "{M}" => Part::Entity(EntityType::Miscellaneous),
                "{E}" => Part::AnyEntity,
                "{A}" => Part::Ambiguous,
                "{H}" => Part::Hashtag,
                "{U}" => Part::User,
                "{W}" => Part::Url,
                "{N}" => Part::Number,
                "{F}" => Part::Filler,
                w if w.starts_with('{') => panic!("unknown slot marker {w}"),
                w => Part::Word(w.to_string()),
            })
            .collect();
        Self { parts }
    }

    /// Number of typed-entity slots (`{P}/{L}/{O}/{M}/{E}`).
    pub fn entity_slots(&self) -> usize {
        self.parts
            .iter()
            .filter(|p| matches!(p, Part::Entity(_) | Part::AnyEntity))
            .count()
    }
}

/// Templates whose contexts carry *strong* type cues, per topic.
pub fn strong_templates(topic: Topic) -> Vec<Template> {
    let specs: &[&str] = match topic {
        Topic::Health => &[
            "gov {P} said residents of {L} must stay home {H}",
            "breaking : {M} cases rising fast in {L}",
            "the {O} confirmed {N} new {M} cases today",
            "{P} tested positive for {M}",
            "praying for everyone in {L} {H}",
            "cases of {M} reported across {L} and {L}",
            "thanks {U} and {P} for the {M} update",
            "lockdown in {L} extended says gov {P}",
            "officials at {O} issued new guidance on {M}",
            "hospitals in {L} are overwhelmed {H}",
            "doctors at {O} warn about the spread of {M}",
            "travel from {L} to {L} banned over {M}",
        ],
        Topic::Politics => &[
            "president {P} signed the bill today",
            "{P} said the {O} will investigate the leak",
            "the {O} released a statement on the election",
            "voters in {L} head to the polls tomorrow",
            "{P} slammed {P} over the new policy",
            "protests erupt in {L} tonight {H}",
            "senator {P} met officials from {L}",
            "the {O} and the {O} clash over the budget",
            "{P} will visit {L} next week says the {O}",
            "new sanctions on {L} announced by the {O}",
            "the {M} scandal dominates the hearings",
            "{P} quoted the {M} report during the debate",
        ],
        Topic::Sports => &[
            "{P} scored twice as {L} won the cup",
            "{P} signs with {O} for a record fee",
            "the {O} beat the {O} last night {H}",
            "fans in {L} are celebrating the win",
            "what a match from {P} tonight !!!",
            "injury update on {P} {W}",
            "coach {P} praised the squad after the game in {L}",
            "the {O} announced the transfer of {P}",
            "{P} breaks the record at the games in {L}",
            "the {M} documentary about the club is out",
            "fans are streaming {M} before the final",
        ],
        Topic::Entertainment => &[
            "{P} just dropped a new album {H}",
            "listening to {M} on repeat all day",
            "{M} tops the charts this week",
            "{P} to star in the new movie",
            "the premiere in {L} was packed",
            "{O} announced a sequel already",
            "cant stop playing {M} honestly",
            "{P} performed live in {L} last night",
            "the song {M} by {P} is everywhere",
            "{O} signed {P} for three more seasons",
        ],
        Topic::Science => &[
            "{O} unveiled a new device today {H}",
            "researchers at {O} found signs of water",
            "{P} presented the findings in {L}",
            "the {O} launched a rocket from {L}",
            "{M} vaccine trial shows promise says {O}",
            "breakthrough on {M} announced by {O}",
            "professor {P} from {O} wins the prize",
            "the lab in {L} published the {M} study",
            "{O} engineers tested the device in {L}",
        ],
    };
    specs.iter().map(|s| Template::parse(s)).collect()
}

/// Weak-context templates shared by every topic. `{E}` slots give the
/// tagger almost nothing to work with — these are the tweets Local NER
/// misses and Global NER later recovers via the CTrie scan (§V-A).
pub fn weak_templates() -> Vec<Template> {
    [
        "{E} is trending again",
        "so worried about {E} right now",
        "cant believe {E} honestly",
        "{E} update {W}",
        "thoughts on {E} ?",
        "everyone is talking about {E} {H}",
        "{E} !!! {H}",
        "still thinking about {E}",
        "{E} tho ...",
        "not {E} again smh",
        "{E} and {E} in the news once more",
        "ok but {E} {F}",
        "so {E} happened today",
        "tell me why {E} {F}",
        "{E} has been on my mind all week",
        "nobody is ready for {E}",
        "woke up to {E} news",
        "yall seen {E} ?",
        "{E} really said that huh",
        "this {E} situation {F}",
    ]
    .iter()
    .map(|s| Template::parse(s))
    .collect()
}

/// Entity-free templates (pure chatter); keeps entity density realistic.
pub fn filler_templates() -> Vec<Template> {
    [
        "good morning everyone {F}",
        "{F} {F} {H}",
        "rt {U} : {F}",
        "what a day {F}",
        "{F} lol",
        "cannot even {F} today",
    ]
    .iter()
    .map(|s| Template::parse(s))
    .collect()
}

/// Non-entity usages of the ambiguous words, one inventory per word.
/// The word itself is baked into the literal text (slotting any random
/// ambiguous word into one template would produce nonsense like
/// "an us a day").
pub fn ambiguous_usage_templates() -> Vec<(&'static str, Template)> {
    [
        ("us", "they told us to stay home again"),
        ("us", "this affects all of us directly"),
        ("us", "give us a break already"),
        ("us", "most of us are staying in"),
        ("apple", "an apple a day keeps the doctor away"),
        ("apple", "had an apple with lunch today"),
        ("fireflies", "watching fireflies in the garden tonight"),
        ("fireflies", "the fireflies are out again this summer"),
        ("stone", "found a stone in my shoe ugh"),
        ("stone", "the old path was paved with stone"),
        ("summit", "we reached the summit at dawn"),
        ("summit", "hiked to the summit and back today"),
    ]
    .iter()
    .map(|(w, s)| (*w, Template::parse(s)))
    .collect()
}

/// Topic filler vocabulary for `{F}` slots.
pub fn filler_vocab(topic: Topic) -> &'static [&'static str] {
    match topic {
        Topic::Health => &[
            "masks", "testing", "quarantine", "symptoms", "vaccine", "wash", "hands", "stay",
            "home", "safe", "numbers", "curve", "ventilators", "distancing",
        ],
        Topic::Politics => &[
            "votes", "debate", "campaign", "policy", "senate", "ballots", "hearing", "press",
            "statement", "reform", "caucus", "poll",
        ],
        Topic::Sports => &[
            "goal", "season", "transfer", "league", "finals", "training", "derby", "squad",
            "keeper", "stadium", "fixture", "halftime",
        ],
        Topic::Entertainment => &[
            "album", "tour", "single", "premiere", "trailer", "charts", "vinyl", "setlist",
            "encore", "soundtrack", "fandom", "remix",
        ],
        Topic::Science => &[
            "data", "study", "rocket", "orbit", "sample", "sensor", "paper", "lab", "trial",
            "prototype", "telescope", "dataset",
        ],
    }
}

/// User handles for `{U}` slots.
pub const USER_HANDLES: &[&str] = &[
    "@newswire", "@dailyupdate", "@streamwatch", "@localreporter", "@factsfirst", "@briefingroom",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_maps_markers() {
        let t = Template::parse("gov {P} said {F} {H}");
        assert_eq!(t.parts.len(), 5);
        assert_eq!(t.parts[0], Part::Word("gov".into()));
        assert_eq!(t.parts[1], Part::Entity(EntityType::Person));
        assert_eq!(t.parts[3], Part::Filler);
        assert_eq!(t.parts[4], Part::Hashtag);
    }

    #[test]
    #[should_panic(expected = "unknown slot marker")]
    fn unknown_marker_panics() {
        Template::parse("hello {Z}");
    }

    #[test]
    fn entity_slots_counts_typed_and_any() {
        let t = Template::parse("{P} met {E} in {L}");
        assert_eq!(t.entity_slots(), 3);
    }

    #[test]
    fn every_topic_has_strong_templates() {
        for topic in Topic::ALL {
            let ts = strong_templates(topic);
            assert!(ts.len() >= 8, "{topic:?} too few templates");
            assert!(ts.iter().all(|t| t.entity_slots() >= 1));
        }
    }

    #[test]
    fn weak_templates_use_untyped_slots() {
        for t in weak_templates() {
            assert!(t.parts.iter().all(|p| !matches!(p, Part::Entity(_))));
            assert!(t.entity_slots() >= 1);
        }
    }

    #[test]
    fn ambiguous_usages_embed_their_word() {
        for (w, t) in ambiguous_usage_templates() {
            assert!(
                t.parts.iter().any(|p| matches!(p, Part::Word(x) if x == w)),
                "{w} missing from its template"
            );
        }
    }

    #[test]
    fn filler_templates_have_no_entities() {
        for t in filler_templates() {
            assert_eq!(t.entity_slots(), 0);
        }
    }
}
