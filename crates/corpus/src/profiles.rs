//! The dataset profiles of Table I plus the training corpora.
//!
//! Three knowledge bases with disjoint procedural entities keep the
//! evaluation honest:
//!
//! * the **train KB** backs the WNUT17-style training split the Local
//!   NER encoder is fine-tuned on (entities unseen at eval time, exactly
//!   like fine-tuning BERTweet on WNUT17 and then streaming Covid
//!   tweets);
//! * the **eval KB** backs D1–D4 and the WNUT17/BTC-like test sets;
//! * the **D5 KB** backs the D5 stream used to train the Phrase Embedder
//!   and Entity Classifier (§VI), so the Global NER components never see
//!   eval entities during training either.
//!
//! The anchor entities (trump, italy, coronavirus, …) are shared across
//! KBs, mirroring how famous entities occur in any real corpus.

use crate::dataset::{Dataset, DatasetSpec};
use crate::kb::{KnowledgeBase, Topic};
use crate::namegen::Universe;
use crate::noise::NoiseProfile;

/// Seed offsets so every profile is independent yet reproducible from
/// one master seed.
const TRAIN_KB_SALT: u64 = 0x0001;
const EVAL_KB_SALT: u64 = 0x0002;
const D5_KB_SALT: u64 = 0x0003;

/// D1: 1K tweets, one topic, one hashtag (Table I).
pub fn d1(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pool_per_topic: 180,
        ..DatasetSpec::streaming("D1", 1_000, vec![Topic::Politics], seed ^ 0x11)
    }
}

/// D2: 2K tweets from the Covid stream — the §I case-study dataset.
pub fn d2(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pool_per_topic: 260,
        ..DatasetSpec::streaming("D2", 2_000, vec![Topic::Health], seed ^ 0x22)
    }
}

/// D3: 3K tweets over three topics, six hashtags.
pub fn d3(seed: u64) -> DatasetSpec {
    DatasetSpec {
        hashtags_per_topic: 2,
        pool_per_topic: 150,
        ..DatasetSpec::streaming(
            "D3",
            3_000,
            vec![Topic::Politics, Topic::Sports, Topic::Science],
            seed ^ 0x33,
        )
    }
}

/// D4: 6K tweets over five topics, five hashtags.
pub fn d4(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pool_per_topic: 80,
        ..DatasetSpec::streaming("D4", 6_000, Topic::ALL.to_vec(), seed ^ 0x44)
    }
}

/// D5: the 3430-tweet stream that trains the Phrase Embedder and Entity
/// Classifier (§VI).
///
/// Deviation from Table I (which lists D5 as single-topic): our D5
/// covers all five topics. The paper's BERTweet embeddings carry
/// topic-universal type semantics from 850M pre-training tweets, so a
/// single-topic D5 suffices there; the from-scratch encoder used here
/// has no such pre-training, and a single-topic D5 would leave the
/// Entity Classifier unable to recognize type contexts of unseen topics.
/// Multi-topic D5 restores the property the paper gets from pre-training.
pub fn d5(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pool_per_topic: 70,
        ..DatasetSpec::streaming("D5", 3_430, Topic::ALL.to_vec(), seed ^ 0x55)
    }
}

/// WNUT17-like: 1287 random-sampled tweets, little entity recurrence.
pub fn wnut17_like(seed: u64) -> DatasetSpec {
    DatasetSpec::non_streaming("WNUT17", 1_287, seed ^ 0x66)
}

/// BTC-like: 9553 random-sampled tweets.
pub fn btc_like(seed: u64) -> DatasetSpec {
    DatasetSpec::non_streaming("BTC", 9_553, seed ^ 0x77)
}

/// The WNUT17-style *training* split the Local NER encoder is fine-tuned
/// on (the paper fine-tunes BERTweet on the WNUT17 training set).
pub fn local_train(seed: u64) -> DatasetSpec {
    DatasetSpec {
        name: "local-train".to_string(),
        // A little larger than WNUT17's train split; enough for the
        // from-scratch encoder to learn the context cues.
        n_tweets: 3_400,
        ..DatasetSpec::non_streaming("local-train", 3_400, seed ^ 0x88)
    }
}

/// A clean, well-edited generic corpus for the BERT-NER baseline, which
/// in the paper is pre-trained on newswire-style text and therefore
/// suffers domain shift on noisy tweets.
pub fn generic_train(seed: u64) -> DatasetSpec {
    DatasetSpec {
        name: "generic-train".to_string(),
        n_tweets: 3_400,
        noise: NoiseProfile::clean(),
        p_weak: 0.15,
        ..DatasetSpec::non_streaming("generic-train", 3_400, seed ^ 0x99)
    }
}

/// All Table I evaluation profiles in paper order.
pub fn all_eval_profiles(seed: u64) -> Vec<DatasetSpec> {
    vec![
        d1(seed),
        d2(seed),
        d3(seed),
        d4(seed),
        wnut17_like(seed),
        btc_like(seed),
    ]
}

/// The complete generated data universe for one master seed.
pub struct StandardDatasets {
    /// KB behind the training split.
    pub train_kb: KnowledgeBase,
    /// KB behind the evaluation datasets.
    pub eval_kb: KnowledgeBase,
    /// KB behind D5.
    pub d5_kb: KnowledgeBase,
    /// Local NER training corpus (WNUT17-train analogue).
    pub local_train: Dataset,
    /// Clean generic corpus for the BERT-NER baseline.
    pub generic_train: Dataset,
    /// D5 — Global NER training stream.
    pub d5: Dataset,
    /// The six evaluation datasets: D1–D4, WNUT17, BTC.
    pub eval: Vec<Dataset>,
}

impl StandardDatasets {
    /// Generates everything from one master seed.
    pub fn generate(seed: u64) -> Self {
        let train_kb = KnowledgeBase::build_in(seed ^ TRAIN_KB_SALT, 400, Universe::Train);
        let eval_kb = KnowledgeBase::build_in(seed ^ EVAL_KB_SALT, 400, Universe::Eval);
        let d5_kb = KnowledgeBase::build_in(seed ^ D5_KB_SALT, 200, Universe::Eval);
        let local_train = Dataset::generate(&local_train(seed), &train_kb);
        let generic_train = Dataset::generate(&generic_train(seed), &train_kb);
        let d5 = Dataset::generate(&d5(seed), &d5_kb);
        let eval = all_eval_profiles(seed)
            .iter()
            .map(|spec| Dataset::generate(spec, &eval_kb))
            .collect();
        Self { train_kb, eval_kb, d5_kb, local_train, generic_train, d5, eval }
    }

    /// The streaming subset of the eval datasets (D1–D4).
    pub fn streaming_eval(&self) -> &[Dataset] {
        &self.eval[..4]
    }

    /// The non-streaming subset (WNUT17, BTC).
    pub fn non_streaming_eval(&self) -> &[Dataset] {
        &self.eval[4..]
    }

    /// Looks an eval dataset up by name.
    pub fn eval_by_name(&self, name: &str) -> Option<&Dataset> {
        self.eval.iter().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match_the_paper() {
        let seed = 1234;
        for (spec, expect) in all_eval_profiles(seed).iter().zip([
            ("D1", 1_000),
            ("D2", 2_000),
            ("D3", 3_000),
            ("D4", 6_000),
            ("WNUT17", 1_287),
            ("BTC", 9_553),
        ]) {
            assert_eq!(spec.name, expect.0);
            assert_eq!(spec.n_tweets, expect.1);
        }
        assert_eq!(d5(seed).n_tweets, 3_430);
    }

    #[test]
    fn topic_counts_match_table1() {
        let seed = 9;
        assert_eq!(d1(seed).topics.len(), 1);
        assert_eq!(d2(seed).topics.len(), 1);
        assert_eq!(d3(seed).topics.len(), 3);
        assert_eq!(d4(seed).topics.len(), 5);
        // Hashtags: D3 has 6 (3 topics × 2), D4 has 5 (5 topics × 1).
        assert_eq!(d3(seed).topics.len() * d3(seed).hashtags_per_topic, 6);
        assert_eq!(d4(seed).topics.len() * d4(seed).hashtags_per_topic, 5);
    }

    // The full-universe generation is exercised in the integration tests
    // and the reproduce harness; here a smaller smoke check keeps the
    // unit suite fast.
    #[test]
    fn standard_datasets_smoke() {
        let mut spec = d1(5);
        spec.n_tweets = 120;
        let kb = KnowledgeBase::build(5 ^ EVAL_KB_SALT, 120);
        let d = Dataset::generate(&spec, &kb);
        assert_eq!(d.tweets.len(), 120);
        let s = d.stats();
        assert!(s.unique_entities > 10);
    }
}
