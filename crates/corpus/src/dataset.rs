//! Dataset assembly: a [`DatasetSpec`] drives the tweet grammar into a
//! reproducible [`Dataset`], and [`DatasetStats`] reports the Table I
//! quantities.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::kb::{EntityId, KnowledgeBase, Topic};
use crate::noise::NoiseProfile;
use crate::templates::{
    ambiguous_usage_templates, filler_templates, strong_templates, weak_templates, Template,
};
use crate::tweets::{generate_tweet, AnnotatedTweet, EntitySampler};

/// Everything needed to generate a dataset deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name ("D1", "WNUT17", …).
    pub name: String,
    /// Number of tweets.
    pub n_tweets: usize,
    /// Topics the stream covers (Table I's #Topics column).
    pub topics: Vec<Topic>,
    /// Hashtags per topic (Table I's #Hashtags column divided over
    /// topics).
    pub hashtags_per_topic: usize,
    /// Entities available per topic pool. Streaming profiles keep this
    /// bounded so entities recur; non-streaming profiles make it large.
    pub pool_per_topic: usize,
    /// Zipf exponent of entity sampling (0 = uniform).
    pub zipf_s: f64,
    /// Probability a tweet uses a weak-context template.
    pub p_weak: f64,
    /// Probability a tweet is entity-free filler.
    pub p_filler: f64,
    /// Probability a tweet is a non-entity use of an ambiguous word.
    pub p_ambiguous: f64,
    /// Surface noise profile.
    pub noise: NoiseProfile,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Reasonable streaming defaults; callers override fields as needed.
    pub fn streaming(name: &str, n_tweets: usize, topics: Vec<Topic>, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            n_tweets,
            topics,
            hashtags_per_topic: 1,
            pool_per_topic: 90,
            zipf_s: 1.05,
            p_weak: 0.50,
            p_filler: 0.12,
            p_ambiguous: 0.06,
            noise: NoiseProfile::default(),
            seed,
        }
    }

    /// Non-streaming defaults: uniform sampling from a large pool across
    /// all topics, mimicking random-sampled corpora like WNUT17/BTC.
    pub fn non_streaming(name: &str, n_tweets: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            n_tweets,
            topics: Topic::ALL.to_vec(),
            hashtags_per_topic: 1,
            pool_per_topic: usize::MAX,
            zipf_s: 0.15,
            p_weak: 0.50,
            p_filler: 0.12,
            p_ambiguous: 0.06,
            noise: NoiseProfile::default(),
            seed,
        }
    }
}

/// Table I statistics of a generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Tweet count.
    pub size: usize,
    /// Topic count.
    pub n_topics: usize,
    /// Hashtag count.
    pub n_hashtags: usize,
    /// Unique gold entities.
    pub unique_entities: usize,
    /// Total gold mentions.
    pub total_mentions: usize,
}

/// A generated, annotated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Display name.
    pub name: String,
    /// The annotated tweets, in stream order.
    pub tweets: Vec<AnnotatedTweet>,
    /// Hashtags used by the stream.
    pub hashtags: Vec<String>,
}

/// Hashtag inventory per topic ("#covid", "#pandemic", …).
fn topic_hashtags(topic: Topic) -> &'static [&'static str] {
    match topic {
        Topic::Health => &["#covid", "#pandemic", "#stayhome", "#outbreak"],
        Topic::Politics => &["#election", "#vote", "#senate", "#debate"],
        Topic::Sports => &["#matchday", "#finals", "#transfer", "#cupnight"],
        Topic::Entertainment => &["#nowplaying", "#premiere", "#newmusic", "#boxoffice"],
        Topic::Science => &["#launch", "#research", "#spacex", "#breakthrough"],
    }
}

struct TopicCtx {
    topic: Topic,
    sampler: EntitySampler,
    strong: Vec<Template>,
    hashtags: Vec<String>,
}

impl Dataset {
    /// Generates the dataset described by `spec` from `kb`.
    pub fn generate(spec: &DatasetSpec, kb: &KnowledgeBase) -> Dataset {
        assert!(!spec.topics.is_empty(), "dataset needs at least one topic");
        let mut rng = StdRng::seed_from_u64(spec.seed);

        let mut contexts: Vec<TopicCtx> = Vec::new();
        let mut all_hashtags = Vec::new();
        for &topic in &spec.topics {
            let full = kb.topic_entities(topic);
            let n = spec.pool_per_topic.min(full.len());
            let pool: Vec<EntityId> = full[..n].to_vec();
            let hashtags: Vec<String> = topic_hashtags(topic)
                .iter()
                .take(spec.hashtags_per_topic.max(1))
                .map(|s| s.to_string())
                .collect();
            all_hashtags.extend(hashtags.clone());
            contexts.push(TopicCtx {
                topic,
                sampler: EntitySampler::new(kb, &pool, spec.zipf_s),
                strong: strong_templates(topic),
                hashtags,
            });
        }
        let weak = weak_templates();
        let filler = filler_templates();
        let ambiguous = ambiguous_usage_templates();

        let mut tweets = Vec::with_capacity(spec.n_tweets);
        for i in 0..spec.n_tweets {
            let ctx = &contexts[rng.gen_range(0..contexts.len())];
            let roll: f64 = rng.gen();
            let template = if roll < spec.p_filler {
                &filler[rng.gen_range(0..filler.len())]
            } else if roll < spec.p_filler + spec.p_ambiguous {
                &ambiguous[rng.gen_range(0..ambiguous.len())].1
            } else if roll < spec.p_filler + spec.p_ambiguous + spec.p_weak {
                &weak[rng.gen_range(0..weak.len())]
            } else {
                &ctx.strong[rng.gen_range(0..ctx.strong.len())]
            };
            tweets.push(generate_tweet(
                &mut rng,
                kb,
                &ctx.sampler,
                &spec.noise,
                ctx.topic,
                &ctx.hashtags,
                template,
                i as u64,
            ));
        }
        Dataset { name: spec.name.clone(), tweets, hashtags: all_hashtags }
    }

    /// Table I statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut entities = HashSet::new();
        let mut mentions = 0usize;
        let mut topics = HashSet::new();
        for t in &self.tweets {
            topics.insert(t.topic);
            for g in &t.gold {
                entities.insert(g.entity);
                mentions += 1;
            }
        }
        DatasetStats {
            name: self.name.clone(),
            size: self.tweets.len(),
            n_topics: topics.len(),
            n_hashtags: self.hashtags.len(),
            unique_entities: entities.len(),
            total_mentions: mentions,
        }
    }

    /// Splits the dataset into `(head, tail)` at `frac` (0..1) of the
    /// tweets — used to carve train/dev splits out of training corpora.
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&frac), "frac out of range");
        let k = ((self.tweets.len() as f64) * frac).round() as usize;
        let k = k.min(self.tweets.len());
        (
            Dataset {
                name: format!("{}-head", self.name),
                tweets: self.tweets[..k].to_vec(),
                hashtags: self.hashtags.clone(),
            },
            Dataset {
                name: format!("{}-tail", self.name),
                tweets: self.tweets[k..].to_vec(),
                hashtags: self.hashtags.clone(),
            },
        )
    }

    /// Batches of `size` tweets in stream order (the discretized stream
    /// iterations of §III).
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[AnnotatedTweet]> {
        self.tweets.chunks(size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::build(7, 120)
    }

    #[test]
    fn generation_is_deterministic() {
        let kb = kb();
        let spec = DatasetSpec::streaming("T", 200, vec![Topic::Health], 42);
        let a = Dataset::generate(&spec, &kb);
        let b = Dataset::generate(&spec, &kb);
        assert_eq!(a.tweets.len(), b.tweets.len());
        for (x, y) in a.tweets.iter().zip(&b.tweets) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn streaming_dataset_repeats_entities() {
        let kb = kb();
        let spec = DatasetSpec::streaming("S", 1000, vec![Topic::Health], 1);
        let d = Dataset::generate(&spec, &kb);
        let stats = d.stats();
        assert!(stats.total_mentions > 800, "mentions {}", stats.total_mentions);
        let repeats = stats.total_mentions as f64 / stats.unique_entities as f64;
        assert!(repeats > 4.0, "mean mentions/entity {repeats} too low for a stream");
    }

    #[test]
    fn non_streaming_dataset_rarely_repeats() {
        let kb = KnowledgeBase::build(7, 400);
        let stream = Dataset::generate(
            &DatasetSpec::streaming("S", 1000, vec![Topic::Health], 2),
            &kb,
        );
        let random = Dataset::generate(&DatasetSpec::non_streaming("R", 1000, 2), &kb);
        let sr = stream.stats();
        let rr = random.stats();
        let stream_rate = sr.total_mentions as f64 / sr.unique_entities as f64;
        let random_rate = rr.total_mentions as f64 / rr.unique_entities as f64;
        assert!(
            stream_rate > 2.0 * random_rate,
            "stream {stream_rate} vs random {random_rate}"
        );
    }

    #[test]
    fn stats_count_topics_and_hashtags() {
        let kb = kb();
        let spec = DatasetSpec {
            hashtags_per_topic: 2,
            ..DatasetSpec::streaming("M", 300, vec![Topic::Politics, Topic::Sports], 3)
        };
        let d = Dataset::generate(&spec, &kb);
        let s = d.stats();
        assert_eq!(s.n_topics, 2);
        assert_eq!(s.n_hashtags, 4);
        assert_eq!(s.size, 300);
    }

    #[test]
    fn split_preserves_all_tweets() {
        let kb = kb();
        let d = Dataset::generate(&DatasetSpec::streaming("X", 100, vec![Topic::Science], 4), &kb);
        let (a, b) = d.split(0.8);
        assert_eq!(a.tweets.len(), 80);
        assert_eq!(b.tweets.len(), 20);
        assert_eq!(a.tweets.len() + b.tweets.len(), d.tweets.len());
    }

    #[test]
    fn batches_cover_the_stream_in_order() {
        let kb = kb();
        let d = Dataset::generate(&DatasetSpec::streaming("B", 95, vec![Topic::Health], 5), &kb);
        let batches: Vec<_> = d.batches(30).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 5);
        assert_eq!(batches[0][0].id, 0);
        assert_eq!(batches[3][4].id, 94);
    }

    #[test]
    fn ambiguous_tweets_have_no_gold() {
        let kb = kb();
        let spec = DatasetSpec {
            p_ambiguous: 1.0,
            p_filler: 0.0,
            p_weak: 0.0,
            ..DatasetSpec::streaming("A", 50, vec![Topic::Health], 6)
        };
        let d = Dataset::generate(&spec, &kb);
        assert!(d.tweets.iter().all(|t| t.gold.is_empty()));
        // And the ambiguous words actually occur.
        let has_us = d.tweets.iter().any(|t| t.tokens.iter().any(|w| w == "us"));
        assert!(has_us || d.tweets.iter().any(|t| !t.tokens.is_empty()));
    }
}
