//! Surface noise operators.
//!
//! Microblog mentions of an entity rarely match its canonical form: the
//! paper's Figure 1 alone shows "beshear", "Beshear", "#Beshear",
//! "Coronavirus"/"coronavirus", "US". These operators turn a lowercase
//! alias into a realistic noisy surface while keeping token boundaries —
//! the gold annotation stays exact.

use rand::rngs::StdRng;
use rand::Rng;

/// How aggressively the generator degrades surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Probability a mention token keeps no capitalization (stays
    /// lowercase). Lowercased entity mentions are the main driver of
    /// Local NER misses.
    pub p_lowercase: f64,
    /// Probability a mention is rendered in ALL CAPS.
    pub p_allcaps: f64,
    /// Probability of a character-level typo in a token (len ≥ 4).
    pub p_typo: f64,
    /// Probability of elongating the final letter ("sooo").
    pub p_elongate: f64,
    /// Probability a *context* word is SHOUTED in all caps ("SO DONE").
    /// Shouting makes capitalization an unreliable entity cue, exactly
    /// as in real tweets.
    pub p_shout: f64,
}

use serde::{Deserialize, Serialize};

impl Default for NoiseProfile {
    fn default() -> Self {
        Self {
            p_lowercase: 0.30,
            p_allcaps: 0.08,
            p_typo: 0.04,
            p_elongate: 0.02,
            p_shout: 0.05,
        }
    }
}

impl NoiseProfile {
    /// A cleaner profile for well-edited text (the generic-domain corpus
    /// used to train the BERT-NER baseline).
    pub fn clean() -> Self {
        Self {
            p_lowercase: 0.02,
            p_allcaps: 0.02,
            p_typo: 0.0,
            p_elongate: 0.0,
            p_shout: 0.0,
        }
    }
}

/// Renders an entity-mention alias (lowercase tokens) into surface
/// tokens under the noise profile. Hashtag aliases (leading `#`) keep
/// their marker and never receive typos (they must stay CTrie-matchable
/// in their canonical folded form).
pub fn render_mention(rng: &mut StdRng, profile: &NoiseProfile, alias: &[String]) -> Vec<String> {
    let roll: f64 = rng.gen();
    let casing = if roll < profile.p_lowercase {
        Casing::Lower
    } else if roll < profile.p_lowercase + profile.p_allcaps {
        Casing::Upper
    } else {
        Casing::Title
    };
    alias
        .iter()
        .map(|tok| {
            if let Some(rest) = tok.strip_prefix('#') {
                // Hashtags: casing applies to the body, no typos.
                return format!("#{}", apply_casing(rest, casing));
            }
            // Short single-token aliases ("us", "nhs", "doj") behave as
            // acronyms: conventional rendering is ALL CAPS, so Title
            // casing upgrades to caps for them.
            let is_acronym = alias.len() == 1
                && tok.chars().count() <= 4
                && tok.chars().all(|c| c.is_alphabetic());
            let cased = if is_acronym && casing != Casing::Lower {
                tok.to_uppercase()
            } else {
                apply_casing(tok, casing)
            };
            let mut out = cased;
            if tok.chars().count() >= 4 && rng.gen_bool(profile.p_typo) {
                out = apply_typo(rng, &out);
            }
            if rng.gen_bool(profile.p_elongate) {
                if let Some(last) = out.chars().last() {
                    if last.is_alphabetic() {
                        out.push(last);
                        out.push(last);
                    }
                }
            }
            out
        })
        .collect()
}

/// Renders a context (non-mention) word: mostly verbatim, occasional
/// elongation for realism.
pub fn render_word(rng: &mut StdRng, profile: &NoiseProfile, word: &str) -> String {
    let mut out = word.to_string();
    if word.chars().all(|c| c.is_alphabetic()) && rng.gen_bool(profile.p_shout) {
        out = out.to_uppercase();
    }
    if word.chars().count() >= 3 && rng.gen_bool(profile.p_elongate) {
        if let Some(last) = out.chars().last() {
            if last.is_alphabetic() {
                out.push(last);
                out.push(last);
            }
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Casing {
    Lower,
    Upper,
    Title,
}

fn apply_casing(tok: &str, casing: Casing) -> String {
    match casing {
        Casing::Lower => tok.to_lowercase(),
        Casing::Upper => tok.to_uppercase(),
        Casing::Title => {
            let mut c = tok.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        }
    }
}

fn apply_typo(rng: &mut StdRng, tok: &str) -> String {
    let chars: Vec<char> = tok.chars().collect();
    let n = chars.len();
    debug_assert!(n >= 4);
    // Never touch the first character — keeps the casing cue intact and
    // the token recognizable.
    match rng.gen_range(0..3u8) {
        0 => {
            // Drop a character.
            let i = rng.gen_range(1..n);
            let mut out: Vec<char> = chars.clone();
            out.remove(i);
            out.into_iter().collect()
        }
        1 => {
            // Double a character.
            let i = rng.gen_range(1..n);
            let mut out: Vec<char> = chars.clone();
            out.insert(i, chars[i]);
            out.into_iter().collect()
        }
        _ => {
            // Swap with the previous character, away from position 0.
            let i = rng.gen_range(2..n);
            let mut out = chars.clone();
            out.swap(i - 1, i);
            out.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn title_case_is_default_behaviour() {
        let profile = NoiseProfile { p_lowercase: 0.0, p_allcaps: 0.0, p_typo: 0.0, p_elongate: 0.0, p_shout: 0.0 };
        let out = render_mention(&mut rng(), &profile, &["andy".into(), "beshear".into()]);
        assert_eq!(out, vec!["Andy", "Beshear"]);
    }

    #[test]
    fn lowercase_profile_keeps_lowercase() {
        let profile = NoiseProfile { p_lowercase: 1.0, p_allcaps: 0.0, p_typo: 0.0, p_elongate: 0.0, p_shout: 0.0 };
        let out = render_mention(&mut rng(), &profile, &["italy".into()]);
        assert_eq!(out, vec!["italy"]);
    }

    #[test]
    fn allcaps_profile_upcases() {
        let profile = NoiseProfile { p_lowercase: 0.0, p_allcaps: 1.0, p_typo: 0.0, p_elongate: 0.0, p_shout: 0.0 };
        let out = render_mention(&mut rng(), &profile, &["us".into()]);
        assert_eq!(out, vec!["US"]);
    }

    #[test]
    fn hashtags_keep_marker_and_get_no_typos() {
        let profile = NoiseProfile { p_lowercase: 0.0, p_allcaps: 0.0, p_typo: 1.0, p_elongate: 0.0, p_shout: 0.0 };
        let out = render_mention(&mut rng(), &profile, &["#coronavirus".into()]);
        assert_eq!(out, vec!["#Coronavirus"]);
    }

    #[test]
    fn typos_preserve_first_char_and_length_stays_close() {
        let profile = NoiseProfile { p_lowercase: 1.0, p_allcaps: 0.0, p_typo: 1.0, p_elongate: 0.0, p_shout: 0.0 };
        let mut r = rng();
        for _ in 0..50 {
            let out = render_mention(&mut r, &profile, &["coronavirus".into()]);
            let w = &out[0];
            assert!(w.starts_with('c'), "first char changed: {w}");
            let d = w.chars().count() as i64 - 11;
            assert!(d.abs() <= 1, "length moved too far: {w}");
        }
    }

    #[test]
    fn short_tokens_never_get_typos() {
        let profile = NoiseProfile { p_lowercase: 1.0, p_allcaps: 0.0, p_typo: 1.0, p_elongate: 0.0, p_shout: 0.0 };
        let out = render_mention(&mut rng(), &profile, &["nhs".into()]);
        assert_eq!(out, vec!["nhs"]);
    }

    #[test]
    fn render_is_deterministic_per_seed() {
        let profile = NoiseProfile::default();
        let alias = vec!["justice".to_string(), "department".to_string()];
        let a = render_mention(&mut StdRng::seed_from_u64(4), &profile, &alias);
        let b = render_mention(&mut StdRng::seed_from_u64(4), &profile, &alias);
        assert_eq!(a, b);
    }
}
