//! The streaming module (§III step 1).
//!
//! The paper's system front-end "fetches a stream of tweets, on a
//! particular topic, using the Twitter streaming API", discretized into
//! batches per execution cycle. This module simulates that source:
//! [`TweetSource`] is the pull interface the pipeline consumes batches
//! from, [`SyntheticStream`] produces an endless topical stream on
//! demand (optionally *drifting* across topics over time, the
//! "conversation streams evolving over time" of §I), and
//! [`DatasetSource`] replays a pre-generated dataset.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ngl_text::EntityType;

use crate::dataset::DatasetSpec;
use crate::kb::{EntityId, KnowledgeBase, Topic};
use crate::templates::{
    ambiguous_usage_templates, filler_templates, strong_templates, weak_templates, Template,
};
use crate::tweets::{generate_tweet, AnnotatedTweet, EntitySampler};
use crate::Dataset;

/// A pull-based source of stream batches.
pub trait TweetSource {
    /// Returns up to `max` new tweets; an empty vector means the stream
    /// has ended.
    fn next_batch(&mut self, max: usize) -> Vec<AnnotatedTweet>;
}

/// Replays an existing dataset in stream order.
pub struct DatasetSource {
    tweets: std::vec::IntoIter<AnnotatedTweet>,
}

impl DatasetSource {
    /// Wraps a dataset.
    pub fn new(dataset: Dataset) -> Self {
        Self { tweets: dataset.tweets.into_iter() }
    }
}

impl TweetSource for DatasetSource {
    fn next_batch(&mut self, max: usize) -> Vec<AnnotatedTweet> {
        self.tweets.by_ref().take(max.max(1)).collect()
    }
}

/// One phase of a drifting stream: a topic and how many tweets the
/// conversation stays on it.
#[derive(Debug, Clone, Copy)]
pub struct StreamPhase {
    /// The phase's topic.
    pub topic: Topic,
    /// Tweets produced before drifting to the next phase (the final
    /// phase is unbounded).
    pub length: usize,
}

struct PhaseState {
    topic: Topic,
    sampler: EntitySampler,
    strong: Vec<Template>,
    hashtags: Vec<String>,
}

/// An endless synthetic stream with optional topic drift.
pub struct SyntheticStream<'a> {
    kb: &'a KnowledgeBase,
    spec: DatasetSpec,
    phases: Vec<StreamPhase>,
    states: Vec<PhaseState>,
    weak: Vec<Template>,
    filler: Vec<Template>,
    ambiguous: Vec<(&'static str, Template)>,
    rng: StdRng,
    produced: u64,
}

impl<'a> SyntheticStream<'a> {
    /// A single-topic stream configured by `spec` (its `topics` field is
    /// ignored in favour of `phases`).
    pub fn new(kb: &'a KnowledgeBase, spec: DatasetSpec, topic: Topic) -> Self {
        Self::with_phases(kb, spec, vec![StreamPhase { topic, length: usize::MAX }])
    }

    /// A drifting stream: each phase runs its topic for `length` tweets,
    /// then the conversation moves on — new topical entity pool, new
    /// hashtags — while earlier candidates stay valid in the consumer's
    /// CandidateBase.
    ///
    /// # Panics
    /// Panics when `phases` is empty.
    pub fn with_phases(
        kb: &'a KnowledgeBase,
        spec: DatasetSpec,
        phases: Vec<StreamPhase>,
    ) -> Self {
        assert!(!phases.is_empty(), "stream needs at least one phase");
        let states = phases
            .iter()
            .map(|p| {
                let full = kb.topic_entities(p.topic);
                let n = spec.pool_per_topic.min(full.len());
                let pool: Vec<EntityId> = full[..n].to_vec();
                PhaseState {
                    topic: p.topic,
                    sampler: EntitySampler::new(kb, &pool, spec.zipf_s),
                    strong: strong_templates(p.topic),
                    hashtags: vec![format!("#{}", p.topic.label())],
                }
            })
            .collect();
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x57AE);
        Self {
            kb,
            spec,
            phases,
            states,
            weak: weak_templates(),
            filler: filler_templates(),
            ambiguous: ambiguous_usage_templates(),
            rng,
            produced: 0,
        }
    }

    /// Total tweets produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// The phase the next tweet will come from.
    pub fn current_phase(&self) -> usize {
        let mut remaining = self.produced;
        for (i, p) in self.phases.iter().enumerate() {
            if remaining < p.length as u64 {
                return i;
            }
            remaining -= p.length as u64;
        }
        self.phases.len() - 1
    }

    fn generate_one(&mut self) -> AnnotatedTweet {
        let phase = self.current_phase();
        let state = &self.states[phase];
        let roll: f64 = self.rng.gen();
        let template = if roll < self.spec.p_filler {
            &self.filler[self.rng.gen_range(0..self.filler.len())]
        } else if roll < self.spec.p_filler + self.spec.p_ambiguous {
            &self.ambiguous[self.rng.gen_range(0..self.ambiguous.len())].1
        } else if roll < self.spec.p_filler + self.spec.p_ambiguous + self.spec.p_weak {
            &self.weak[self.rng.gen_range(0..self.weak.len())]
        } else {
            &state.strong[self.rng.gen_range(0..state.strong.len())]
        };
        let tweet = generate_tweet(
            &mut self.rng,
            self.kb,
            &state.sampler,
            &self.spec.noise,
            state.topic,
            &state.hashtags,
            template,
            self.produced,
        );
        self.produced += 1;
        tweet
    }
}

impl TweetSource for SyntheticStream<'_> {
    fn next_batch(&mut self, max: usize) -> Vec<AnnotatedTweet> {
        (0..max.max(1)).map(|_| self.generate_one()).collect()
    }
}

/// Convenience: drains a source into a dataset (for offline analysis of
/// a captured stream window).
pub fn capture<S: TweetSource>(source: &mut S, n: usize, name: &str) -> Dataset {
    let mut tweets = Vec::with_capacity(n);
    while tweets.len() < n {
        let batch = source.next_batch((n - tweets.len()).min(512));
        if batch.is_empty() {
            break;
        }
        tweets.extend(batch);
    }
    Dataset { name: name.to_string(), tweets, hashtags: Vec::new() }
}

/// The fraction of gold mentions of each entity type in a captured
/// window — used to sanity-check drift behaviour in tests.
pub fn type_mix(tweets: &[AnnotatedTweet]) -> [f64; EntityType::COUNT] {
    let mut counts = [0usize; EntityType::COUNT];
    for t in tweets {
        for g in &t.gold {
            counts[g.span.ty.index()] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let mut out = [0.0; EntityType::COUNT];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(&counts) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::build(9, 80)
    }

    fn spec(seed: u64) -> DatasetSpec {
        DatasetSpec::streaming("s", 0, vec![Topic::Health], seed)
    }

    #[test]
    fn synthetic_stream_is_endless_and_deterministic() {
        let kb = kb();
        let mut a = SyntheticStream::new(&kb, spec(1), Topic::Health);
        let mut b = SyntheticStream::new(&kb, spec(1), Topic::Health);
        for _ in 0..5 {
            let ba = a.next_batch(50);
            let bb = b.next_batch(50);
            assert_eq!(ba.len(), 50);
            for (x, y) in ba.iter().zip(&bb) {
                assert_eq!(x.tokens, y.tokens);
            }
        }
        assert_eq!(a.produced(), 250);
    }

    #[test]
    fn drift_switches_topic_pools() {
        let kb = kb();
        let mut s = SyntheticStream::with_phases(
            &kb,
            spec(2),
            vec![
                StreamPhase { topic: Topic::Politics, length: 200 },
                StreamPhase { topic: Topic::Sports, length: usize::MAX },
            ],
        );
        let first = s.next_batch(200);
        assert_eq!(s.current_phase(), 1);
        let second = s.next_batch(200);
        let topics_first: HashSet<Topic> = first.iter().map(|t| t.topic).collect();
        let topics_second: HashSet<Topic> = second.iter().map(|t| t.topic).collect();
        assert_eq!(topics_first, HashSet::from([Topic::Politics]));
        assert_eq!(topics_second, HashSet::from([Topic::Sports]));
        // Entity pools are disjoint across phases (different topics).
        let ents_first: HashSet<u32> =
            first.iter().flat_map(|t| t.gold.iter().map(|g| g.entity.0)).collect();
        let ents_second: HashSet<u32> =
            second.iter().flat_map(|t| t.gold.iter().map(|g| g.entity.0)).collect();
        assert!(ents_first.is_disjoint(&ents_second), "pools must drift");
    }

    #[test]
    fn dataset_source_replays_and_ends() {
        let kb = kb();
        let d = Dataset::generate(
            &DatasetSpec::streaming("d", 45, vec![Topic::Science], 3),
            &kb,
        );
        let expected: Vec<Vec<String>> = d.tweets.iter().map(|t| t.tokens.clone()).collect();
        let mut src = DatasetSource::new(d);
        let mut got = Vec::new();
        loop {
            let b = src.next_batch(20);
            if b.is_empty() {
                break;
            }
            got.extend(b.into_iter().map(|t| t.tokens));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn capture_collects_exactly_n() {
        let kb = kb();
        let mut s = SyntheticStream::new(&kb, spec(4), Topic::Entertainment);
        let d = capture(&mut s, 123, "window");
        assert_eq!(d.tweets.len(), 123);
        let mix = type_mix(&d.tweets);
        let total: f64 = mix.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capture_respects_finite_sources() {
        let kb = kb();
        let d = Dataset::generate(
            &DatasetSpec::streaming("d", 30, vec![Topic::Health], 5),
            &kb,
        );
        let mut src = DatasetSource::new(d);
        let captured = capture(&mut src, 100, "w");
        assert_eq!(captured.tweets.len(), 30, "finite source ends early");
    }
}
