//! The entity knowledge base behind the synthetic streams.
//!
//! Each [`EntityRecord`] carries a canonical name, the set of alias
//! surface forms it appears under in tweets (shortened forms, hashtag
//! forms), its entity type and home topic. A handful of *anchor*
//! entities mirror the paper's running examples (beshear, trump, italy,
//! US, NHS, coronavirus, washington, fireflies, …), including the
//! ambiguous surface forms §V-C is built around; the rest of the pool is
//! generated procedurally.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_text::EntityType;

use crate::namegen::{NameGen, Universe};

/// Opaque, stable identifier of a knowledge-base entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Conversation topics the streaming datasets cover (§VI: Politics,
/// Sports, Entertainment, Science and Health).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Topic {
    /// Elections, governments, policy.
    Politics,
    /// Teams, athletes, matches.
    Sports,
    /// Music, film, celebrities.
    Entertainment,
    /// Research, tech companies, space.
    Science,
    /// Disease outbreaks, hospitals — the Covid stream (D2) lives here.
    Health,
}

impl Topic {
    /// All topics in a stable order.
    pub const ALL: [Topic; 5] = [
        Topic::Politics,
        Topic::Sports,
        Topic::Entertainment,
        Topic::Science,
        Topic::Health,
    ];

    /// A short lowercase label ("politics").
    pub fn label(self) -> &'static str {
        match self {
            Topic::Politics => "politics",
            Topic::Sports => "sports",
            Topic::Entertainment => "entertainment",
            Topic::Science => "science",
            Topic::Health => "health",
        }
    }
}

/// One real-world entity and the surface forms it is mentioned under.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityRecord {
    /// Stable identifier.
    pub id: EntityId,
    /// The entity's type.
    pub ty: EntityType,
    /// Canonical name as lowercase tokens, e.g. `["andy", "beshear"]`.
    pub canonical: Vec<String>,
    /// Alias surface forms (each a token sequence, lowercase). Always
    /// contains the canonical form; may add shortened and hashtag forms.
    pub aliases: Vec<Vec<String>>,
    /// Home topic.
    pub topic: Topic,
}

impl EntityRecord {
    /// Canonical name as a single string.
    pub fn name(&self) -> String {
        self.canonical.join(" ")
    }
}

/// Common words the tweet grammar also uses as *non-entities* while an
/// entity shares the identical surface form — the ambiguity §V-C
/// resolves by clustering ("US" the country vs "us" the pronoun,
/// "Fireflies" the song vs fireflies the insects).
pub const AMBIGUOUS_NON_ENTITY_WORDS: &[&str] = &["us", "apple", "fireflies", "stone", "summit"];

/// The full entity inventory plus topic indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeBase {
    entities: Vec<EntityRecord>,
    by_topic: HashMap<Topic, Vec<EntityId>>,
}

impl KnowledgeBase {
    /// Builds a knowledge base with `per_topic` procedural entities per
    /// topic on top of the fixed anchor inventory, drawing from the
    /// evaluation lexicon universe. Deterministic per `seed`.
    pub fn build(seed: u64, per_topic: usize) -> Self {
        Self::build_in(seed, per_topic, Universe::Eval)
    }

    /// Like [`Self::build`] but with an explicit lexicon universe —
    /// training corpora use [`Universe::Train`] so their procedural
    /// entities share no distinctive word parts with the evaluation
    /// streams (the lexical novelty that makes microblog NER hard).
    pub fn build_in(seed: u64, per_topic: usize, universe: Universe) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = NameGen::new(universe);
        let mut entities = Vec::new();

        // The anchor inventory mirrors the *emerging* entities of the
        // paper's streams (coronavirus, beshear, …) — entities the
        // fine-tuned model has not seen. They therefore live only in the
        // evaluation universe; the training corpus never mentions them,
        // just as WNUT17 (2017) never mentions Covid.
        if universe == Universe::Eval {
            for a in anchor_entities() {
                gen.reserve(&a.canonical.join(" "));
                entities.push(a);
            }
        }
        // Reserve ambiguous plain words so procedural names don't collide.
        for w in AMBIGUOUS_NON_ENTITY_WORDS {
            gen.reserve(w);
        }

        let mut next_id = entities.len() as u32;
        for topic in Topic::ALL {
            for i in 0..per_topic {
                // Type mix: persons dominate, ORG/MISC rarer — the same
                // skew that makes those types hard in WNUT17 (Product,
                // Creative-work and Group fold into MISC, so it is not
                // vanishingly rare either).
                let ty = match i % 20 {
                    0..=6 => EntityType::Person,
                    7..=11 => EntityType::Location,
                    12..=15 => EntityType::Organization,
                    _ => EntityType::Miscellaneous,
                };
                let canonical = gen.generate(&mut rng, ty);
                let aliases = make_aliases(&mut rng, &canonical, ty);
                entities.push(EntityRecord {
                    id: EntityId(next_id),
                    ty,
                    canonical,
                    aliases,
                    topic,
                });
                next_id += 1;
            }
        }

        let mut by_topic: HashMap<Topic, Vec<EntityId>> = HashMap::new();
        for e in &entities {
            by_topic.entry(e.topic).or_default().push(e.id);
        }
        Self { entities, by_topic }
    }

    /// All entities.
    pub fn entities(&self) -> &[EntityRecord] {
        &self.entities
    }

    /// Record lookup by id.
    pub fn get(&self, id: EntityId) -> &EntityRecord {
        &self.entities[id.0 as usize]
    }

    /// Entity ids belonging to a topic.
    pub fn topic_entities(&self, topic: Topic) -> &[EntityId] {
        self.by_topic.get(&topic).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Entities whose alias set contains the given surface form
    /// (lowercase, space-joined). Ambiguous surfaces return several.
    pub fn entities_with_surface(&self, surface: &str) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| e.aliases.iter().any(|a| a.join(" ") == surface))
            .map(|e| e.id)
            .collect()
    }

    /// Total entity count.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the knowledge base is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

fn make_aliases(rng: &mut StdRng, canonical: &[String], ty: EntityType) -> Vec<Vec<String>> {
    let mut aliases = vec![canonical.to_vec()];
    if canonical.len() > 1 {
        match ty {
            EntityType::Person => {
                // Last-name-only mention ("beshear").
                aliases.push(vec![canonical[canonical.len() - 1].clone()]);
            }
            EntityType::Organization | EntityType::Miscellaneous | EntityType::Location => {
                if rng.gen_bool(0.5) {
                    aliases.push(vec![canonical[0].clone()]);
                }
            }
        }
        // Hashtag form: "#andybeshear".
        aliases.push(vec![format!("#{}", canonical.join(""))]);
    } else if rng.gen_bool(0.6) {
        aliases.push(vec![format!("#{}", canonical[0])]);
    }
    aliases
}

/// The fixed anchor inventory mirroring the paper's examples. Includes
/// the ambiguous pairs: washington (PER & LOC), jordan (PER & LOC),
/// paris (LOC & PER), amazon (ORG & LOC), plus entities whose surface
/// collides with common words (US, apple, fireflies, summit, stone).
fn anchor_entities() -> Vec<EntityRecord> {
    let mk = |id: u32, ty, topic, canonical: &[&str], aliases: &[&[&str]]| EntityRecord {
        id: EntityId(id),
        ty,
        canonical: canonical.iter().map(|s| s.to_string()).collect(),
        aliases: aliases
            .iter()
            .map(|a| a.iter().map(|s| s.to_string()).collect())
            .collect(),
        topic,
    };
    use EntityType::*;
    use Topic::*;
    vec![
        mk(0, Person, Health, &["andy", "beshear"],
            &[&["andy", "beshear"], &["beshear"], &["#andybeshear"]]),
        mk(1, Person, Politics, &["donald", "trump"],
            &[&["donald", "trump"], &["trump"], &["#trump"]]),
        mk(2, Location, Health, &["italy"], &[&["italy"], &["#italy"]]),
        mk(3, Location, Health, &["canada"], &[&["canada"], &["#canada"]]),
        mk(4, Location, Health, &["us"], &[&["us"]]),
        mk(5, Organization, Health, &["nhs"], &[&["nhs"], &["#nhs"]]),
        mk(6, Miscellaneous, Health, &["coronavirus"],
            &[&["coronavirus"], &["covid"], &["covid", "19"], &["#coronavirus"], &["#covid19"]]),
        mk(7, Organization, Politics, &["justice", "department"],
            &[&["justice", "department"], &["doj"]]),
        mk(8, Organization, Politics, &["russian", "government"],
            &[&["russian", "government"]]),
        // Ambiguous pair: the president vs the state.
        mk(9, Person, Politics, &["george", "washington"],
            &[&["george", "washington"], &["washington"]]),
        mk(10, Location, Politics, &["washington"],
            &[&["washington"], &["#washington"]]),
        // Ambiguous pair: the athlete vs the country.
        mk(11, Person, Sports, &["michael", "jordan"],
            &[&["michael", "jordan"], &["jordan"]]),
        mk(12, Location, Sports, &["jordan"], &[&["jordan"]]),
        // Ambiguous pair: the city vs the celebrity.
        mk(13, Location, Entertainment, &["paris"], &[&["paris"], &["#paris"]]),
        mk(14, Person, Entertainment, &["paris", "hilton"],
            &[&["paris", "hilton"], &["paris"]]),
        // Surface collides with the river / the fruit / the insects.
        mk(15, Organization, Science, &["amazon"], &[&["amazon"], &["#amazon"]]),
        mk(16, Location, Science, &["amazon", "river"],
            &[&["amazon", "river"], &["amazon"]]),
        mk(17, Organization, Science, &["apple"], &[&["apple"], &["#apple"]]),
        mk(18, Miscellaneous, Entertainment, &["fireflies"],
            &[&["fireflies"], &["#fireflies"]]),
        mk(19, Person, Entertainment, &["emma", "stone"],
            &[&["emma", "stone"], &["stone"]]),
        mk(20, Organization, Politics, &["summit", "council"],
            &[&["summit", "council"], &["summit"]]),
        mk(21, Miscellaneous, Health, &["rotavirus"], &[&["rotavirus"]]),
        mk(22, Person, Health, &["anthony", "fauci"],
            &[&["anthony", "fauci"], &["fauci"], &["#fauci"]]),
        mk(23, Location, Health, &["wuhan"], &[&["wuhan"], &["#wuhan"]]),
        mk(24, Organization, Health, &["who"], &[&["who"]]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_have_sequential_ids() {
        let anchors = anchor_entities();
        for (i, a) in anchors.iter().enumerate() {
            assert_eq!(a.id.0 as usize, i);
            assert!(!a.aliases.is_empty());
            assert!(a.aliases.contains(&a.canonical), "canonical missing for {}", a.name());
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = KnowledgeBase::build(5, 30);
        let b = KnowledgeBase::build(5, 30);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entities().iter().zip(b.entities()) {
            assert_eq!(x.canonical, y.canonical);
        }
    }

    #[test]
    fn every_topic_gets_entities() {
        let kb = KnowledgeBase::build(1, 40);
        for t in Topic::ALL {
            assert!(kb.topic_entities(t).len() >= 40, "topic {t:?}");
        }
    }

    #[test]
    fn ambiguous_surfaces_map_to_multiple_entities() {
        let kb = KnowledgeBase::build(1, 10);
        let w = kb.entities_with_surface("washington");
        assert!(w.len() >= 2, "washington should be ambiguous, got {w:?}");
        let types: Vec<_> = w.iter().map(|&id| kb.get(id).ty).collect();
        assert!(types.contains(&EntityType::Person));
        assert!(types.contains(&EntityType::Location));
        assert!(kb.entities_with_surface("jordan").len() >= 2);
        assert!(kb.entities_with_surface("amazon").len() >= 2);
    }

    #[test]
    fn covid_anchor_has_variant_aliases() {
        let kb = KnowledgeBase::build(1, 10);
        let cov = kb.entities_with_surface("coronavirus");
        assert_eq!(cov.len(), 1);
        let rec = kb.get(cov[0]);
        assert!(rec.aliases.iter().any(|a| a.join(" ") == "covid 19"));
    }

    #[test]
    fn get_round_trips_ids() {
        let kb = KnowledgeBase::build(2, 15);
        for e in kb.entities() {
            assert_eq!(kb.get(e.id).id, e.id);
        }
    }
}
