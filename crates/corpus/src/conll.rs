//! CoNLL-style import/export.
//!
//! The WNUT17 and BTC corpora ship as token-per-line files with BIO tags
//! (`token<TAB>B-person` …, sentences separated by blank lines). This
//! module reads and writes that format so the pipeline can run on the
//! *real* corpora when a user has them — the synthetic profiles are the
//! substitute, not a lock-in.
//!
//! On import, entity identity (which CoNLL does not encode) is
//! reconstructed by surface form: all mentions sharing a folded surface
//! and type are attributed to one entity. That is exactly the
//! granularity the Global NER analyses (Fig. 4, §VI-C) operate at.

use std::collections::HashMap;

use ngl_text::{encode_bio, BioTag, Span};

use crate::kb::{EntityId, Topic};
use crate::tweets::{AnnotatedTweet, GoldMention};
use crate::Dataset;

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConllError {
    /// A non-blank line had no tag column.
    MissingTag {
        /// 1-based line number.
        line: usize,
    },
    /// A tag column was not O / B-x / I-x with a known type.
    BadTag {
        /// 1-based line number.
        line: usize,
        /// The offending tag text.
        tag: String,
    },
}

impl std::fmt::Display for ConllError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConllError::MissingTag { line } => write!(f, "line {line}: missing tag column"),
            ConllError::BadTag { line, tag } => write!(f, "line {line}: bad tag {tag:?}"),
        }
    }
}

impl std::error::Error for ConllError {}

/// Maps common corpus tag spellings onto the four preset types:
/// WNUT17's `person/location/corporation/group/product/creative-work`
/// as well as plain `PER/LOC/ORG/MISC`.
fn parse_type(raw: &str) -> Option<ngl_text::EntityType> {
    use ngl_text::EntityType::*;
    match raw.to_ascii_lowercase().as_str() {
        "per" | "person" => Some(Person),
        "loc" | "location" | "geo-loc" | "facility" => Some(Location),
        "org" | "organization" | "corporation" | "company" | "sportsteam" => Some(Organization),
        "misc" | "miscellaneous" | "product" | "creative-work" | "group" | "musicartist"
        | "tvshow" | "movie" => Some(Miscellaneous),
        _ => None,
    }
}

/// Parses CoNLL text into annotated tweets. Tokens and tags are the
/// first and last whitespace-separated columns of each line.
///
/// ```
/// let text = "Andy\tB-PER\nBeshear\tI-PER\nspoke\tO\n\nItaly\tB-LOC\n";
/// let tweets = ngl_corpus::from_conll(text).unwrap();
/// assert_eq!(tweets.len(), 2);
/// assert_eq!(tweets[0].gold.len(), 1);
/// assert_eq!(tweets[0].gold[0].span.end, 2);
/// ```
pub fn from_conll(text: &str) -> Result<Vec<AnnotatedTweet>, ConllError> {
    let mut tweets = Vec::new();
    let mut tokens: Vec<String> = Vec::new();
    let mut tags: Vec<BioTag> = Vec::new();
    let mut surface_ids: HashMap<String, u32> = HashMap::new();

    let flush = |tokens: &mut Vec<String>,
                     tags: &mut Vec<BioTag>,
                     tweets: &mut Vec<AnnotatedTweet>,
                     surface_ids: &mut HashMap<String, u32>| {
        if tokens.is_empty() {
            return;
        }
        let spans = ngl_text::decode_bio(tags);
        let gold = spans
            .iter()
            .map(|s| {
                let key = format!(
                    "{}#{}",
                    s.ty.code(),
                    tokens[s.start..s.end]
                        .iter()
                        .map(|t| t.to_lowercase())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                let next = surface_ids.len() as u32;
                let id = *surface_ids.entry(key).or_insert(next);
                GoldMention { span: *s, entity: EntityId(id) }
            })
            .collect();
        tweets.push(AnnotatedTweet {
            id: tweets.len() as u64,
            topic: Topic::Politics, // CoNLL carries no topic info
            tokens: std::mem::take(tokens),
            gold,
        });
        tags.clear();
    };

    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            flush(&mut tokens, &mut tags, &mut tweets, &mut surface_ids);
            continue;
        }
        let mut cols = line.split_whitespace();
        let token = cols.next().expect("non-empty line has a first column");
        let tag_text = match cols.last() {
            Some(t) => t,
            None => return Err(ConllError::MissingTag { line: ln + 1 }),
        };
        let tag = if tag_text.eq_ignore_ascii_case("o") {
            BioTag::O
        } else {
            let (head, ty_raw) = tag_text
                .split_once('-')
                .ok_or_else(|| ConllError::BadTag { line: ln + 1, tag: tag_text.to_string() })?;
            let ty = parse_type(ty_raw)
                .ok_or_else(|| ConllError::BadTag { line: ln + 1, tag: tag_text.to_string() })?;
            match head.to_ascii_uppercase().as_str() {
                "B" => BioTag::B(ty),
                "I" => BioTag::I(ty),
                _ => {
                    return Err(ConllError::BadTag { line: ln + 1, tag: tag_text.to_string() })
                }
            }
        };
        tokens.push(token.to_string());
        tags.push(tag);
    }
    flush(&mut tokens, &mut tags, &mut tweets, &mut surface_ids);
    Ok(tweets)
}

/// Serializes annotated tweets as CoNLL text (`token<TAB>tag`).
pub fn to_conll(tweets: &[AnnotatedTweet]) -> String {
    let mut out = String::new();
    for t in tweets {
        let tags = encode_bio(t.tokens.len(), &t.gold_spans());
        for (tok, tag) in t.tokens.iter().zip(&tags) {
            out.push_str(tok);
            out.push('\t');
            out.push_str(&tag.code());
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Serializes per-tweet predictions next to tokens (for eval tooling).
pub fn predictions_to_conll(tweets: &[Vec<String>], spans: &[Vec<Span>]) -> String {
    assert_eq!(tweets.len(), spans.len(), "tweet/prediction count mismatch");
    let mut out = String::new();
    for (tokens, s) in tweets.iter().zip(spans) {
        let tags = encode_bio(tokens.len(), s);
        for (tok, tag) in tokens.iter().zip(&tags) {
            out.push_str(tok);
            out.push('\t');
            out.push_str(&tag.code());
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

impl Dataset {
    /// Exports the dataset as CoNLL text.
    pub fn to_conll(&self) -> String {
        to_conll(&self.tweets)
    }

    /// Builds a dataset from CoNLL text (no topics/hashtags).
    pub fn from_conll(name: &str, text: &str) -> Result<Self, ConllError> {
        Ok(Dataset {
            name: name.to_string(),
            tweets: from_conll(text)?,
            hashtags: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, KnowledgeBase};
    use ngl_text::EntityType;

    #[test]
    fn round_trip_preserves_tokens_and_spans() {
        let kb = KnowledgeBase::build(3, 40);
        let d = Dataset::generate(
            &DatasetSpec::streaming("rt", 120, vec![Topic::Health], 7),
            &kb,
        );
        let text = d.to_conll();
        let back = Dataset::from_conll("rt", &text).expect("parse");
        assert_eq!(back.tweets.len(), d.tweets.len());
        for (a, b) in d.tweets.iter().zip(&back.tweets) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.gold_spans(), b.gold_spans());
        }
    }

    #[test]
    fn surface_identity_is_reconstructed() {
        let text = "Italy\tB-LOC\n\nitaly\tB-LOC\n\nTrump\tB-PER\n";
        let tweets = from_conll(text).expect("parse");
        assert_eq!(tweets.len(), 3);
        // Case-insensitive same-surface same-type → same entity id.
        assert_eq!(tweets[0].gold[0].entity, tweets[1].gold[0].entity);
        assert_ne!(tweets[0].gold[0].entity, tweets[2].gold[0].entity);
    }

    #[test]
    fn wnut_style_fine_types_fold_into_misc_and_org() {
        let text = "iPhone\tB-product\nNHS\tB-corporation\nBeatles\tB-group\n";
        let tweets = from_conll(text).expect("parse");
        let spans = tweets[0].gold_spans();
        assert_eq!(spans[0].ty, EntityType::Miscellaneous);
        assert_eq!(spans[1].ty, EntityType::Organization);
        assert_eq!(spans[2].ty, EntityType::Miscellaneous);
    }

    #[test]
    fn bad_tag_reports_line_number() {
        let text = "ok\tO\nbad\tX-PER\n";
        let err = from_conll(text).expect_err("must fail");
        assert_eq!(err, ConllError::BadTag { line: 2, tag: "X-PER".into() });
    }

    #[test]
    fn unknown_type_is_an_error() {
        let err = from_conll("x\tB-warp\n").expect_err("must fail");
        assert!(matches!(err, ConllError::BadTag { .. }));
    }

    #[test]
    fn blank_lines_and_trailing_newlines_are_tolerated() {
        let text = "\n\nItaly\tB-LOC\n\n\nUS\tB-LOC\n\n\n";
        let tweets = from_conll(text).expect("parse");
        assert_eq!(tweets.len(), 2);
    }

    #[test]
    fn multi_column_conll_uses_last_column() {
        // CoNLL-2003 style: token POS chunk tag.
        let text = "Italy NNP I-NP B-LOC\nrocks VBZ I-VP O\n";
        let tweets = from_conll(text).expect("parse");
        assert_eq!(tweets[0].gold.len(), 1);
        assert_eq!(tweets[0].tokens, vec!["Italy", "rocks"]);
    }

    #[test]
    fn predictions_export_shape() {
        let tweets = vec![vec!["Stay".to_string(), "Home".to_string()]];
        let spans = vec![vec![Span::new(1, 2, EntityType::Location)]];
        let text = predictions_to_conll(&tweets, &spans);
        assert_eq!(text, "Stay\tO\nHome\tB-LOC\n\n");
    }
}
