//! Procedural name generation.
//!
//! The streaming datasets of Table I contain hundreds of *unique*
//! entities each (283–906), far more than a hand-written list can
//! provide. This module composes names from syllable and word-part
//! pools, deterministically per seed, with a uniqueness guarantee inside
//! one generator instance.
//!
//! ## Lexicon universes
//!
//! The paper fine-tunes its Local NER model on WNUT17 and then streams
//! *fresh* topics whose entities the model has mostly never seen — that
//! lexical novelty is why local context alone is insufficient. To
//! reproduce it, the name-part pools are split into two disjoint
//! [`Universe`]s: the training corpus draws from one, the evaluation
//! streams from the other. Universal cues stay shared across universes
//! the way they are in reality: common first names, directional location
//! prefixes ("north", "san"), and the capitalized shape of names —
//! but last-name syllables, place cores, organization vocabularies and
//! disease/creative-work parts are disjoint, so eval entities cannot be
//! recognized by memorized subword units.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;

use ngl_text::EntityType;

/// Which half of the name-part lexicon a generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Universe {
    /// Training-corpus lexicon.
    Train,
    /// Evaluation-stream lexicon (disjoint word parts).
    Eval,
}

/// Shared across universes: globally common first names.
const FIRST_NAMES: &[&str] = &[
    "andy", "maria", "james", "lena", "omar", "priya", "carlos", "nadia", "viktor", "amara",
    "dmitri", "sofia", "kenji", "fatima", "lucas", "ingrid", "rahul", "elena", "marco", "aisha",
    "pavel", "greta", "tomas", "zara", "felix", "nora", "ivan", "leila", "bruno", "anika",
];

/// Shared: directional/urban location prefixes ("new X" exists anywhere).
const LOC_PREFIX: &[&str] = &["north", "south", "east", "west", "new", "port", "lake", "san",
    "fort", "cape"];

// ---- Split pools: first half = Train, second half = Eval. ----

const LAST_SYLLA: &[&str] = &[
    // Train half.
    "besh", "kov", "mart", "sant", "wick", "hara", "lund", "ferr", "mora", "stein",
    // Eval half.
    "vald", "okon", "berg", "ratt", "cole", "dran", "velt", "shaw", "quist", "mbe",
];
const LAST_SYLLB: &[&str] = &[
    "ear", "alov", "inez", "iago", "ham", "moto", "qvist", "ari", "les", "feld",
    "errez", "kwo", "man", "ner", "son", "ovic", "hoff", "lin", "rom", "ki",
];

const LOC_CORE: &[&str] = &[
    "avoria", "belmont", "cordova", "darnell", "elmsworth", "farindale", "grenholm", "harwick",
    "ivoria", "jutland", "kessler", "lorring",
    "maraval", "norwick", "ostrava", "pellmore", "quinton", "ravenna", "solvang", "tremont",
    "ulverton", "vandria", "westholm", "yarrow", "zephyria",
];

const ORG_CORE: &[&str] = &[
    "apex", "meridian", "vanguard", "pinnacle", "horizon", "atlas", "summit", "keystone",
    "beacon", "cascade",
    "northstar", "quantum", "sterling", "vertex", "zenith", "orion", "pioneer", "cobalt",
    "granite", "harbor",
];
const ORG_SUFFIX: &[&str] = &[
    "corp", "labs", "group", "institute", "foundation", "media", "systems", "partners",
    "authority", "agency", "council", "ministry", "department", "university", "league", "network",
];

const MISC_DISEASE_A: &[&str] = &[
    "rota", "nephro", "cardio", "derma", "neuro",
    "hema", "osteo", "pulmo", "gastro", "viro",
];
const MISC_DISEASE_B: &[&str] = &[
    "virus", "fever", "pox", "flu",
    "itis", "plague", "syndrome", "mia",
];
const MISC_WORK_A: &[&str] = &[
    "midnight", "crimson", "silent", "golden", "electric",
    "broken", "hollow", "neon", "velvet", "shattered",
];
const MISC_WORK_B: &[&str] = &[
    "horizon", "echoes", "reverie", "skies", "empire",
    "letters", "mirrors", "gardens", "voyage", "anthem",
];

/// Returns the universe's half of a split pool.
fn half<'a>(pool: &'a [&'a str], universe: Universe) -> &'a [&'a str] {
    let mid = pool.len() / 2;
    match universe {
        Universe::Train => &pool[..mid],
        Universe::Eval => &pool[mid..],
    }
}

/// Deterministic, collision-free name generator.
///
/// Wraps a caller-provided RNG and remembers every name it has produced,
/// so a single generator never emits the same canonical name twice.
pub struct NameGen {
    universe: Universe,
    used: HashSet<String>,
}

impl NameGen {
    /// A fresh generator over the given lexicon universe.
    pub fn new(universe: Universe) -> Self {
        Self { universe, used: HashSet::new() }
    }

    /// Marks a name as taken (used to protect hand-picked anchor
    /// entities from procedural collisions).
    pub fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_string());
    }

    /// Generates a unique canonical name (lower-case tokens) for the
    /// given entity type.
    pub fn generate(&mut self, rng: &mut StdRng, ty: EntityType) -> Vec<String> {
        for attempt in 0..10_000 {
            let mut cand = self.candidate(rng, ty);
            if attempt >= 100 {
                // Base combination space is getting crowded — widen it
                // with a distinguishing extra syllable token.
                let sa = half(LAST_SYLLA, self.universe);
                let sb = half(LAST_SYLLB, self.universe);
                cand.push(format!(
                    "{}{}",
                    sa[rng.gen_range(0..sa.len())],
                    sb[rng.gen_range(0..sb.len())]
                ));
            }
            let key = cand.join(" ");
            if self.used.insert(key) {
                return cand;
            }
        }
        panic!("name space exhausted for {ty}");
    }

    /// A random 2–4 letter acronym ("nhs"-style). Acronym orgs are
    /// shape-ambiguous — rendered in caps they look like any shouted
    /// word — which is one reason ORG is a weak type for local NER.
    fn acronym(&self, rng: &mut StdRng) -> String {
        // Consonant-heavy alphabet, split by universe to stay disjoint.
        let letters: &[char] = match self.universe {
            Universe::Train => &['b', 'c', 'd', 'f', 'g', 'h', 'j', 'k', 'l', 'm'],
            Universe::Eval => &['n', 'p', 'q', 'r', 's', 't', 'v', 'w', 'x', 'z'],
        };
        let n = rng.gen_range(2..=4usize);
        (0..n).map(|_| letters[rng.gen_range(0..letters.len())]).collect()
    }

    fn candidate(&self, rng: &mut StdRng, ty: EntityType) -> Vec<String> {
        let u = self.universe;
        match ty {
            EntityType::Person => {
                let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
                let sa = half(LAST_SYLLA, u);
                let sb = half(LAST_SYLLB, u);
                let last = format!(
                    "{}{}",
                    sa[rng.gen_range(0..sa.len())],
                    sb[rng.gen_range(0..sb.len())]
                );
                vec![first.to_string(), last]
            }
            EntityType::Location => {
                let core_pool = half(LOC_CORE, u);
                if rng.gen_bool(0.4) {
                    vec![
                        LOC_PREFIX[rng.gen_range(0..LOC_PREFIX.len())].to_string(),
                        core_pool[rng.gen_range(0..core_pool.len())].to_string(),
                    ]
                } else {
                    let core = core_pool[rng.gen_range(0..core_pool.len())];
                    if rng.gen_bool(0.5) {
                        vec![core.to_string()]
                    } else {
                        let sa = half(LAST_SYLLA, u);
                        let syl = sa[rng.gen_range(0..sa.len())];
                        vec![format!("{syl}{core}")]
                    }
                }
            }
            EntityType::Organization => {
                if rng.gen_bool(0.4) {
                    // Acronym org ("NHS", "DOJ" style) — hard for a
                    // local tagger because a shouted word looks identical.
                    return vec![self.acronym(rng)];
                }
                let cores = half(ORG_CORE, u);
                let suffixes = half(ORG_SUFFIX, u);
                let core = cores[rng.gen_range(0..cores.len())];
                let suffix = suffixes[rng.gen_range(0..suffixes.len())];
                if rng.gen_bool(0.25) {
                    let locs = half(LOC_CORE, u);
                    let loc = locs[rng.gen_range(0..locs.len())];
                    vec![suffix.to_string(), "of".to_string(), loc.to_string()]
                } else {
                    vec![core.to_string(), suffix.to_string()]
                }
            }
            EntityType::Miscellaneous => {
                if rng.gen_bool(0.5) {
                    // Disease-like single token ("rotavirus").
                    let a = half(MISC_DISEASE_A, u);
                    let b = half(MISC_DISEASE_B, u);
                    vec![format!(
                        "{}{}",
                        a[rng.gen_range(0..a.len())],
                        b[rng.gen_range(0..b.len())]
                    )]
                } else {
                    // Creative-work-like two tokens ("midnight echoes") —
                    // ordinary words, often lowercase, genuinely hard.
                    let a = half(MISC_WORK_A, u);
                    let b = half(MISC_WORK_B, u);
                    vec![
                        a[rng.gen_range(0..a.len())].to_string(),
                        b[rng.gen_range(0..b.len())].to_string(),
                    ]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_unique_within_a_generator() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = NameGen::new(Universe::Eval);
        let mut seen = HashSet::new();
        for i in 0..800 {
            let ty = EntityType::from_index(i % 4);
            let n = g.generate(&mut rng, ty).join(" ");
            assert!(seen.insert(n.clone()), "duplicate name {n}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = NameGen::new(Universe::Train);
            (0..20)
                .map(|i| g.generate(&mut rng, EntityType::from_index(i % 4)).join(" "))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    fn reserved_names_are_not_reissued() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = NameGen::new(Universe::Eval);
        for core in LOC_CORE {
            g.reserve(core);
        }
        for _ in 0..100 {
            let n = g.generate(&mut rng, EntityType::Location).join(" ");
            assert!(!LOC_CORE.contains(&n.as_str()), "reissued reserved {n}");
        }
    }

    #[test]
    fn names_are_lowercase_tokens() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = NameGen::new(Universe::Train);
        for i in 0..40 {
            let toks = g.generate(&mut rng, EntityType::from_index(i % 4));
            assert!(!toks.is_empty());
            for t in toks {
                assert!(t.chars().all(|c| c.is_ascii_lowercase()), "token {t}");
            }
        }
    }

    /// The core novelty property: no eval-universe name token (other
    /// than shared first names and location prefixes) may appear in a
    /// train-universe name.
    #[test]
    fn universes_have_disjoint_distinctive_tokens() {
        let collect = |universe| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut g = NameGen::new(universe);
            let mut toks = HashSet::new();
            for i in 0..400 {
                for t in g.generate(&mut rng, EntityType::from_index(i % 4)) {
                    toks.insert(t);
                }
            }
            toks
        };
        let train = collect(Universe::Train);
        let eval = collect(Universe::Eval);
        let shared: HashSet<&String> = train.intersection(&eval).collect();
        for t in &shared {
            let ok = FIRST_NAMES.contains(&t.as_str())
                || LOC_PREFIX.contains(&t.as_str())
                || t.as_str() == "of";
            assert!(ok, "distinctive token {t} leaked across universes");
        }
    }
}
