//! `ngl` — the NER Globalizer command line.
//!
//! ```text
//! ngl generate --profile <d1|d2|d3|d4|d5|wnut17|btc|local-train> \
//!              [--seed N] [--out file.conll]
//! ngl train    --train train.conll --d5 d5.conll --out model.nglb \
//!              [--dim 32] [--epochs 8]
//! ngl tag      --model model.nglb [--input tweets.txt] [--conll] \
//!              [--store-dir DIR] [--checkpoint-every N] [--shards N]
//! ngl recover  --model model.nglb --store-dir DIR [--checkpoint-every N] [--shards N]
//! ngl serve    --model model.nglb --store-dir DIR [--addr HOST:PORT] \
//!              [--max-batch N] [--max-delay-ms N] [--queue-cap N] \
//!              [--finalize-every N] [--checkpoint-every N] [--shards N]
//! ngl eval     --gold gold.conll --pred pred.conll
//! ```
//!
//! `generate` writes a synthetic Table-I-style dataset as CoNLL;
//! `train` fine-tunes the Local NER encoder on one annotated corpus and
//! the Global NER components on a D5-style stream, saving everything as
//! one model bundle; `tag` streams raw tweets (one per line, stdin by
//! default) through the full pipeline — with `--store-dir` the run is
//! durable: batches are write-ahead logged and state checkpoints
//! incrementally, so a later `tag` or `recover` on the same dir resumes
//! where the stream left off; `recover` replays a store dir without
//! ingesting anything new and reports the recovered state; `serve`
//! exposes the durable pipeline over HTTP — batching ingest, read-only
//! queries against the last finalized state, and typed admission
//! control (see `ngl_serve`); `eval` scores CoNLL predictions against
//! CoNLL gold.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

use ngl_core::{
    model_fingerprint, train_globalizer, DegradationMode, DurableGlobalizer, GlobalizerBundle,
    GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer, PoolPolicy, RecoveryReport,
    SharedPageCache, ShardedGlobalizer,
};
use ngl_corpus::{profiles, Dataset, KnowledgeBase};
use ngl_encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ngl_eval::evaluate;
use ngl_text::{tokenize, EntityType, Span};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&parse_flags(&args[1..])),
        Some("train") => cmd_train(&parse_flags(&args[1..])),
        Some("tag") => cmd_tag(&parse_flags(&args[1..])),
        Some("recover") => cmd_recover(&parse_flags(&args[1..])),
        Some("serve") => cmd_serve(&parse_flags(&args[1..])),
        Some("eval") => cmd_eval(&parse_flags(&args[1..])),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ngl generate --profile <d1|d2|d3|d4|d5|wnut17|btc|local-train> [--seed N] [--out file.conll]
  ngl train    --train train.conll --d5 d5.conll --out model.nglb [--dim 32] [--epochs 8]
  ngl tag      --model model.nglb [--input tweets.txt] [--conll] [--store-dir DIR]
               [--checkpoint-every N] [--shards N]
  ngl recover  --model model.nglb --store-dir DIR [--checkpoint-every N] [--shards N]
  ngl serve    --model model.nglb --store-dir DIR [--addr HOST:PORT] [--max-batch N]
               [--max-delay-ms N] [--queue-cap N] [--finalize-every N] [--checkpoint-every N]
               [--shards N]
  ngl eval     --gold gold.conll --pred pred.conll";

/// Parses `--key value` pairs plus bare `--flag` switches.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned();
            match value {
                Some(v) => {
                    out.insert(key.to_string(), v);
                    i += 2;
                }
                None => {
                    out.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}\n{USAGE}"))
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} must be a number, got {v:?}")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let profile = required(flags, "profile")?;
    let seed: u64 = parse_num(flags, "seed", 2024)?;
    let spec = match profile {
        "d1" => profiles::d1(seed),
        "d2" => profiles::d2(seed),
        "d3" => profiles::d3(seed),
        "d4" => profiles::d4(seed),
        "d5" => profiles::d5(seed),
        "wnut17" => profiles::wnut17_like(seed),
        "btc" => profiles::btc_like(seed),
        "local-train" => profiles::local_train(seed),
        other => return Err(format!("unknown profile {other:?}")),
    };
    // Training profiles draw from the train lexicon universe, evaluation
    // profiles from the eval universe (see DESIGN.md).
    let kb = if profile == "local-train" {
        KnowledgeBase::build_in(seed ^ 0x0001, 400, ngl_corpus::namegen::Universe::Train)
    } else if profile == "d5" {
        KnowledgeBase::build_in(seed ^ 0x0003, 200, ngl_corpus::namegen::Universe::Eval)
    } else {
        KnowledgeBase::build_in(seed ^ 0x0002, 400, ngl_corpus::namegen::Universe::Eval)
    };
    let dataset = Dataset::generate(&spec, &kb);
    let conll = dataset.to_conll();
    match flags.get("out") {
        Some(path) => std::fs::write(path, conll).map_err(|e| e.to_string())?,
        None => print!("{conll}"),
    }
    let s = dataset.stats();
    eprintln!(
        "generated {} ({} tweets, {} entities, {} mentions)",
        s.name, s.size, s.unique_entities, s.total_mentions
    );
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let train_path = required(flags, "train")?;
    let d5_path = required(flags, "d5")?;
    let out = required(flags, "out")?;
    let dim: usize = parse_num(flags, "dim", 32)?;
    let epochs: usize = parse_num(flags, "epochs", 8)?;
    let seed: u64 = parse_num(flags, "seed", 2024)?;

    let read_conll = |path: &str| -> Result<Dataset, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Dataset::from_conll(path, &text).map_err(|e| format!("{path}: {e}"))
    };
    let train_set = read_conll(train_path)?;
    let d5 = read_conll(d5_path)?;

    eprintln!("fine-tuning the Local NER encoder on {} tweets...", train_set.tweets.len());
    let mut encoder = TokenEncoder::new(EncoderConfig {
        embed_dim: (dim * 3 / 4).max(8),
        hidden_dim: dim * 3 / 2,
        out_dim: dim,
        seed,
        ..Default::default()
    });
    let stats = train_encoder(
        &mut encoder,
        &train_set,
        &TrainConfig { epochs, seed: seed ^ 0xE7C, ..Default::default() },
    );
    eprintln!(
        "  {} epochs, dev token accuracy {:.1}%",
        stats.epochs_run,
        stats.dev_token_accuracy * 100.0
    );

    eprintln!("training Global NER components on {} tweets...", d5.tweets.len());
    let trained = train_globalizer(&encoder, &d5, &GlobalizerTrainingConfig::for_dim(dim));
    eprintln!(
        "  {} ({} records), classifier gold-cluster macro-F1 {:.1}%",
        trained.report.objective,
        trained.report.dataset_size,
        trained.report.classifier_val_macro_f1 * 100.0
    );

    let bundle = GlobalizerBundle::from_models(encoder, trained.phrase, trained.classifier);
    bundle.save(out).map_err(|e| e.to_string())?;
    eprintln!("model saved to {out}");
    Ok(())
}

/// Fingerprint of the model bundle *file*, binding a durable store to
/// the exact serialized models that wrote it.
fn model_file_fingerprint(path: &str) -> Result<u64, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(model_fingerprint(&bytes))
}

/// `--shards N` (default 1). The count is pinned by the store's
/// `shards.meta` on first open; reopening with a different value fails
/// fast with a typed `ShardLayoutMismatch`.
fn parse_shards(flags: &HashMap<String, String>) -> Result<u32, String> {
    let shards: u32 = parse_num(flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    Ok(shards)
}

fn cmd_tag(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = required(flags, "model")?;
    let bundle = GlobalizerBundle::load(model).map_err(|e| e.to_string())?;
    let text = match flags.get("input") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| e.to_string())?;
            buf
        }
    };
    let tweets: Vec<Vec<String>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| tokenize(l).into_iter().map(|t| t.text).collect())
        .collect();
    if tweets.is_empty() {
        return Err("no input tweets".to_string());
    }

    let shards = parse_shards(flags)?;
    let pipeline = NerGlobalizer::new(
        bundle.encoder,
        bundle.phrase,
        bundle.classifier,
        // Sharded runs fan out over one process-wide pool so N shards
        // never oversubscribe cores; a 1-shard run keeps its own.
        GlobalizerConfig {
            pool: if shards > 1 { PoolPolicy::Shared } else { PoolPolicy::PerPipeline },
            ..Default::default()
        },
    );
    if shards > 1 && !flags.contains_key("store-dir") {
        return Err("--shards requires --store-dir (sharding partitions the durable store)".into());
    }
    let (spans, n_surfaces, wedged) = match flags.get("store-dir") {
        Some(dir) if shards > 1 => {
            let every: usize = parse_num(flags, "checkpoint-every", 8)?;
            let fp = model_file_fingerprint(model)?;
            let (mut sharded, report) =
                ShardedGlobalizer::open_with_fingerprint(pipeline, dir, every, shards, Some(fp))
                    .map_err(|e| e.to_string())?;
            let resumed = report
                .shards
                .iter()
                .any(|r| r.replayed_batches > 0 || r.snapshot_seq.is_some());
            if resumed {
                eprintln!(
                    "resumed {shards}-shard store {dir}: digest {:016x}",
                    report.combined_digest
                );
            }
            sharded.process_batch(tweets.clone()).map_err(|e| e.to_string())?;
            let all = sharded.finalize().map_err(|e| e.to_string())?;
            for (i, health) in sharded.degradations().iter().enumerate() {
                if health.is_degraded() {
                    eprintln!(
                        "warning: shard {i} degraded ({}): {} wal commit failures, \
                         {} snapshot failures, {} spill pins, {} spill losses",
                        health.mode(),
                        health.wal_commit_failures,
                        health.snapshot_failures,
                        health.spill_pins,
                        health.spill_losses
                    );
                }
            }
            let skip = all.len().saturating_sub(tweets.len());
            let wedged = sharded.admission_mode() == DegradationMode::ReadOnly;
            (all[skip..].to_vec(), sharded.merged().n_surfaces(), wedged)
        }
        Some(dir) => {
            let every: usize = parse_num(flags, "checkpoint-every", 8)?;
            let fp = model_file_fingerprint(model)?;
            let (mut durable, report) =
                DurableGlobalizer::open_with_fingerprint(pipeline, dir, every, Some(fp))
                    .map_err(|e| e.to_string())?;
            if report.replayed_batches > 0 || report.snapshot_seq.is_some() {
                eprintln!(
                    "resumed store {dir}: {} tweets, watermark {}{}",
                    report.tweets,
                    report.watermark,
                    if report.torn_tail { " (torn tail discarded)" } else { "" }
                );
            }
            durable.process_batch(tweets.clone()).map_err(|e| e.to_string())?;
            let all = durable.finalize().map_err(|e| e.to_string())?;
            let health = durable.degradation();
            if health.is_degraded() {
                eprintln!(
                    "warning: storage degraded ({}): {} wal commit failures, \
                     {} snapshot failures, {} spill pins, {} spill losses",
                    health.mode(),
                    health.wal_commit_failures,
                    health.snapshot_failures,
                    health.spill_pins,
                    health.spill_losses
                );
            }
            // A resumed store emits spans for every retained tweet;
            // this invocation only prints the ones it just ingested.
            let skip = all.len().saturating_sub(tweets.len());
            let wedged = health.mode() == DegradationMode::ReadOnly;
            (all[skip..].to_vec(), durable.inner().n_surfaces(), wedged)
        }
        None => {
            let mut pipeline = pipeline;
            pipeline.process_batch(&tweets);
            (pipeline.finalize(), pipeline.n_surfaces(), false)
        }
    };

    if flags.contains_key("conll") {
        print!("{}", ngl_corpus::conll::predictions_to_conll(&tweets, &spans));
    } else {
        for (tokens, s) in tweets.iter().zip(&spans) {
            let rendered: Vec<String> = s
                .iter()
                .map(|sp| format!("{} [{}]", sp.surface(tokens), sp.ty))
                .collect();
            println!(
                "{}\t=> {}",
                tokens.join(" "),
                if rendered.is_empty() { "-".to_string() } else { rendered.join(", ") }
            );
        }
    }
    eprintln!(
        "tagged {} tweets ({} candidate surfaces tracked)",
        tweets.len(),
        n_surfaces
    );
    if wedged {
        // Scripts need a hard signal that the store stopped accepting
        // writes; the tagged output above is still valid read state.
        return Err("store is read-only: the degradation ladder wedged at ReadOnly".to_string());
    }
    Ok(())
}

/// One recovery section (the whole store, or one shard of it).
fn print_recovery_section(report: &RecoveryReport) {
    println!(
        "snapshot:           {}",
        match report.snapshot_seq {
            Some(seq) => format!("op {seq}"),
            None => "none".to_string(),
        }
    );
    println!("replayed batches:   {}", report.replayed_batches);
    println!("replayed finalizes: {}", report.replayed_finalizes);
    println!("torn tail:          {}", report.torn_tail);
    println!("watermark:          {}", report.watermark);
    println!("tweets:             {}", report.tweets);
    println!(
        "surfaces:           {} ({} resident)",
        report.surfaces, report.resident_surfaces
    );
    println!("state digest:       {:016x}", report.digest);
    if report.unverified_finalizes > 0 {
        println!(
            "unverified marks:   {} (writer degraded under spill faults; \
             replay is the fault-free reconstruction of its inputs)",
            report.unverified_finalizes
        );
    }
}

fn cmd_recover(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = required(flags, "model")?;
    let dir = required(flags, "store-dir")?;
    let every: usize = parse_num(flags, "checkpoint-every", 8)?;
    let shards = parse_shards(flags)?;
    let bundle = GlobalizerBundle::load(model).map_err(|e| e.to_string())?;
    let pipeline = NerGlobalizer::new(
        bundle.encoder,
        bundle.phrase,
        bundle.classifier,
        GlobalizerConfig {
            pool: if shards > 1 { PoolPolicy::Shared } else { PoolPolicy::PerPipeline },
            ..Default::default()
        },
    );
    let fp = model_file_fingerprint(model)?;
    if shards > 1 {
        let (sharded, report) =
            ShardedGlobalizer::open_with_fingerprint(pipeline, dir, every, shards, Some(fp))
                .map_err(|e| e.to_string())?;
        println!("store:              {dir} ({shards} shards)");
        for (i, shard_report) in report.shards.iter().enumerate() {
            println!("--- shard {i:02} ---");
            print_recovery_section(shard_report);
            if report.caught_up_ops[i] > 0 {
                println!(
                    "caught up:          {} ops from the most advanced shard's WAL",
                    report.caught_up_ops[i]
                );
            }
            let health = sharded.degradations()[i].mode();
            println!("storage health:     {health}");
        }
        println!("--- combined ---");
        println!("combined digest:    {:016x}", report.combined_digest);
        println!(
            "merged surfaces:    {} ({} tweets, watermark {})",
            sharded.merged().n_surfaces(),
            sharded.merged().tweet_base().len(),
            sharded.merged().scan_watermark()
        );
        let (hits, misses) = SharedPageCache::global().stats();
        println!("shared page cache:  {hits} hits / {misses} misses (process-wide)");
        drop(sharded); // recovery only: nothing new is logged
        return Ok(());
    }
    let (durable, report) =
        DurableGlobalizer::open_with_fingerprint(pipeline, dir, every, Some(fp))
            .map_err(|e| e.to_string())?;
    println!("store:              {dir}");
    print_recovery_section(&report);
    let (q_bytes, f_bytes) = durable.inner().snapshot_codec_bytes();
    let pct = if f_bytes > 0 { 100.0 * q_bytes as f64 / f_bytes as f64 } else { 100.0 };
    println!("snapshot bytes:     {q_bytes} quantized vs {f_bytes} f32 ({pct:.1}%)");
    if let Some(pool) = durable.spill_pool() {
        println!(
            "spill bytes:        {} live / {} file (quantized codec)",
            pool.live_bytes(),
            pool.file_bytes()
        );
        // The page cache is process-shared (one byte budget across
        // every spill file); these are the shared totals.
        let (hits, misses) = pool.page_cache_stats();
        println!("shared page cache:  {hits} hits / {misses} misses (process-wide)");
    }
    let health = durable.degradation();
    let io = durable.io_stats();
    println!(
        "storage health:     {} ({} io retries absorbed, {} exhausted)",
        health.mode(),
        io.transient_retries,
        io.retry_exhausted
    );
    drop(durable); // recovery only: nothing new is logged
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = required(flags, "model")?;
    let dir = required(flags, "store-dir")?;
    let every: usize = parse_num(flags, "checkpoint-every", 8)?;
    let bundle = GlobalizerBundle::load(model).map_err(|e| e.to_string())?;
    // Ingest batches and query handlers run concurrently; share one
    // runtime pool between them instead of spinning up a second one.
    let pipeline = NerGlobalizer::new(
        bundle.encoder,
        bundle.phrase,
        bundle.classifier,
        GlobalizerConfig { pool: PoolPolicy::Shared, ..Default::default() },
    );
    let fp = model_file_fingerprint(model)?;
    let shards = parse_shards(flags)?;
    let cfg = ngl_serve::ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        max_batch: parse_num(flags, "max-batch", 64)?,
        max_delay_ms: parse_num(flags, "max-delay-ms", 5)?,
        queue_cap: parse_num(flags, "queue-cap", 1024)?,
        finalize_every: parse_num(flags, "finalize-every", 8)?,
        ack_timeout_ms: parse_num(flags, "ack-timeout-ms", 10_000)?,
        pressure_shed_milli: parse_num(flags, "pressure-shed-milli", 2000)?,
    };
    let server = if shards > 1 {
        let (sharded, report) =
            ShardedGlobalizer::open_with_fingerprint(pipeline, dir, every, shards, Some(fp))
                .map_err(|e| e.to_string())?;
        let resumed = report
            .shards
            .iter()
            .any(|r| r.replayed_batches > 0 || r.snapshot_seq.is_some());
        if resumed {
            eprintln!(
                "resumed {shards}-shard store {dir}: digest {:016x}",
                report.combined_digest
            );
        }
        ngl_serve::Server::start_sharded(sharded, report, cfg).map_err(|e| e.to_string())?
    } else {
        let (durable, report) =
            DurableGlobalizer::open_with_fingerprint(pipeline, dir, every, Some(fp))
                .map_err(|e| e.to_string())?;
        if report.replayed_batches > 0 || report.snapshot_seq.is_some() {
            eprintln!(
                "resumed store {dir}: {} tweets, watermark {}{}",
                report.tweets,
                report.watermark,
                if report.torn_tail { " (torn tail discarded)" } else { "" }
            );
        }
        ngl_serve::Server::start(durable, report, cfg).map_err(|e| e.to_string())?
    };
    println!("LISTENING {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    eprintln!("serving on {} — POST /ingest, GET /tag /surface /stats /health", server.addr());
    // Serve until the process is terminated; all the work happens on
    // the server's accept and engine threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

type Sentences = Vec<(Vec<String>, Vec<Span>)>;

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let gold_path = required(flags, "gold")?;
    let pred_path = required(flags, "pred")?;
    let read = |path: &str| -> Result<Sentences, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let tweets = ngl_corpus::from_conll(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(tweets
            .into_iter()
            .map(|t| {
                let spans = t.gold_spans();
                (t.tokens, spans)
            })
            .collect())
    };
    let gold = read(gold_path)?;
    let pred = read(pred_path)?;
    if gold.len() != pred.len() {
        return Err(format!(
            "sentence count mismatch: gold {} vs pred {}",
            gold.len(),
            pred.len()
        ));
    }
    for (i, (g, p)) in gold.iter().zip(&pred).enumerate() {
        if g.0 != p.0 {
            return Err(format!("token mismatch in sentence {i}"));
        }
    }
    let gold_spans: Vec<Vec<Span>> = gold.into_iter().map(|(_, s)| s).collect();
    let pred_spans: Vec<Vec<Span>> = pred.into_iter().map(|(_, s)| s).collect();
    let scores = evaluate(&gold_spans, &pred_spans);
    println!("type  precision  recall  f1");
    for ty in EntityType::ALL {
        let s = scores.of(ty);
        println!(
            "{:<5} {:<10.3} {:<7.3} {:.3}",
            ty.code(),
            s.precision(),
            s.recall(),
            s.f1()
        );
    }
    println!("macro-F1: {:.3}", scores.macro_f1());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[&str]) -> HashMap<String, String> {
        parse_flags(&pairs.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flag_parsing_handles_pairs_and_switches() {
        let f = flags(&["--profile", "d2", "--conll", "--seed", "7"]);
        assert_eq!(f.get("profile").map(String::as_str), Some("d2"));
        assert_eq!(f.get("conll").map(String::as_str), Some("true"));
        assert_eq!(f.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let f = flags(&[]);
        assert!(required(&f, "model").is_err());
    }

    #[test]
    fn numeric_parsing_validates() {
        let f = flags(&["--seed", "abc"]);
        assert!(parse_num::<u64>(&f, "seed", 1).is_err());
        let f = flags(&["--seed", "9"]);
        assert_eq!(parse_num::<u64>(&f, "seed", 1).unwrap(), 9);
        assert_eq!(parse_num::<u64>(&flags(&[]), "seed", 1).unwrap(), 1);
    }

    #[test]
    fn unknown_profile_is_rejected() {
        let f = flags(&["--profile", "dX"]);
        assert!(cmd_generate(&f).is_err());
    }
}
