//! Drives the `ngl` binary end-to-end: generate → train → tag → eval.

use std::process::Command;

fn ngl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ngl"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ngl-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Writes miniature CoNLL corpora (generated in-process so the test does
/// not pay for full-size profiles), then exercises every subcommand.
#[test]
fn full_cli_workflow() {
    use ngl_corpus::namegen::Universe;
    use ngl_corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};

    let dir = tmpdir();
    let train_kb = KnowledgeBase::build_in(11, 120, Universe::Train);
    let d5_kb = KnowledgeBase::build(12, 80);
    let train = Dataset::generate(
        &DatasetSpec::non_streaming("train", 700, 21),
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 500, Topic::ALL.to_vec(), 22),
        &d5_kb,
    );
    let train_path = dir.join("train.conll");
    let d5_path = dir.join("d5.conll");
    let model_path = dir.join("model.nglb");
    std::fs::write(&train_path, train.to_conll()).expect("write train");
    std::fs::write(&d5_path, d5.to_conll()).expect("write d5");

    // train
    let out = ngl()
        .args([
            "train",
            "--train", train_path.to_str().expect("utf8"),
            "--d5", d5_path.to_str().expect("utf8"),
            "--out", model_path.to_str().expect("utf8"),
            "--dim", "16",
            "--epochs", "3",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model_path.exists());

    // tag (stdin)
    let tweets_path = dir.join("tweets.txt");
    std::fs::write(&tweets_path, "gov Beshear said stay home\nthanks beshear again\n")
        .expect("write tweets");
    let out = ngl()
        .args([
            "tag",
            "--model", model_path.to_str().expect("utf8"),
            "--input", tweets_path.to_str().expect("utf8"),
            "--conll",
        ])
        .output()
        .expect("run tag");
    assert!(
        out.status.success(),
        "tag failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let conll = String::from_utf8_lossy(&out.stdout);
    assert!(conll.contains("gov\t"), "conll output malformed: {conll}");
    // Two sentences → two blank-line-terminated blocks.
    assert_eq!(conll.matches("\n\n").count(), 2, "{conll}");

    // eval: score the gold file against itself — must be perfect.
    let out = ngl()
        .args([
            "eval",
            "--gold", d5_path.to_str().expect("utf8"),
            "--pred", d5_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("run eval");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("macro-F1: 1.000"), "self-eval not perfect: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_writes_conll() {
    let dir = tmpdir();
    let path = dir.join("gen.conll");
    // d1 is the smallest full profile (1000 tweets).
    let out = ngl()
        .args(["generate", "--profile", "d1", "--seed", "5", "--out",
               path.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("read back");
    let parsed = ngl_corpus::from_conll(&text).expect("valid conll");
    assert_eq!(parsed.len(), 1000);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = ngl().args(["definitely-not-a-command"]).output().expect("run");
    assert!(!out.status.success());
    let out = ngl().args(["train"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --train"));
    let out = ngl()
        .args(["tag", "--model", "/nonexistent/model.nglb"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = ngl().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
