//! Feature hashing for the token encoder.
//!
//! Tokens are mapped into two hashed embedding spaces: a word-identity
//! bucket and a bag of character trigrams (fastText-style), which is
//! what gives the encoder resilience to the typos and elongations of
//! microblog text — "coronavirus" and "coronaivrus" share most of their
//! trigrams even though their word buckets differ.

use serde::{Deserialize, Serialize};

/// Sizing of the hashed feature spaces.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Number of word-identity buckets.
    pub word_buckets: usize,
    /// Number of character-trigram buckets.
    pub sub_buckets: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self { word_buckets: 8_192, sub_buckets: 8_192 }
    }
}

/// FNV-1a, salted. Stable across runs and platforms.
fn fnv1a(bytes: &[u8], salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Word-identity bucket of a token (case-folded, hashtag-stripped).
pub fn hash_token(token: &str, buckets: usize) -> usize {
    let norm = normalize(token);
    (fnv1a(norm.as_bytes(), 0x574f_5244) % buckets as u64) as usize
}

/// Character-trigram buckets of a token, with `^`/`$` boundary markers.
/// Tokens shorter than 3 characters hash as a single padded gram.
pub fn subword_ngrams(token: &str, buckets: usize) -> Vec<usize> {
    let norm = normalize(token);
    let chars: Vec<char> = std::iter::once('^')
        .chain(norm.chars())
        .chain(std::iter::once('$'))
        .collect();
    let mut out = Vec::new();
    if chars.len() < 3 {
        let s: String = chars.iter().collect();
        out.push((fnv1a(s.as_bytes(), 0x0053_5542) % buckets as u64) as usize);
        return out;
    }
    for w in chars.windows(3) {
        let s: String = w.iter().collect();
        out.push((fnv1a(s.as_bytes(), 0x0053_5542) % buckets as u64) as usize);
    }
    out
}

fn normalize(token: &str) -> String {
    let t = token.strip_prefix('#').unwrap_or(token);
    t.to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_case_insensitive_and_hashtag_blind() {
        let b = 1 << 14;
        assert_eq!(hash_token("Italy", b), hash_token("italy", b));
        assert_eq!(hash_token("#Coronavirus", b), hash_token("coronavirus", b));
    }

    #[test]
    fn different_words_usually_differ() {
        let b = 1 << 14;
        let words = ["italy", "canada", "trump", "beshear", "nhs", "covid"];
        let hashes: Vec<usize> = words.iter().map(|w| hash_token(w, b)).collect();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), words.len());
    }

    #[test]
    fn trigram_counts_match_length() {
        // "^italy$" has 5 trigram windows.
        assert_eq!(subword_ngrams("italy", 1024).len(), 5);
        assert_eq!(subword_ngrams("us", 1024).len(), 2); // ^us$ → ^us, us$
    }

    #[test]
    fn short_tokens_still_hash() {
        assert_eq!(subword_ngrams("a", 1024).len(), 1);
        assert!(!subword_ngrams("", 1024).is_empty());
    }

    #[test]
    fn typo_shares_most_trigrams() {
        let b = 1 << 16;
        let a: std::collections::HashSet<_> =
            subword_ngrams("coronavirus", b).into_iter().collect();
        let t: std::collections::HashSet<_> =
            subword_ngrams("coronaivrus", b).into_iter().collect();
        let inter = a.intersection(&t).count();
        assert!(
            inter * 2 >= a.len(),
            "typo kept only {inter}/{} trigrams",
            a.len()
        );
    }

    #[test]
    fn buckets_bound_output() {
        for w in ["x", "hello", "#tag123", "…", "ß"] {
            assert!(hash_token(w, 97) < 97);
            assert!(subword_ngrams(w, 97).iter().all(|&i| i < 97));
        }
    }
}
