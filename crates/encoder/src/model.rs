//! The contextual token encoder and its BIO head.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_nn::layers::{Dense, Init, Relu};
use ngl_nn::loss::SoftmaxCrossEntropy;
use ngl_nn::Matrix;
use ngl_text::shape::{WordShape, SHAPE_DIM};
use ngl_text::{BioTag, Token, TokenKind};

use crate::features::{hash_token, subword_ngrams, FeatureConfig};

/// Encoder hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Hash space sizes.
    pub features: FeatureConfig,
    /// Base (word/subword) embedding dimension.
    pub embed_dim: usize,
    /// Trunk hidden width.
    pub hidden_dim: usize,
    /// Contextual ("entity-aware") embedding dimension — the `d` every
    /// downstream Globalizer component works in.
    pub out_dim: usize,
    /// Context half-window: token i sees tokens `i−window ..= i+window`.
    /// Small by design; the locality is the paper's whole point.
    pub window: usize,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            features: FeatureConfig::default(),
            embed_dim: 24,
            hidden_dim: 48,
            out_dim: 32,
            window: 2,
            seed: 0,
        }
    }
}

/// Output of encoding one sentence.
#[derive(Debug, Clone)]
pub struct SentenceEncoding {
    /// `n × out_dim` contextual token embeddings (penultimate layer —
    /// the "entity-aware token embeddings" of §III step 2).
    pub embeddings: Matrix,
    /// Predicted BIO tag per token.
    pub tags: Vec<BioTag>,
    /// `n × (2L+1)` tag probabilities.
    pub probs: Matrix,
}

/// Per-sentence forward cache used by the trainer.
pub(crate) struct ForwardCache {
    pub(crate) word_rows: Vec<usize>,
    pub(crate) sub_rows: Vec<Vec<usize>>,
    pub(crate) ctx: Matrix,
    pub(crate) pre1: Matrix,
    pub(crate) h: Matrix,
    pub(crate) emb: Matrix,
    pub(crate) logits: Matrix,
}

/// The trainable Local NER model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenEncoder {
    cfg: EncoderConfig,
    word_table: Matrix,
    sub_table: Matrix,
    pub(crate) l1: Dense,
    pub(crate) l2: Dense,
    pub(crate) head: Dense,
    /// Log-probabilities of BIO tag transitions estimated from the
    /// training corpus (`(2L+1)² `, row = from, col = to). A per-token
    /// argmax head fragments multi-token mentions into adjacent `B-B`
    /// spans; Viterbi decoding over these transitions restores the
    /// sequence-level consistency that end-to-end fine-tuned taggers
    /// learn implicitly. `None` until trained.
    #[serde(default)]
    pub(crate) log_trans: Option<Vec<f32>>,
}

impl TokenEncoder {
    /// Fresh encoder with seeded initialization.
    pub fn new(cfg: EncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 0.08f32;
        let table = |rows: usize, cols: usize, rng: &mut StdRng| {
            let data = (0..rows * cols).map(|_| rng.gen_range(-scale..scale)).collect();
            Matrix::from_vec(rows, cols, data)
        };
        let word_table = table(cfg.features.word_buckets, cfg.embed_dim, &mut rng);
        let sub_table = table(cfg.features.sub_buckets, cfg.embed_dim, &mut rng);
        let ctx_dim = 3 * cfg.embed_dim + SHAPE_DIM;
        let l1 = Dense::new(&mut rng, ctx_dim, cfg.hidden_dim, Init::He);
        let l2 = Dense::new(&mut rng, cfg.hidden_dim, cfg.out_dim, Init::Xavier);
        let head = Dense::new(&mut rng, cfg.out_dim, BioTag::COUNT, Init::Xavier);
        Self { cfg, word_table, sub_table, l1, l2, head, log_trans: None }
    }

    /// Installs the BIO transition model (log-probabilities, row-major
    /// `(2L+1)²`). The trainer estimates these from gold tag bigrams.
    pub fn set_transitions(&mut self, log_trans: Vec<f32>) {
        assert_eq!(log_trans.len(), BioTag::COUNT * BioTag::COUNT, "transition shape");
        self.log_trans = Some(log_trans);
    }

    /// The configuration the encoder was built with.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Contextual embedding dimension.
    pub fn out_dim(&self) -> usize {
        self.cfg.out_dim
    }

    /// Total scalar parameter count (tables + trunk + head).
    pub fn param_count(&self) -> usize {
        self.word_table.rows() * self.word_table.cols()
            + self.sub_table.rows() * self.sub_table.cols()
            + self.l1.param_count()
            + self.l2.param_count()
            + self.head.param_count()
    }

    /// Base (context-free) embedding of one token: word-bucket row plus
    /// the mean of its trigram rows.
    fn base_embedding(&self, token: &str, word_row: usize, sub_rows: &[usize]) -> Vec<f32> {
        let _ = token;
        let d = self.cfg.embed_dim;
        let mut v = self.word_table.row(word_row).to_vec();
        if !sub_rows.is_empty() {
            let k = sub_rows.len() as f32;
            for &r in sub_rows {
                for (o, &x) in v.iter_mut().zip(self.sub_table.row(r)).take(d) {
                    *o += x / k;
                }
            }
        }
        v
    }

    /// Full forward pass over a sentence, caching everything the
    /// backward pass needs.
    pub(crate) fn forward(&self, tokens: &[String]) -> ForwardCache {
        let n = tokens.len();
        let d = self.cfg.embed_dim;
        let w = self.cfg.window;
        let wb = self.cfg.features.word_buckets;
        let sb = self.cfg.features.sub_buckets;

        let word_rows: Vec<usize> = tokens.iter().map(|t| hash_token(t, wb)).collect();
        let sub_rows: Vec<Vec<usize>> = tokens.iter().map(|t| subword_ngrams(t, sb)).collect();

        let mut base = Matrix::zeros(n.max(1), d);
        for i in 0..n {
            let v = self.base_embedding(&tokens[i], word_rows[i], &sub_rows[i]);
            base.row_mut(i).copy_from_slice(&v);
        }

        let ctx_dim = 3 * d + SHAPE_DIM;
        let mut ctx = Matrix::zeros(n.max(1), ctx_dim);
        for i in 0..n {
            let row = ctx.row_mut(i);
            // Left-window mean.
            let lo = i.saturating_sub(w);
            if lo < i {
                let cnt = (i - lo) as f32;
                for j in lo..i {
                    for c in 0..d {
                        row[c] += base.get(j, c) / cnt;
                    }
                }
            }
            // Self.
            row[d..2 * d].copy_from_slice(base.row(i));
            // Right-window mean.
            let hi = (i + 1 + w).min(n);
            if i + 1 < hi {
                let cnt = (hi - i - 1) as f32;
                for j in i + 1..hi {
                    for c in 0..d {
                        row[2 * d + c] += base.get(j, c) / cnt;
                    }
                }
            }
            // Shape features.
            let shape = WordShape::of(&pseudo_token(&tokens[i])).to_features();
            row[3 * d..].copy_from_slice(&shape);
        }

        let pre1 = self.l1.forward(&ctx);
        let h = Relu.forward(&pre1);
        let emb = self.l2.forward(&h);
        let logits = self.head.forward(&emb);
        ForwardCache { word_rows, sub_rows, ctx, pre1, h, emb, logits }
    }

    /// Encodes a sentence: contextual embeddings + BIO predictions.
    pub fn encode_sentence(&self, tokens: &[String]) -> SentenceEncoding {
        if tokens.is_empty() {
            return SentenceEncoding {
                embeddings: Matrix::zeros(0, self.cfg.out_dim),
                tags: Vec::new(),
                probs: Matrix::zeros(0, BioTag::COUNT),
            };
        }
        let cache = self.forward(tokens);
        let probs = SoftmaxCrossEntropy.probabilities(&cache.logits);
        let tags = match &self.log_trans {
            Some(trans) => viterbi_decode(&probs, trans),
            None => (0..tokens.len())
                .map(|r| {
                    let row = probs.row(r);
                    let best = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite prob"))
                        .map(|(i, _)| i)
                        .expect("non-empty row");
                    BioTag::from_index(best)
                })
                .collect(),
        };
        SentenceEncoding { embeddings: cache.emb, tags, probs }
    }

    /// Mutable access to the embedding tables for the trainer.
    pub(crate) fn tables_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.word_table, &mut self.sub_table)
    }

    /// Embedding dimension shortcut used by the trainer.
    pub(crate) fn embed_dim(&self) -> usize {
        self.cfg.embed_dim
    }

    /// Context half-window shortcut used by the trainer.
    pub(crate) fn window(&self) -> usize {
        self.cfg.window
    }
}

impl TokenEncoder {
    /// Serializes the trained encoder (config, embedding tables, trunk,
    /// head, transition model) into a compact binary blob.
    pub fn to_bytes(&self) -> bytes::Bytes {
        use ngl_nn::codec::{put_dense, put_f32_slice, put_matrix, put_u64};
        let mut buf = bytes::BytesMut::new();
        put_u64(&mut buf, self.cfg.features.word_buckets as u64);
        put_u64(&mut buf, self.cfg.features.sub_buckets as u64);
        put_u64(&mut buf, self.cfg.embed_dim as u64);
        put_u64(&mut buf, self.cfg.hidden_dim as u64);
        put_u64(&mut buf, self.cfg.out_dim as u64);
        put_u64(&mut buf, self.cfg.window as u64);
        put_u64(&mut buf, self.cfg.seed);
        put_matrix(&mut buf, &self.word_table);
        put_matrix(&mut buf, &self.sub_table);
        put_dense(&mut buf, &self.l1);
        put_dense(&mut buf, &self.l2);
        put_dense(&mut buf, &self.head);
        match &self.log_trans {
            Some(t) => {
                put_u64(&mut buf, 1);
                put_f32_slice(&mut buf, t);
            }
            None => put_u64(&mut buf, 0),
        }
        buf.freeze()
    }

    /// Deserializes an encoder previously written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &mut bytes::Bytes) -> Result<Self, ngl_nn::CodecError> {
        use ngl_nn::codec::{get_dense, get_f32_vec, get_matrix, get_u64, CodecError};
        let cfg = EncoderConfig {
            features: FeatureConfig {
                word_buckets: get_u64(bytes)? as usize,
                sub_buckets: get_u64(bytes)? as usize,
            },
            embed_dim: get_u64(bytes)? as usize,
            hidden_dim: get_u64(bytes)? as usize,
            out_dim: get_u64(bytes)? as usize,
            window: get_u64(bytes)? as usize,
            seed: get_u64(bytes)?,
        };
        let word_table = get_matrix(bytes)?;
        let sub_table = get_matrix(bytes)?;
        let l1 = get_dense(bytes)?;
        let l2 = get_dense(bytes)?;
        let head = get_dense(bytes)?;
        if word_table.rows() != cfg.features.word_buckets
            || word_table.cols() != cfg.embed_dim
            || sub_table.rows() != cfg.features.sub_buckets
            || head.out_dim() != BioTag::COUNT
        {
            return Err(CodecError::Invalid("encoder shapes"));
        }
        let log_trans = match get_u64(bytes)? {
            0 => None,
            1 => {
                let t = get_f32_vec(bytes)?;
                if t.len() != BioTag::COUNT * BioTag::COUNT {
                    return Err(CodecError::Invalid("transition shape"));
                }
                Some(t)
            }
            _ => return Err(CodecError::Invalid("transition tag")),
        };
        Ok(Self { cfg, word_table, sub_table, l1, l2, head, log_trans })
    }
}

/// Viterbi decode over per-token tag probabilities plus a transition
/// log-probability matrix.
fn viterbi_decode(probs: &Matrix, log_trans: &[f32]) -> Vec<BioTag> {
    let n = probs.rows();
    let t = BioTag::COUNT;
    if n == 0 {
        return Vec::new();
    }
    let logp = |r: usize, c: usize| probs.get(r, c).max(1e-9).ln();
    let mut delta = vec![[f32::NEG_INFINITY; BioTag::COUNT]; n];
    let mut back = vec![[0usize; BioTag::COUNT]; n];
    for c in 0..t {
        delta[0][c] = logp(0, c);
    }
    for i in 1..n {
        for to in 0..t {
            let mut best = (0usize, f32::NEG_INFINITY);
            for from in 0..t {
                let s = delta[i - 1][from] + log_trans[from * t + to];
                if s > best.1 {
                    best = (from, s);
                }
            }
            delta[i][to] = best.1 + logp(i, to);
            back[i][to] = best.0;
        }
    }
    let mut last = (0usize, f32::NEG_INFINITY);
    for c in 0..t {
        if delta[n - 1][c] > last.1 {
            last = (c, delta[n - 1][c]);
        }
    }
    let mut path = vec![0usize; n];
    path[n - 1] = last.0;
    for i in (1..n).rev() {
        path[i - 1] = back[i][path[i]];
    }
    path.into_iter().map(BioTag::from_index).collect()
}

/// Builds a throwaway [`Token`] for shape extraction from a bare string.
fn pseudo_token(text: &str) -> Token {
    let kind = if text.starts_with('#') && text.len() > 1 {
        TokenKind::Hashtag
    } else if text.starts_with('@') && text.len() > 1 {
        TokenKind::Mention
    } else if text.starts_with("http") || text.starts_with("www.") {
        TokenKind::Url
    } else if text.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        TokenKind::Number
    } else if text.chars().any(|c| c.is_alphanumeric()) {
        TokenKind::Word
    } else {
        TokenKind::Punct
    };
    Token { text: text.to_string(), start: 0, kind }
}

impl crate::SequenceTagger for TokenEncoder {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        self.encode_sentence(tokens).tags
    }
}

impl crate::ContextualTagger for TokenEncoder {
    fn dim(&self) -> usize {
        self.cfg.out_dim
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        self.encode_sentence(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EncoderConfig {
        EncoderConfig {
            features: FeatureConfig { word_buckets: 512, sub_buckets: 512 },
            embed_dim: 8,
            hidden_dim: 16,
            out_dim: 12,
            window: 2,
            seed: 3,
        }
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn encode_shapes_are_consistent() {
        let enc = TokenEncoder::new(small_cfg());
        let out = enc.encode_sentence(&toks(&["gov", "Beshear", "said", "stay", "home"]));
        assert_eq!(out.embeddings.rows(), 5);
        assert_eq!(out.embeddings.cols(), 12);
        assert_eq!(out.tags.len(), 5);
        assert_eq!(out.probs.cols(), BioTag::COUNT);
    }

    #[test]
    fn empty_sentence_is_safe() {
        let enc = TokenEncoder::new(small_cfg());
        let out = enc.encode_sentence(&[]);
        assert_eq!(out.embeddings.rows(), 0);
        assert!(out.tags.is_empty());
    }

    #[test]
    fn degenerate_tokens_never_panic() {
        let enc = TokenEncoder::new(small_cfg());
        // Empty-string and all-whitespace tokens (a broken upstream
        // tokenizer) must still produce one finite row per token.
        let weird = toks(&["", "   ", "\t", "ok"]);
        let out = enc.encode_sentence(&weird);
        assert_eq!(out.embeddings.rows(), 4);
        assert_eq!(out.tags.len(), 4);
        assert!(out.embeddings.as_slice().iter().all(|v| v.is_finite()));

        // A single absurdly long token (oversized-tweet fault) encodes
        // in bounded shape without panicking.
        let giant = vec!["x".repeat(50_000)];
        let out = enc.encode_sentence(&giant);
        assert_eq!(out.embeddings.rows(), 1);
        assert!(out.embeddings.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn embeddings_depend_on_context() {
        let enc = TokenEncoder::new(small_cfg());
        let a = enc.encode_sentence(&toks(&["in", "washington", "today"]));
        let b = enc.encode_sentence(&toks(&["president", "washington", "said"]));
        // Same token, different contexts ⇒ different contextual embedding.
        let ea = a.embeddings.row(1);
        let eb = b.embeddings.row(1);
        assert_ne!(ea, eb);
    }

    #[test]
    fn embeddings_identical_for_identical_contexts() {
        let enc = TokenEncoder::new(small_cfg());
        let s = toks(&["cases", "in", "Italy", "rising", "fast"]);
        let a = enc.encode_sentence(&s);
        let b = enc.encode_sentence(&s);
        assert_eq!(a.embeddings, b.embeddings);
        assert_eq!(a.tags, b.tags);
    }

    #[test]
    fn same_seed_same_model() {
        let a = TokenEncoder::new(small_cfg());
        let b = TokenEncoder::new(small_cfg());
        let s = toks(&["stay", "safe"]);
        assert_eq!(a.encode_sentence(&s).probs, b.encode_sentence(&s).probs);
    }

    #[test]
    fn param_count_is_plausible() {
        let enc = TokenEncoder::new(small_cfg());
        // Tables dominate: 2 × 512 × 8 = 8192 params plus the trunk.
        assert!(enc.param_count() > 8_000);
    }
}
