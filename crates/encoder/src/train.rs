//! Fine-tuning loop for the Local NER encoder.
//!
//! Mirrors the paper's setup (§IV): train end-to-end on an annotated
//! corpus with BIO targets, Adam on the dense trunk, and keep the best
//! dev-loss checkpoint with early stopping.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_corpus::Dataset;
use ngl_nn::layers::Relu;
use ngl_nn::loss::SoftmaxCrossEntropy;
use ngl_nn::{Adam, AdamState, EarlyStopping, Matrix};
use ngl_text::encode_bio;

use crate::model::TokenEncoder;

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience (epochs without dev-loss improvement).
    pub patience: usize,
    /// Adam learning rate for the dense trunk + head.
    pub lr_dense: f32,
    /// SGD learning rate for the sparse embedding tables.
    pub lr_table: f32,
    /// Fraction of sentences held out as the dev split.
    pub dev_frac: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            patience: 3,
            lr_dense: 2e-3,
            lr_table: 0.05,
            dev_frac: 0.1,
            seed: 17,
        }
    }
}

/// What the training run did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainStats {
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// Mean train loss of the final epoch.
    pub final_train_loss: f32,
    /// Best dev loss.
    pub best_dev_loss: f32,
    /// Dev token accuracy at the best checkpoint.
    pub dev_token_accuracy: f32,
}

/// One annotated sentence prepared for the trainer.
struct Example {
    tokens: Vec<String>,
    targets: Vec<usize>,
}

fn prepare(dataset: &Dataset) -> Vec<Example> {
    dataset
        .tweets
        .iter()
        .filter(|t| !t.tokens.is_empty())
        .map(|t| {
            let tags = encode_bio(t.tokens.len(), &t.gold_spans());
            Example {
                tokens: t.tokens.clone(),
                targets: tags.iter().map(|t| t.index()).collect(),
            }
        })
        .collect()
}

/// Trains `encoder` on `dataset`, returning run statistics. Keeps the
/// best dev-loss snapshot of the model.
pub fn train_encoder(
    encoder: &mut TokenEncoder,
    dataset: &Dataset,
    cfg: &TrainConfig,
) -> TrainStats {
    let mut examples = prepare(dataset);
    assert!(examples.len() >= 10, "training set too small");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    examples.shuffle(&mut rng);
    let n_dev = ((examples.len() as f64) * cfg.dev_frac).round().max(1.0) as usize;
    let (dev, train) = examples.split_at(n_dev);

    let mut adam = Adam::new(cfg.lr_dense).with_weight_decay(1e-5);
    // One Adam state per dense tensor: l1.w, l1.b, l2.w, l2.b, head.w, head.b.
    let mut states: Vec<AdamState> = {
        let dims = [
            encoder.l1.in_dim() * encoder.l1.out_dim(),
            encoder.l1.out_dim(),
            encoder.l2.in_dim() * encoder.l2.out_dim(),
            encoder.l2.out_dim(),
            encoder.head.in_dim() * encoder.head.out_dim(),
            encoder.head.out_dim(),
        ];
        dims.iter().map(|&d| AdamState::new(d)).collect()
    };

    // Estimate BIO transition log-probabilities from the gold bigrams of
    // the training split (add-one smoothed) and install them so decoding
    // is sequence-consistent.
    {
        let t = ngl_text::BioTag::COUNT;
        let mut counts = vec![1.0f32; t * t];
        for ex in train {
            for w in ex.targets.windows(2) {
                counts[w[0] * t + w[1]] += 1.0;
            }
        }
        let mut log_trans = vec![0.0f32; t * t];
        for from in 0..t {
            let row_sum: f32 = counts[from * t..(from + 1) * t].iter().sum();
            for to in 0..t {
                log_trans[from * t + to] = (counts[from * t + to] / row_sum).ln();
            }
        }
        encoder.set_transitions(log_trans);
    }

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut es = EarlyStopping::new(cfg.patience);
    let mut best = encoder.clone();
    let mut final_train_loss = f32::INFINITY;
    let mut epochs_run = 0;

    for _epoch in 0..cfg.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for &i in &order {
            total += train_sentence(encoder, &train[i], &mut adam, &mut states, cfg.lr_table);
        }
        final_train_loss = total / train.len().max(1) as f32;
        let dev_loss = eval_loss(encoder, dev);
        if es.record(dev_loss) {
            best = encoder.clone();
        }
        if es.should_stop() {
            break;
        }
    }
    *encoder = best;

    TrainStats {
        epochs_run,
        final_train_loss,
        best_dev_loss: es.best(),
        dev_token_accuracy: token_accuracy(encoder, dev),
    }
}

fn train_sentence(
    encoder: &mut TokenEncoder,
    ex: &Example,
    adam: &mut Adam,
    states: &mut [AdamState],
    lr_table: f32,
) -> f32 {
    let cache = encoder.forward(&ex.tokens);
    let sce = SoftmaxCrossEntropy;
    let (loss, probs) = sce.forward(&cache.logits, &ex.targets);
    let dlogits = sce.backward(&probs, &ex.targets);

    encoder.l1.zero_grad();
    encoder.l2.zero_grad();
    encoder.head.zero_grad();

    let demb = encoder.head.backward(&cache.emb, &dlogits);
    let dh = encoder.l2.backward(&cache.h, &demb);
    let dpre1 = Relu.backward(&cache.pre1, &dh);
    let dctx = encoder.l1.backward(&cache.ctx, &dpre1);

    // Dense updates.
    adam.tick();
    let mut s = 0;
    for layer in [&mut encoder.l1, &mut encoder.l2, &mut encoder.head] {
        for (param, grad) in layer.params_and_grads() {
            adam.step(param, grad, &mut states[s]);
            s += 1;
        }
    }

    // Distribute the context gradient back onto base token embeddings.
    let n = ex.tokens.len();
    let d = encoder.embed_dim();
    let w = encoder.window();
    let mut dbase = Matrix::zeros(n, d);
    for i in 0..n {
        let row = dctx.row(i);
        // Self slice.
        for c in 0..d {
            dbase.row_mut(i)[c] += row[d + c];
        }
        // Left-window mean: ctx[i][0..d] came from base[lo..i].
        let lo = i.saturating_sub(w);
        if lo < i {
            let cnt = (i - lo) as f32;
            for j in lo..i {
                for c in 0..d {
                    dbase.row_mut(j)[c] += row[c] / cnt;
                }
            }
        }
        // Right-window mean: ctx[i][2d..3d] came from base[i+1..hi].
        let hi = (i + 1 + w).min(n);
        if i + 1 < hi {
            let cnt = (hi - i - 1) as f32;
            for j in i + 1..hi {
                for c in 0..d {
                    dbase.row_mut(j)[c] += row[2 * d + c] / cnt;
                }
            }
        }
    }

    // Sparse SGD on the hashed tables. base = word_row + mean(sub_rows),
    // so the word row takes the full gradient and each trigram row 1/k.
    let (word_table, sub_table) = encoder.tables_mut();
    for i in 0..n {
        let g = dbase.row(i);
        let wr = cache.word_rows[i];
        for (p, &gi) in word_table.row_mut(wr).iter_mut().zip(g) {
            *p -= lr_table * gi;
        }
        let k = cache.sub_rows[i].len() as f32;
        for &sr in &cache.sub_rows[i] {
            for (p, &gi) in sub_table.row_mut(sr).iter_mut().zip(g) {
                *p -= lr_table * gi / k;
            }
        }
    }
    loss
}

fn eval_loss(encoder: &TokenEncoder, dev: &[Example]) -> f32 {
    let sce = SoftmaxCrossEntropy;
    let mut total = 0.0;
    for ex in dev {
        let cache = encoder.forward(&ex.tokens);
        total += sce.forward(&cache.logits, &ex.targets).0;
    }
    total / dev.len().max(1) as f32
}

fn token_accuracy(encoder: &TokenEncoder, dev: &[Example]) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for ex in dev {
        let out = encoder.encode_sentence(&ex.tokens);
        for (tag, &target) in out.tags.iter().zip(&ex.targets) {
            total += 1;
            if tag.index() == target {
                correct += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    correct as f32 / total as f32
}

/// Convenience: tags every tweet of a dataset, returning decoded spans.
pub fn tag_dataset(
    tagger: &dyn crate::SequenceTagger,
    dataset: &Dataset,
) -> Vec<Vec<ngl_text::Span>> {
    dataset
        .tweets
        .iter()
        .map(|t| ngl_text::decode_bio(&tagger.tag(&t.tokens)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EncoderConfig;
    use crate::features::FeatureConfig;
    use ngl_corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};

    fn tiny_setup() -> (TokenEncoder, Dataset, Dataset) {
        let kb = KnowledgeBase::build(11, 60);
        let train = Dataset::generate(
            &DatasetSpec::streaming("train", 500, vec![Topic::Health], 21),
            &kb,
        );
        let test = Dataset::generate(
            &DatasetSpec::streaming("test", 120, vec![Topic::Health], 22),
            &kb,
        );
        let enc = TokenEncoder::new(EncoderConfig {
            features: FeatureConfig { word_buckets: 2048, sub_buckets: 2048 },
            embed_dim: 16,
            hidden_dim: 32,
            out_dim: 16,
            window: 2,
            seed: 5,
        });
        (enc, train, test)
    }

    #[test]
    fn training_reduces_loss_and_learns_tags() {
        let (mut enc, train, test) = tiny_setup();
        let before = {
            let exs = prepare(&test);
            eval_loss(&enc, &exs)
        };
        let stats = train_encoder(
            &mut enc,
            &train,
            &TrainConfig { epochs: 6, ..TrainConfig::default() },
        );
        assert!(stats.best_dev_loss < before, "no improvement: {stats:?}");
        assert!(
            stats.dev_token_accuracy > 0.85,
            "dev accuracy {}",
            stats.dev_token_accuracy
        );
        // The model should now find at least some entities on held-out
        // tweets from the same stream.
        let exs = prepare(&test);
        let after = eval_loss(&enc, &exs);
        assert!(after < before, "test loss {after} vs untrained {before}");
        let spans: usize = test
            .tweets
            .iter()
            .map(|t| ngl_text::decode_bio(&enc.encode_sentence(&t.tokens).tags).len())
            .sum();
        assert!(spans > 20, "tagger finds almost nothing: {spans} spans");
    }

    #[test]
    fn trained_tagger_is_imperfect_by_design() {
        // The whole premise of Global NER is that Local NER misses
        // mentions; verify the trained encoder is *not* perfect.
        let (mut enc, train, test) = tiny_setup();
        train_encoder(&mut enc, &train, &TrainConfig { epochs: 5, ..TrainConfig::default() });
        let mut missed = 0usize;
        let mut gold_total = 0usize;
        for t in &test.tweets {
            let pred = ngl_text::decode_bio(&enc.encode_sentence(&t.tokens).tags);
            for g in t.gold_spans() {
                gold_total += 1;
                if !pred.iter().any(|p| p.matches(&g)) {
                    missed += 1;
                }
            }
        }
        assert!(gold_total > 50);
        assert!(missed > 0, "local NER is unrealistically perfect");
    }
}
