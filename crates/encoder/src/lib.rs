//! # ngl-encoder
//!
//! The **Local NER** substrate (§IV). The paper instantiates Local NER
//! with BERTweet fine-tuned on WNUT17; shipping a 130M-parameter
//! transformer is impossible here, so this crate implements a
//! from-scratch trainable contextual token encoder with the same *role*
//! and the same observable behaviour:
//!
//! * it maps each sentence token to a d-dimensional **entity-aware
//!   contextual embedding** (the representation the Phrase Embedder
//!   consumes, §V-B);
//! * a token-classification head emits BIO(2L+1) tags that seed the
//!   candidate surface forms;
//! * because its receptive field is a small context window over a noisy
//!   stream, it exhibits the exact failure modes the paper builds Global
//!   NER to fix — inconsistent detection of the same surface across
//!   contexts, and mistyping of rare types.
//!
//! Architecture: hashed word + character-trigram embeddings with
//! orthographic shape features, a windowed context concatenation, a
//! two-layer MLP trunk producing the contextual embedding, and a dense
//! softmax head. Trained end-to-end with cross-entropy (Adam on the
//! dense trunk, sparse SGD on the embedding tables).

#![allow(clippy::needless_range_loop)] // index loops are idiomatic in the numeric kernels

#![forbid(unsafe_code)]

pub mod features;
pub mod model;
pub mod train;

pub use features::{hash_token, subword_ngrams, FeatureConfig};
pub use model::{EncoderConfig, SentenceEncoding, TokenEncoder};
pub use train::{train_encoder, TrainConfig, TrainStats};

use ngl_text::BioTag;

/// Anything that can tag a tokenized sentence with BIO labels. All local
/// NER systems (this encoder, the CRF baseline, the domain-shifted
/// BERT-NER stand-in) implement this, which is what lets the Globalizer
/// pipeline treat Local NER as a pluggable component (§III: "Local NER
/// is decoupled from Global NER").
pub trait SequenceTagger {
    /// Tags one sentence.
    fn tag(&self, tokens: &[String]) -> Vec<BioTag>;
}

/// A tagger that can also expose contextual token embeddings — the
/// contract the Global NER stage requires from its local component.
pub trait ContextualTagger: SequenceTagger {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Tags a sentence *and* returns its token embeddings.
    fn encode(&self, tokens: &[String]) -> SentenceEncoding;
}
