//! Training-data mining on a D5-style stream (§VI).
//!
//! The supervised Global NER components need mention sets per candidate.
//! Following the paper: the annotated entities of D5 give the entity
//! candidates; running the EMD-Globalizer-style extraction (Local NER →
//! CTrie scan) and keeping detections that match no gold mention yields
//! the *seed non-entities*. From the mention sets this module mines
//! triplets (anchor/positive/negative with surface-form-aware negative
//! selection and augmentation) and soft-NN records, plus the
//! ground-truth candidate clusters that train the Entity Classifier.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use ngl_corpus::{Dataset, EntityId};
use ngl_ctrie::CTrie;
use ngl_encoder::ContextualTagger;
use ngl_nn::Matrix;
use ngl_text::{decode_bio, EntityType, Span};

use crate::phrase::{PhraseEmbedder, SoftNnExample, TripletExample};

/// Identity of a mined candidate: a gold entity or a non-entity surface.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CandidateKey {
    /// A gold-annotated entity.
    Entity(EntityId),
    /// A seed non-entity, keyed by its folded surface form.
    NonEntity(String),
}

/// One mined candidate with its pooled mention inputs.
#[derive(Debug, Clone)]
pub struct MinedCandidate {
    /// Candidate identity.
    pub key: CandidateKey,
    /// Folded surface form the mentions share.
    pub surface: String,
    /// Entity type (`None` for non-entities).
    pub ty: Option<EntityType>,
    /// Pooled (pre-embedder) mention vectors.
    pub pooled_mentions: Vec<Vec<f32>>,
}

/// All mentions of one surface form with their gold classes — the raw
/// material for cluster-consistent classifier training.
#[derive(Debug, Clone)]
pub struct SurfaceMentions {
    /// Folded surface form.
    pub surface: String,
    /// `(pooled embedding, class)` per mention; class is
    /// [`EntityType::class_index`] (L = non-entity).
    pub mentions: Vec<(Vec<f32>, usize)>,
}

/// The full mining result.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// All candidates with at least one mention.
    pub candidates: Vec<MinedCandidate>,
    /// Mentions grouped by surface form (cluster-consistent training).
    pub by_surface: Vec<SurfaceMentions>,
}

impl MiningResult {
    /// Total mentions across candidates.
    pub fn total_mentions(&self) -> usize {
        self.candidates.iter().map(|c| c.pooled_mentions.len()).sum()
    }

    /// Number of entity (vs non-entity) candidates.
    pub fn entity_candidates(&self) -> usize {
        self.candidates.iter().filter(|c| c.ty.is_some()).count()
    }
}

/// Runs Local NER + gold seeding + CTrie extraction over the annotated
/// training stream and groups pooled mentions by candidate.
pub fn mine_candidates<T: ContextualTagger>(local: &T, dataset: &Dataset) -> MiningResult {
    // Pass 1: encode all tweets, seed the CTrie from gold surfaces and
    // from local detections (the latter supply non-entity surfaces).
    let mut ctrie = CTrie::new();
    let mut encodings: Vec<Matrix> = Vec::with_capacity(dataset.tweets.len());
    let mut local_spans: Vec<Vec<Span>> = Vec::with_capacity(dataset.tweets.len());
    for tweet in &dataset.tweets {
        let enc = local.encode(&tweet.tokens);
        let spans = decode_bio(&enc.tags);
        for s in &spans {
            let surf: Vec<&str> =
                tweet.tokens[s.start..s.end].iter().map(String::as_str).collect();
            // Same stopword filter the pipeline applies at seeding time,
            // so training-time non-entity candidates match what the
            // classifier will see in deployment.
            if !ngl_text::is_stopword_surface(&surf) {
                ctrie.insert(&surf);
            }
        }
        for g in &tweet.gold {
            let surf: Vec<&str> = tweet.tokens[g.span.start..g.span.end]
                .iter()
                .map(String::as_str)
                .collect();
            ctrie.insert(&surf);
        }
        encodings.push(enc.embeddings);
        local_spans.push(spans);
    }

    // Pass 2: extract every mention of every seeded surface, pool it,
    // and attribute it to a candidate.
    let mut by_key: HashMap<CandidateKey, MinedCandidate> = HashMap::new();
    let mut by_surface: HashMap<String, Vec<(Vec<f32>, usize)>> = HashMap::new();
    for (ti, tweet) in dataset.tweets.iter().enumerate() {
        let occs = ctrie.extract_mentions(&tweet.tokens, 4);
        for occ in occs {
            let probe = Span::new(occ.start, occ.end, EntityType::Person);
            let pooled = PhraseEmbedder::pool(&encodings[ti], &probe);
            // Exact gold match → that entity; any overlap → ambiguous,
            // skipped; no overlap → non-entity usage of the surface.
            let exact = tweet
                .gold
                .iter()
                .find(|g| g.span.start == occ.start && g.span.end == occ.end);
            let overlap = tweet.gold.iter().any(|g| g.span.overlaps(&probe));
            let (key, ty) = match exact {
                Some(g) => (CandidateKey::Entity(g.entity), Some(g.span.ty)),
                None if overlap => continue,
                None => (CandidateKey::NonEntity(occ.surface.clone()), None),
            };
            by_surface
                .entry(occ.surface.clone())
                .or_default()
                .push((pooled.clone(), EntityType::class_index(ty)));
            by_key
                .entry(key.clone())
                .or_insert_with(|| MinedCandidate {
                    key,
                    surface: occ.surface.clone(),
                    ty,
                    pooled_mentions: Vec::new(),
                })
                .pooled_mentions
                .push(pooled);
        }
    }
    let mut candidates: Vec<MinedCandidate> = by_key.into_values().collect();
    candidates.sort_by(|a, b| a.key.cmp(&b.key));
    let mut by_surface: Vec<SurfaceMentions> = by_surface
        .into_iter()
        .map(|(surface, mentions)| SurfaceMentions { surface, mentions })
        .collect();
    by_surface.sort_by(|a, b| a.surface.cmp(&b.surface));
    MiningResult { candidates, by_surface }
}

/// Mention-triplet mining (§VI "Mention Triplet Mining").
///
/// For each anchor mention: a positive from the same candidate's mention
/// set; a negative from a candidate *sharing the surface form* but of a
/// different type when one exists, otherwise augmented from a random
/// different-type candidate. Capped at `max_triplets`.
pub fn mine_triplets(
    mining: &MiningResult,
    max_triplets: usize,
    seed: u64,
) -> Vec<TripletExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cands = &mining.candidates;

    // Index: surface → candidate indices sharing it.
    let mut by_surface: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, c) in cands.iter().enumerate() {
        by_surface.entry(c.surface.as_str()).or_default().push(i);
    }

    // Index: type class → candidate indices (for type-level positives
    // and augmentation negatives).
    let mut by_type: HashMap<Option<EntityType>, Vec<usize>> = HashMap::new();
    for (i, c) in cands.iter().enumerate() {
        if !c.pooled_mentions.is_empty() {
            by_type.entry(c.ty).or_default().push(i);
        }
    }

    let mut triplets = Vec::new();
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.shuffle(&mut rng);
    // Visit candidates round-robin until the cap is reached; the visit
    // budget bounds the loop when few candidates are triplet-eligible.
    let visit_budget = order.len().max(1) * 512;
    'outer: for &ci in order.iter().cycle().take(visit_budget) {
        let c = &cands[ci];
        if c.pooled_mentions.is_empty() {
            continue;
        }
        // Non-entities are contextually heterogeneous — forcing them
        // into one margin-separated manifold fights the geometry. They
        // participate as negatives only.
        if c.ty.is_none() {
            continue;
        }
        // Negative source: same-surface different-type candidate first.
        let same_surface_neg: Vec<usize> = by_surface[c.surface.as_str()]
            .iter()
            .copied()
            .filter(|&j| j != ci && cands[j].ty != c.ty && !cands[j].pooled_mentions.is_empty())
            .collect();
        let neg_candidate = if !same_surface_neg.is_empty() {
            same_surface_neg[rng.gen_range(0..same_surface_neg.len())]
        } else {
            // Augmentation: any candidate of a different type.
            let mut tries = 0;
            loop {
                let j = rng.gen_range(0..cands.len());
                if cands[j].ty != c.ty && !cands[j].pooled_mentions.is_empty() {
                    break j;
                }
                tries += 1;
                if tries > 50 {
                    continue 'outer;
                }
            }
        };
        let a = rng.gen_range(0..c.pooled_mentions.len());
        // Positive: another mention of the same candidate when it has
        // one; otherwise (and half the time regardless) a mention of a
        // *different candidate of the same type*. §V-B wants mentions of
        // the same type to congregate in one manifold, so type-level
        // positives are part of the mining.
        let positive = if c.pooled_mentions.len() >= 2 && rng.gen_bool(0.5) {
            let mut p = rng.gen_range(0..c.pooled_mentions.len());
            if p == a {
                p = (p + 1) % c.pooled_mentions.len();
            }
            c.pooled_mentions[p].clone()
        } else {
            let peers = &by_type[&c.ty];
            if peers.len() < 2 && c.pooled_mentions.len() < 2 {
                continue;
            }
            let mut pj = peers[rng.gen_range(0..peers.len())];
            let mut tries = 0;
            while pj == ci {
                pj = peers[rng.gen_range(0..peers.len())];
                tries += 1;
                if tries > 20 {
                    break;
                }
            }
            if pj == ci {
                if c.pooled_mentions.len() < 2 {
                    continue;
                }
                let mut p = rng.gen_range(0..c.pooled_mentions.len());
                if p == a {
                    p = (p + 1) % c.pooled_mentions.len();
                }
                c.pooled_mentions[p].clone()
            } else {
                let pc = &cands[pj];
                pc.pooled_mentions[rng.gen_range(0..pc.pooled_mentions.len())].clone()
            }
        };
        let nc = &cands[neg_candidate];
        let n = rng.gen_range(0..nc.pooled_mentions.len());
        triplets.push(TripletExample {
            anchor: c.pooled_mentions[a].clone(),
            positive,
            negative: nc.pooled_mentions[n].clone(),
        });
        if triplets.len() >= max_triplets {
            break;
        }
    }
    triplets
}

/// Mention-cluster mining for the soft-NN objective (§VI "Mention
/// Cluster Mining"): every mention becomes a record labelled with its
/// type manifold (the L+1 classes), capped at `max_records`.
pub fn mine_soft_nn(
    mining: &MiningResult,
    max_records: usize,
    seed: u64,
) -> Vec<SoftNnExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for c in &mining.candidates {
        let class = EntityType::class_index(c.ty);
        for m in &c.pooled_mentions {
            records.push(SoftNnExample { pooled: m.clone(), class });
        }
    }
    records.shuffle(&mut rng);
    records.truncate(max_records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_corpus::{DatasetSpec, KnowledgeBase, Topic};
    use ngl_encoder::{EncoderConfig, TokenEncoder};

    fn setup() -> (TokenEncoder, Dataset) {
        let kb = KnowledgeBase::build(19, 50);
        let d5 = Dataset::generate(
            &DatasetSpec::streaming("mini-d5", 250, vec![Topic::Health], 77),
            &kb,
        );
        let enc = TokenEncoder::new(EncoderConfig {
            embed_dim: 12,
            hidden_dim: 16,
            out_dim: 12,
            seed: 8,
            ..EncoderConfig::default()
        });
        (enc, d5)
    }

    #[test]
    fn mining_produces_entity_and_nonentity_candidates() {
        let (enc, d5) = setup();
        let res = mine_candidates(&enc, &d5);
        assert!(res.entity_candidates() > 10, "{} entities", res.entity_candidates());
        assert!(res.total_mentions() > 100);
        // The ambiguous "us"-style usages should surface non-entities if
        // local NER produced any false positives; at minimum the
        // candidate list is non-empty and well-formed.
        for c in &res.candidates {
            assert!(!c.pooled_mentions.is_empty());
            assert!(!c.surface.is_empty());
        }
    }

    #[test]
    fn mined_mentions_share_dimension() {
        let (enc, d5) = setup();
        let res = mine_candidates(&enc, &d5);
        for c in &res.candidates {
            for m in &c.pooled_mentions {
                assert_eq!(m.len(), 12);
            }
        }
    }

    #[test]
    fn triplets_respect_type_constraint() {
        let (enc, d5) = setup();
        let res = mine_candidates(&enc, &d5);
        let triplets = mine_triplets(&res, 500, 3);
        assert!(triplets.len() >= 100, "only {} triplets", triplets.len());
        for t in &triplets {
            assert_eq!(t.anchor.len(), 12);
            assert_eq!(t.positive.len(), 12);
            assert_eq!(t.negative.len(), 12);
        }
    }

    #[test]
    fn triplet_cap_is_respected() {
        let (enc, d5) = setup();
        let res = mine_candidates(&enc, &d5);
        assert!(mine_triplets(&res, 50, 3).len() <= 50);
    }

    #[test]
    fn soft_nn_records_are_type_labelled() {
        let (enc, d5) = setup();
        let res = mine_candidates(&enc, &d5);
        let recs = mine_soft_nn(&res, 400, 4);
        assert!(!recs.is_empty());
        assert!(recs.len() <= 400);
        for r in &recs {
            assert!(r.class <= EntityType::COUNT);
        }
        // More than one class must be represented.
        let classes: std::collections::HashSet<usize> =
            recs.iter().map(|r| r.class).collect();
        assert!(classes.len() >= 2, "classes {classes:?}");
    }

    #[test]
    fn mining_is_deterministic() {
        let (enc, d5) = setup();
        let a = mine_candidates(&enc, &d5);
        let b = mine_candidates(&enc, &d5);
        assert_eq!(a.candidates.len(), b.candidates.len());
        assert_eq!(
            mine_triplets(&a, 200, 9).len(),
            mine_triplets(&b, 200, 9).len()
        );
    }
}
