//! Durable stream state on top of `ngl-store`: delta checkpointing
//! via a typed write-ahead log, periodic full snapshots, and the
//! cold-surface spill pool backing [`RetentionPolicy::SpillCold`].
//!
//! ## Delta checkpointing model
//!
//! The WAL records the pipeline's *logical operations* — batch inputs
//! and finalize marks — rather than physical state diffs. Because the
//! pipeline is deterministic for fixed models (the invariant pinned by
//! the `parallel_equivalence` suite), replaying the logged operations
//! from the last snapshot reconstructs state **bitwise identical** to
//! the pre-crash run over the surviving prefix; each finalize mark
//! additionally carries a [`NerGlobalizer::state_digest`] so recovery
//! proves it reconverged instead of assuming it. Per-batch WAL cost is
//! proportional to the *new inputs* of that batch (plus a constant-size
//! finalize mark), while a full snapshot grows with the whole stream —
//! which is what makes delta checkpointing sublinear per batch.
//!
//! Every `checkpoint_every` finalizes, [`DurableGlobalizer`] writes a
//! full snapshot (the canonical checkpoint bytes of
//! [`NerGlobalizer::export_state_bytes`]) and compacts: the WAL rotates
//! and drops segments at or below the snapshot, and older snapshots are
//! pruned (the newest two are kept — the latest plus one fallback in
//! case the latest is found corrupt on open). Snapshots are sequenced
//! by the global **operation counter** (`op_seq`, bumped once per batch
//! and once per finalize); replay skips WAL records with
//! `op_seq <= snapshot.seq`, so a crash *between* snapshot write and
//! WAL compaction never double-applies an operation.
//!
//! ## Recovery
//!
//! [`DurableGlobalizer::open`] = newest valid snapshot + WAL replay.
//! Torn or bit-flipped bytes at the very tail of the final WAL segment
//! are tolerated (the write that was in flight when the process died);
//! the replay stops at the last checksum-valid record, yielding exactly
//! the state of a clean run over the surviving operations. Corruption
//! anywhere earlier is a hard error — silently skipping interior
//! records would violate prefix consistency.
//!
//! ## Cold-surface spill
//!
//! [`SpillPool`] serializes whole surface entries (mentions + their
//! cached span embeddings) into an `ngl_store::SpillFile`. Spilled
//! entries are transient per-process state — the pool is rebuilt by
//! replay/rehydration, never recovered from disk — so the pool resets
//! whenever state is rebuilt or snapshotted and re-spills afterwards,
//! which doubles as spill-file compaction.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bytes::{Bytes, BytesMut};

use ngl_encoder::ContextualTagger;
use ngl_nn::codec::{get_quantized_f32_vec, get_u64, put_quantized_f32_slice, put_u64, CodecError};
use ngl_store::{SnapshotStore, SpillFile, StoreError, Wal};

use crate::bases::SurfaceEntry;
use crate::checkpoint::{get_entry, get_str, put_entry, put_str, CK_V4};
use crate::persist::PersistError;
use crate::pipeline::{BatchOutput, BatchReport, NerGlobalizer, RetentionPolicy};
use ngl_runtime::TaskError;
use ngl_text::Span;

/// Spill-file and mention-cache entry: `(tweet, start, end)` ↦ span
/// embedding.
type CacheEntry = ((usize, usize, usize), Vec<f32>);

/// Env var overriding the spill file's read-side page-cache budget in
/// bytes (`0` disables the cache).
pub const SPILL_CACHE_ENV: &str = "NGL_SPILL_CACHE_BYTES";

// ---- spill pool --------------------------------------------------------

/// Where one spilled surface lives inside the spill file.
#[derive(Debug, Clone, Copy)]
struct SpillSlot {
    offset: u64,
    bytes: u64,
}

/// An on-disk index of cold surface entries (see the module docs).
/// Entries are keyed by surface form; the in-memory index maps each to
/// a checksummed extent of the backing [`SpillFile`].
pub struct SpillPool {
    file: SpillFile,
    index: BTreeMap<String, SpillSlot>,
    /// `(surface, payload bytes)` spilled since the last
    /// [`Self::take_spill_log`] drain.
    spill_log: Vec<(String, u64)>,
}

impl SpillPool {
    /// Opens (and truncates) the spill file at `path`. Spilled entries
    /// never outlive the process, so an existing file's contents are
    /// always stale.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        let mut file = SpillFile::open(path)?;
        // Read-side page-cache budget: `NGL_SPILL_CACHE_BYTES=0`
        // disables caching, unset keeps the ngl-store default.
        if let Ok(raw) = std::env::var(SPILL_CACHE_ENV) {
            if let Ok(bytes) = raw.trim().parse::<usize>() {
                file.set_page_cache_budget(bytes);
            }
        }
        Ok(Self { file, index: BTreeMap::new(), spill_log: Vec::new() })
    }

    /// `(hits, misses)` of the spill file's read-side page cache.
    pub fn page_cache_stats(&self) -> (u64, u64) {
        self.file.page_cache_stats()
    }

    /// Number of spilled surfaces.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is spilled.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `surface` is currently spilled.
    pub fn contains(&self, surface: &str) -> bool {
        self.index.contains_key(surface)
    }

    /// The spilled surfaces, in lexicographic order.
    pub fn surfaces(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }

    /// Bytes held by live spilled entries (excludes dead extents of
    /// already-rehydrated entries; those are reclaimed by the next
    /// [`Self::reset`]).
    pub fn live_bytes(&self) -> u64 {
        self.index.values().map(|s| s.bytes).sum()
    }

    /// Total size of the backing file, dead extents included.
    pub fn file_bytes(&self) -> u64 {
        self.file.len()
    }

    /// Serializes `entry` (with the given slice of its cached span
    /// embeddings) and appends it to the spill file. Returns the
    /// payload size. The caller removes the resident copy *after* this
    /// succeeds — serialize-before-remove.
    pub fn spill(
        &mut self,
        surface: &str,
        entry: &SurfaceEntry,
        cache: &[CacheEntry],
    ) -> Result<u64, StoreError> {
        let mut buf = BytesMut::new();
        put_str(&mut buf, surface);
        put_entry(&mut buf, entry, CK_V4);
        put_u64(&mut buf, cache.len() as u64);
        for ((t, s, e), emb) in cache {
            put_u64(&mut buf, *t as u64);
            put_u64(&mut buf, *s as u64);
            put_u64(&mut buf, *e as u64);
            // Lossless for pipeline-produced embeddings: they are
            // canonicalized (quantize→dequantize) at ingest.
            put_quantized_f32_slice(&mut buf, emb);
        }
        let bytes = buf.len() as u64;
        let offset = self.file.append(&buf)?;
        self.index.insert(surface.to_string(), SpillSlot { offset, bytes });
        self.spill_log.push((surface.to_string(), bytes));
        Ok(bytes)
    }

    fn decode(surface: &str, payload: &[u8]) -> Result<(SurfaceEntry, Vec<CacheEntry>), StoreError> {
        let corrupt = |_: CodecError| StoreError::Corrupt("undecodable spill payload");
        let mut buf = Bytes::from(payload.to_vec());
        let stored = get_str(&mut buf).map_err(corrupt)?;
        if stored != surface {
            return Err(StoreError::Corrupt("spill payload names a different surface"));
        }
        let entry = get_entry(&mut buf, CK_V4).map_err(corrupt)?;
        let n = get_u64(&mut buf).map_err(corrupt)? as usize;
        if n > entry.mentions.len() {
            return Err(StoreError::Corrupt("spill cache count exceeds mentions"));
        }
        let mut cache = Vec::with_capacity(n);
        for _ in 0..n {
            let t = get_u64(&mut buf).map_err(corrupt)? as usize;
            let s = get_u64(&mut buf).map_err(corrupt)? as usize;
            let e = get_u64(&mut buf).map_err(corrupt)? as usize;
            let emb = get_quantized_f32_vec(&mut buf).map_err(corrupt)?;
            cache.push(((t, s, e), emb));
        }
        Ok((entry, cache))
    }

    /// Removes `surface` from the pool and returns its entry and cached
    /// embeddings (rehydration). The index slot is dropped even when
    /// the read fails — a rotted extent can never rehydrate, so the
    /// surface restarts empty rather than erroring forever.
    pub fn take(&mut self, surface: &str) -> Result<Option<(SurfaceEntry, Vec<CacheEntry>)>, StoreError> {
        let Some(slot) = self.index.remove(surface) else {
            return Ok(None);
        };
        let payload = self.file.read(slot.offset)?;
        Self::decode(surface, &payload).map(Some)
    }

    /// Decodes `surface`'s entry without removing it from the pool
    /// (read-only emit access; no touch-stamp, no rehydration).
    pub fn peek(&mut self, surface: &str) -> Result<Option<SurfaceEntry>, StoreError> {
        let Some(slot) = self.index.get(surface).copied() else {
            return Ok(None);
        };
        let payload = self.file.read(slot.offset)?;
        Self::decode(surface, &payload).map(|(entry, _)| Some(entry))
    }

    /// Drops every spilled entry and truncates the backing file.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.index.clear();
        self.file.reset()?;
        Ok(())
    }

    /// Drains the `(surface, bytes)` log of spills since the last call.
    pub fn take_spill_log(&mut self) -> Vec<(String, u64)> {
        std::mem::take(&mut self.spill_log)
    }
}

// ---- WAL record codec --------------------------------------------------

const TAG_BATCH: u8 = 1;
const TAG_FINALIZE: u8 = 2;
const TAG_EVICT: u8 = 3;
const TAG_SPILL: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;

/// A typed WAL record. `Batch` and `Finalize` drive replay; `Evict`,
/// `Spill` and `Snapshot` are audit records — cheap summaries of
/// derived transitions that replay re-derives and (for evictions)
/// cross-checks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// The inputs of one ingested batch.
    Batch { op_seq: u64, ids: Option<Vec<u64>>, tweets: Vec<Vec<String>> },
    /// One finalize ran; carries the post-state summary + digest.
    Finalize {
        op_seq: u64,
        watermark: u64,
        first_retained: u64,
        ctrie_version: u64,
        surfaces: u64,
        mentions: u64,
        digest: u64,
    },
    /// Retention moved the eviction boundary during the finalize of
    /// `op_seq`.
    Evict { op_seq: u64, first_retained: u64 },
    /// Cold surfaces were spilled during the finalize of `op_seq`.
    Spill { op_seq: u64, count: u64, bytes: u64 },
    /// A full snapshot sequenced at `op_seq` was durably written.
    Snapshot { op_seq: u64, bytes: u64 },
}

impl WalRecord {
    fn op_seq(&self) -> u64 {
        match *self {
            WalRecord::Batch { op_seq, .. }
            | WalRecord::Finalize { op_seq, .. }
            | WalRecord::Evict { op_seq, .. }
            | WalRecord::Spill { op_seq, .. }
            | WalRecord::Snapshot { op_seq, .. } => op_seq,
        }
    }

    fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = BytesMut::new();
        let tag = match self {
            WalRecord::Batch { op_seq, ids, tweets } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, ids.is_some() as u64);
                put_u64(&mut buf, tweets.len() as u64);
                for (i, tokens) in tweets.iter().enumerate() {
                    if let Some(ids) = ids {
                        put_u64(&mut buf, ids[i]);
                    }
                    put_u64(&mut buf, tokens.len() as u64);
                    for t in tokens {
                        put_str(&mut buf, t);
                    }
                }
                TAG_BATCH
            }
            WalRecord::Finalize {
                op_seq,
                watermark,
                first_retained,
                ctrie_version,
                surfaces,
                mentions,
                digest,
            } => {
                for v in [op_seq, watermark, first_retained, ctrie_version, surfaces, mentions, digest] {
                    put_u64(&mut buf, *v);
                }
                TAG_FINALIZE
            }
            WalRecord::Evict { op_seq, first_retained } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, *first_retained);
                TAG_EVICT
            }
            WalRecord::Spill { op_seq, count, bytes } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, *count);
                put_u64(&mut buf, *bytes);
                TAG_SPILL
            }
            WalRecord::Snapshot { op_seq, bytes } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, *bytes);
                TAG_SNAPSHOT
            }
        };
        (tag, buf.to_vec())
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Self, CodecError> {
        let mut buf = Bytes::from(payload.to_vec());
        let record = match tag {
            TAG_BATCH => {
                let op_seq = get_u64(&mut buf)?;
                let has_ids = match get_u64(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::Invalid("batch has_ids flag out of range")),
                };
                let n = get_u64(&mut buf)? as usize;
                // Each tweet costs ≥ 8 bytes (its token count) on the
                // wire; bound allocation against corrupt counts.
                if n.saturating_mul(8) > buf.len() {
                    return Err(CodecError::Invalid("implausible batch size"));
                }
                let mut ids = has_ids.then(Vec::new);
                let mut tweets = Vec::with_capacity(n);
                for _ in 0..n {
                    if let Some(ids) = ids.as_mut() {
                        ids.push(get_u64(&mut buf)?);
                    }
                    let k = get_u64(&mut buf)? as usize;
                    if k.saturating_mul(8) > buf.len() {
                        return Err(CodecError::Invalid("implausible token count"));
                    }
                    let mut tokens = Vec::with_capacity(k);
                    for _ in 0..k {
                        tokens.push(get_str(&mut buf)?);
                    }
                    tweets.push(tokens);
                }
                WalRecord::Batch { op_seq, ids, tweets }
            }
            TAG_FINALIZE => WalRecord::Finalize {
                op_seq: get_u64(&mut buf)?,
                watermark: get_u64(&mut buf)?,
                first_retained: get_u64(&mut buf)?,
                ctrie_version: get_u64(&mut buf)?,
                surfaces: get_u64(&mut buf)?,
                mentions: get_u64(&mut buf)?,
                digest: get_u64(&mut buf)?,
            },
            TAG_EVICT => WalRecord::Evict {
                op_seq: get_u64(&mut buf)?,
                first_retained: get_u64(&mut buf)?,
            },
            TAG_SPILL => WalRecord::Spill {
                op_seq: get_u64(&mut buf)?,
                count: get_u64(&mut buf)?,
                bytes: get_u64(&mut buf)?,
            },
            TAG_SNAPSHOT => WalRecord::Snapshot {
                op_seq: get_u64(&mut buf)?,
                bytes: get_u64(&mut buf)?,
            },
            _ => return Err(CodecError::Invalid("unknown WAL record tag")),
        };
        if !buf.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in WAL record"));
        }
        Ok(record)
    }
}

// ---- errors ------------------------------------------------------------

/// Why a durable operation failed.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying WAL / snapshot / spill store failed.
    Store(StoreError),
    /// A WAL record or snapshot payload did not decode.
    Codec(CodecError),
    /// The snapshot checkpoint failed validation on import.
    Persist(PersistError),
    /// Replay reconverged to a different state than the pre-crash run
    /// recorded — models, config or thread-determinism drifted.
    DigestMismatch { op_seq: u64, logged: u64, replayed: u64 },
    /// The store was written under a different model bundle than the
    /// one now opening it. Raised *before* any snapshot import or
    /// replay work — wrong models would otherwise only surface as a
    /// digest mismatch at the first replayed finalize.
    ModelMismatch { stored: u64, current: u64 },
    /// The log's structure is inconsistent (e.g. a finalize mark with
    /// no preceding state, an eviction record contradicting replay).
    Corrupt(&'static str),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "store error: {e}"),
            DurableError::Codec(e) => write!(f, "undecodable record: {e}"),
            DurableError::Persist(e) => write!(f, "snapshot rejected: {e}"),
            DurableError::DigestMismatch { op_seq, logged, replayed } => write!(
                f,
                "replay diverged at op {op_seq}: logged digest {logged:#x}, \
                 replayed {replayed:#x}"
            ),
            DurableError::ModelMismatch { stored, current } => write!(
                f,
                "model fingerprint mismatch: store was written with \
                 {stored:#018x}, current bundle is {current:#018x} — \
                 recover with the original models or start a fresh store"
            ),
            DurableError::Corrupt(what) => write!(f, "corrupt durable log: {what}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Codec(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

// ---- model fingerprint -------------------------------------------------

/// File next to the WAL/snapshots binding the store to a model bundle:
/// `magic "NGLM" | version u32 LE | fingerprint u64 LE`.
const MODEL_META_FILE: &str = "model.meta";
const MODEL_META_MAGIC: &[u8; 4] = b"NGLM";
const MODEL_META_VERSION: u32 = 1;

/// Stable fingerprint of a model bundle's serialized bytes, for
/// [`DurableGlobalizer::open_with_fingerprint`]. Any stable hash
/// works; this one is the store's own FNV-1a so CLI and tests agree
/// on one definition.
pub fn model_fingerprint(bundle_bytes: &[u8]) -> u64 {
    ngl_store::fnv1a64(bundle_bytes)
}

fn read_model_meta(path: &Path) -> Result<Option<u64>, DurableError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e).into()),
    };
    if bytes.len() != 16 || &bytes[0..4] != MODEL_META_MAGIC {
        return Err(DurableError::Corrupt("unreadable model fingerprint file"));
    }
    if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != MODEL_META_VERSION {
        return Err(DurableError::Corrupt("unsupported model fingerprint version"));
    }
    Ok(Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap())))
}

fn write_model_meta(path: &Path, fingerprint: u64) -> Result<(), DurableError> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(MODEL_META_MAGIC);
    bytes.extend_from_slice(&MODEL_META_VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    std::fs::write(path, bytes).map_err(StoreError::Io)?;
    Ok(())
}

// ---- durable wrapper ---------------------------------------------------

/// What [`DurableGlobalizer::open`] reconstructed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot recovery started from (`None` = replay
    /// from genesis).
    pub snapshot_seq: Option<u64>,
    /// Batches re-applied from the WAL.
    pub replayed_batches: usize,
    /// Finalizes re-run (and digest-verified) from the WAL.
    pub replayed_finalizes: usize,
    /// Whether a torn/corrupt tail was cut off the final WAL segment.
    pub torn_tail: bool,
    /// The recovered scan watermark.
    pub watermark: usize,
    /// The recovered CTrie surface count.
    pub surfaces: usize,
    /// Resident candidate surfaces after recovery.
    pub resident_surfaces: usize,
    /// Stored tweets after recovery.
    pub tweets: usize,
    /// The recovered state digest.
    pub digest: u64,
}

/// Byte accounting for the delta-vs-snapshot comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// WAL bytes appended by the most recent batch+finalize cycle —
    /// the *delta* cost of that cycle.
    pub delta_bytes_last: u64,
    /// Total WAL bytes appended over the process lifetime.
    pub wal_bytes_total: u64,
    /// Size of the most recent full snapshot.
    pub snapshot_bytes_last: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Batches logged.
    pub batches: u64,
    /// Finalizes logged.
    pub finalizes: u64,
}

/// [`NerGlobalizer`] with durable state: every batch and finalize is
/// logged to a WAL before/after it applies, full snapshots land every
/// `checkpoint_every` finalizes, and [`RetentionPolicy::SpillCold`]
/// gets its spill pool managed automatically (see the module docs).
pub struct DurableGlobalizer<T: ContextualTagger> {
    inner: NerGlobalizer<T>,
    wal: Wal,
    snaps: SnapshotStore,
    pool: Option<SpillPool>,
    dir: PathBuf,
    checkpoint_every: usize,
    op_seq: u64,
    finalizes_since_snapshot: usize,
    stats: StoreStats,
}

impl<T: ContextualTagger + Sync> DurableGlobalizer<T> {
    /// Opens (or creates) the durable store at `dir` and recovers into
    /// `inner`: newest valid snapshot first, then WAL replay with
    /// per-finalize digest verification. `inner` must be a freshly
    /// built pipeline with the *same models and config* as the run
    /// that wrote the store — determinism of replay depends on it.
    /// A snapshot lands every `checkpoint_every` finalizes (min 1).
    pub fn open<P: AsRef<Path>>(
        inner: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        Self::open_with_fingerprint(inner, dir, checkpoint_every, None)
    }

    /// [`Self::open`] with a model-bundle fingerprint (any stable hash
    /// of the bundle bytes). A new store adopts the fingerprint; an
    /// existing store rejects a mismatching one with
    /// [`DurableError::ModelMismatch`] *before* importing snapshots or
    /// replaying the WAL — wrong models fail fast instead of as a
    /// late digest mismatch. Stores written before fingerprints
    /// existed adopt the current fingerprint on first open.
    pub fn open_with_fingerprint<P: AsRef<Path>>(
        mut inner: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
        fingerprint: Option<u64>,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;
        if let Some(current) = fingerprint {
            let meta = dir.join(MODEL_META_FILE);
            match read_model_meta(&meta)? {
                Some(stored) if stored != current => {
                    return Err(DurableError::ModelMismatch { stored, current });
                }
                Some(_) => {}
                None => write_model_meta(&meta, current)?,
            }
        }
        let snaps = SnapshotStore::open(&dir)?;
        let wal = Wal::open(&dir)?;

        let mut report = RecoveryReport::default();
        let mut op_seq = 0u64;
        if let Some((seq, payload)) = snaps.latest()? {
            inner.import_state_bytes(&payload)?;
            report.snapshot_seq = Some(seq);
            op_seq = seq;
        }

        // The spill pool must exist before replay: replayed finalizes
        // under SpillCold spill exactly like the original run did.
        let mut pool = match inner.config().retention {
            RetentionPolicy::SpillCold(_) => Some(SpillPool::create(dir.join("spill.cold"))?),
            _ => None,
        };

        let replay = wal.replay()?;
        // `Wal::open` repairs (cuts) a torn active-segment tail before
        // replay sees it — surface either source of tearing.
        report.torn_tail = replay.torn_tail || wal.repaired_tail();
        let mut records = Vec::with_capacity(replay.records.len());
        for raw in &replay.records {
            records.push(WalRecord::decode(raw.tag, &raw.payload)?);
        }

        // Concurrent replay: batches must still *apply* one at a time
        // in log order (barrier semantics, digest verification), but
        // the encoder work inside them is order-free. Group the token
        // vectors of every batch up to each Finalize barrier, so each
        // group's encodes run concurrently on the pool before its
        // batches are applied. Groups are best-effort — a memo miss
        // just encodes inline, exactly as before.
        let snap_seq = op_seq;
        let mut groups: Vec<Vec<Vec<String>>> = vec![Vec::new()];
        for record in &records {
            match record {
                WalRecord::Batch { op_seq, tweets, .. } if *op_seq > snap_seq => {
                    let group = groups.last_mut().expect("one group always open");
                    group.extend(tweets.iter().cloned());
                }
                WalRecord::Finalize { op_seq, .. } if *op_seq > snap_seq => {
                    groups.push(Vec::new());
                }
                _ => {}
            }
        }
        let mut groups = groups.into_iter();
        let mut group: Vec<Vec<String>> = groups.next().unwrap_or_default();
        let mut prewarmed = false;

        for record in records {
            if record.op_seq() <= op_seq {
                continue; // already inside the snapshot
            }
            match record {
                WalRecord::Batch { op_seq: seq, ids, tweets } => {
                    if !prewarmed {
                        inner.prewarm_replay_encodes(std::mem::take(&mut group));
                        prewarmed = true;
                    }
                    match ids {
                        Some(ids) => {
                            let batch = ids.into_iter().zip(tweets).collect();
                            inner.try_process_batch_with_ids(batch);
                        }
                        None => {
                            inner.try_process_batch_owned(tweets);
                        }
                    }
                    op_seq = seq;
                    report.replayed_batches += 1;
                }
                WalRecord::Finalize { op_seq: seq, digest, .. } => {
                    inner.finalize_with_spill(pool.as_mut());
                    let replayed = inner.state_digest();
                    if replayed != digest {
                        return Err(DurableError::DigestMismatch {
                            op_seq: seq,
                            logged: digest,
                            replayed,
                        });
                    }
                    op_seq = seq;
                    report.replayed_finalizes += 1;
                    // Barrier crossed: this group's memo is spent.
                    inner.clear_replay_memo();
                    group = groups.next().unwrap_or_default();
                    prewarmed = false;
                }
                WalRecord::Evict { first_retained, .. } => {
                    if inner.tweet_base().first_retained() as u64 != first_retained {
                        return Err(DurableError::Corrupt(
                            "eviction record contradicts replayed retention",
                        ));
                    }
                }
                // Audit-only: spills are re-derived by the replayed
                // finalizes, snapshots were consumed above.
                WalRecord::Spill { .. } | WalRecord::Snapshot { .. } => {}
            }
        }

        // Trailing unfinalized batches may have left a live memo.
        inner.clear_replay_memo();

        report.watermark = inner.scan_watermark();
        report.surfaces = inner.n_surfaces();
        report.resident_surfaces = inner.candidate_base().len();
        report.tweets = inner.tweet_base().len();
        report.digest = inner.state_digest();
        Ok((
            Self {
                inner,
                wal,
                snaps,
                pool,
                dir,
                checkpoint_every: checkpoint_every.max(1),
                op_seq,
                finalizes_since_snapshot: 0,
                stats: StoreStats::default(),
            },
            report,
        ))
    }

    fn log(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        let (tag, payload) = record.encode();
        let bytes = self.wal.append(tag, &payload)?;
        self.stats.delta_bytes_last += bytes;
        self.stats.wal_bytes_total += bytes;
        Ok(())
    }

    /// Durably logs the batch inputs, then ingests them
    /// (write-ahead: a crash after the log entry replays the batch; a
    /// crash before it loses the batch wholesale — never half of it).
    pub fn process_batch(
        &mut self,
        batch: Vec<Vec<String>>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        self.stats.delta_bytes_last = 0;
        self.op_seq += 1;
        self.log(&WalRecord::Batch {
            op_seq: self.op_seq,
            ids: None,
            tweets: batch.clone(),
        })?;
        self.wal.sync()?;
        self.stats.batches += 1;
        Ok(self.inner.try_process_batch_owned(batch))
    }

    /// [`Self::process_batch`] for id-carrying streams.
    pub fn process_batch_with_ids(
        &mut self,
        batch: Vec<(u64, Vec<String>)>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        self.stats.delta_bytes_last = 0;
        self.op_seq += 1;
        let (ids, tweets): (Vec<u64>, Vec<Vec<String>>) = batch.into_iter().unzip();
        self.log(&WalRecord::Batch {
            op_seq: self.op_seq,
            ids: Some(ids.clone()),
            tweets: tweets.clone(),
        })?;
        self.wal.sync()?;
        self.stats.batches += 1;
        Ok(self.inner.try_process_batch_with_ids(ids.into_iter().zip(tweets).collect()))
    }

    /// Runs the Global NER stages, then durably marks the finalize
    /// (with its post-state digest) plus any derived eviction/spill
    /// transitions, and snapshots + compacts every `checkpoint_every`
    /// finalizes.
    pub fn finalize(&mut self) -> Result<Vec<Vec<Span>>, DurableError> {
        let first_retained_before = self.inner.tweet_base().first_retained();
        self.op_seq += 1;
        let out = self.inner.finalize_with_spill(self.pool.as_mut());

        self.log(&WalRecord::Finalize {
            op_seq: self.op_seq,
            watermark: self.inner.scan_watermark() as u64,
            first_retained: self.inner.tweet_base().first_retained() as u64,
            ctrie_version: self.inner.trie_version(),
            surfaces: self.inner.candidate_base().len() as u64,
            mentions: self.inner.candidate_base().total_mentions() as u64,
            digest: self.inner.state_digest(),
        })?;
        let first_retained_after = self.inner.tweet_base().first_retained();
        if first_retained_after != first_retained_before {
            self.log(&WalRecord::Evict {
                op_seq: self.op_seq,
                first_retained: first_retained_after as u64,
            })?;
        }
        if let Some(pool) = self.pool.as_mut() {
            let spills = pool.take_spill_log();
            if !spills.is_empty() {
                self.log(&WalRecord::Spill {
                    op_seq: self.op_seq,
                    count: spills.len() as u64,
                    bytes: spills.iter().map(|(_, b)| b).sum(),
                })?;
            }
        }
        self.wal.sync()?;
        self.stats.finalizes += 1;

        self.finalizes_since_snapshot += 1;
        if self.finalizes_since_snapshot >= self.checkpoint_every {
            self.snapshot()?;
            self.finalizes_since_snapshot = 0;
        }
        Ok(out)
    }

    /// Writes a full snapshot at the current `op_seq`, then compacts:
    /// WAL segments at or below the snapshot are dropped and all but
    /// the two newest snapshots pruned. With a spill pool, the state
    /// is rehydrated first so the snapshot is complete, and re-spilled
    /// afterwards (which also compacts the spill file).
    pub fn snapshot(&mut self) -> Result<u64, DurableError> {
        if let Some(pool) = self.pool.as_mut() {
            self.inner.rehydrate_all(pool)?;
        }
        let payload = self.inner.export_state_bytes();
        let bytes = self.snaps.write(self.op_seq, &payload)?;
        self.stats.snapshot_bytes_last = bytes;
        self.stats.snapshots += 1;

        // Compaction: everything at or below the snapshot's op_seq is
        // now redundant. Rotate so the active segment starts fresh,
        // then drop the older segments; keep one fallback snapshot.
        // The audit marker goes into the *new* segment so it survives
        // until the next compaction.
        let active = self.wal.rotate()?;
        self.wal.compact_below(active)?;
        self.log(&WalRecord::Snapshot { op_seq: self.op_seq, bytes })?;
        self.wal.sync()?;
        let mut snapshots = self.snaps.list()?;
        snapshots.sort_unstable();
        if snapshots.len() > 2 {
            self.snaps.prune_below(snapshots[snapshots.len() - 2])?;
        }

        if let Some(pool) = self.pool.as_mut() {
            pool.take_spill_log(); // re-spills below aren't new deltas
            let mut errors: Vec<TaskError> = Vec::new();
            self.inner.enforce_spill(pool, &mut errors);
            pool.take_spill_log();
            self.inner.push_finalize_errors(errors);
        }
        Ok(bytes)
    }

    /// The wrapped pipeline (read-only — mutating it directly would
    /// desynchronize the WAL).
    pub fn inner(&self) -> &NerGlobalizer<T> {
        &self.inner
    }

    /// Drains fault diagnostics from the wrapped pipeline.
    pub fn take_finalize_errors(&mut self) -> Vec<TaskError> {
        self.inner.take_finalize_errors()
    }

    /// The spill pool, when [`RetentionPolicy::SpillCold`] is active.
    pub fn spill_pool(&self) -> Option<&SpillPool> {
        self.pool.as_ref()
    }

    /// The store directory.
    pub fn store_dir(&self) -> &Path {
        &self.dir
    }

    /// The global operation counter (one per batch or finalize).
    pub fn op_seq(&self) -> u64 {
        self.op_seq
    }

    /// Byte accounting for the delta-vs-snapshot comparison.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bases::MentionRecord;

    fn entry() -> SurfaceEntry {
        SurfaceEntry {
            mentions: vec![MentionRecord {
                tweet: 3,
                start: 1,
                end: 2,
                local_emb: vec![0.5, -1.5],
                local_type: Some(ngl_text::EntityType::Person),
                trie_version: 4,
            }],
            clusters: Vec::new(),
            clustered: 1,
            classified: 1,
            touched: 9,
        }
    }

    #[test]
    fn wal_records_round_trip() {
        let records = [
            WalRecord::Batch {
                op_seq: 1,
                ids: None,
                tweets: vec![vec!["a".into(), "b".into()], vec![]],
            },
            WalRecord::Batch {
                op_seq: 2,
                ids: Some(vec![7, 8]),
                tweets: vec![vec!["x".into()], vec!["y".into()]],
            },
            WalRecord::Finalize {
                op_seq: 3,
                watermark: 4,
                first_retained: 1,
                ctrie_version: 5,
                surfaces: 6,
                mentions: 7,
                digest: 0xDEAD_BEEF,
            },
            WalRecord::Evict { op_seq: 3, first_retained: 2 },
            WalRecord::Spill { op_seq: 3, count: 2, bytes: 1024 },
            WalRecord::Snapshot { op_seq: 3, bytes: 4096 },
        ];
        for r in &records {
            let (tag, payload) = r.encode();
            let back = WalRecord::decode(tag, &payload).expect("decode");
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn wal_record_decode_rejects_junk() {
        assert!(WalRecord::decode(99, &[]).is_err());
        let (tag, payload) = WalRecord::Evict { op_seq: 1, first_retained: 0 }.encode();
        // Truncated payload.
        assert!(WalRecord::decode(tag, &payload[..payload.len() - 1]).is_err());
        // Trailing bytes.
        let mut long = payload.clone();
        long.push(0);
        assert!(WalRecord::decode(tag, &long).is_err());
        // Implausible batch count.
        let (tag, payload) = WalRecord::Batch { op_seq: 1, ids: None, tweets: vec![] }.encode();
        let mut bad = payload.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(WalRecord::decode(tag, &bad).is_err());
    }

    #[test]
    fn spill_pool_round_trips_take_and_peek() {
        let dir = std::env::temp_dir().join(format!("ngl-spillpool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut pool = SpillPool::create(dir.join("spill.cold")).expect("create");
        assert!(pool.is_empty());

        let e = entry();
        let cache = vec![((3usize, 1usize, 2usize), vec![0.5f32, -1.5])];
        pool.spill("beshear", &e, &cache).expect("spill");
        assert!(pool.contains("beshear"));
        assert_eq!(pool.surfaces(), vec!["beshear".to_string()]);
        assert_eq!(pool.take_spill_log().len(), 1);

        let peeked = pool.peek("beshear").expect("peek io").expect("present");
        assert_eq!(peeked.mentions.len(), 1);
        assert_eq!(peeked.touched, 9);
        assert!(pool.contains("beshear"), "peek must not consume");

        let (back, back_cache) = pool.take("beshear").expect("take io").expect("present");
        assert_eq!(back.mentions[0].trie_version, 4);
        assert_eq!(back_cache, cache);
        assert!(!pool.contains("beshear"));
        assert!(pool.take("beshear").expect("missing ok").is_none());

        pool.reset().expect("reset");
        assert_eq!(pool.file_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
