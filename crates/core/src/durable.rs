//! Durable stream state on top of `ngl-store`: delta checkpointing
//! via a typed write-ahead log, periodic full snapshots, and the
//! cold-surface spill pool backing [`RetentionPolicy::SpillCold`].
//!
//! ## Delta checkpointing model
//!
//! The WAL records the pipeline's *logical operations* — batch inputs
//! and finalize marks — rather than physical state diffs. Because the
//! pipeline is deterministic for fixed models (the invariant pinned by
//! the `parallel_equivalence` suite), replaying the logged operations
//! from the last snapshot reconstructs state **bitwise identical** to
//! the pre-crash run over the surviving prefix; each finalize mark
//! additionally carries a [`NerGlobalizer::state_digest`] so recovery
//! proves it reconverged instead of assuming it. Per-batch WAL cost is
//! proportional to the *new inputs* of that batch (plus a constant-size
//! finalize mark), while a full snapshot grows with the whole stream —
//! which is what makes delta checkpointing sublinear per batch.
//!
//! Every `checkpoint_every` finalizes, [`DurableGlobalizer`] writes a
//! full snapshot (the canonical checkpoint bytes of
//! [`NerGlobalizer::export_state_bytes`]) and compacts: the WAL rotates
//! and drops segments at or below the snapshot, and older snapshots are
//! pruned (the newest two are kept — the latest plus one fallback in
//! case the latest is found corrupt on open). Snapshots are sequenced
//! by the global **operation counter** (`op_seq`, bumped once per batch
//! and once per finalize); replay skips WAL records with
//! `op_seq <= snapshot.seq`, so a crash *between* snapshot write and
//! WAL compaction never double-applies an operation.
//!
//! ## Recovery
//!
//! [`DurableGlobalizer::open`] = newest valid snapshot + WAL replay.
//! Torn or bit-flipped bytes at the very tail of the final WAL segment
//! are tolerated (the write that was in flight when the process died);
//! the replay stops at the last checksum-valid record, yielding exactly
//! the state of a clean run over the surviving operations. Corruption
//! anywhere earlier is a hard error — silently skipping interior
//! records would violate prefix consistency.
//!
//! ## Cold-surface spill
//!
//! [`SpillPool`] serializes whole surface entries (mentions + their
//! cached span embeddings) into an `ngl_store::SpillFile`. Spilled
//! entries are transient per-process state — the pool is rebuilt by
//! replay/rehydration, never recovered from disk — so the pool resets
//! whenever state is rebuilt or snapshotted and re-spills afterwards,
//! which doubles as spill-file compaction.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bytes::{Bytes, BytesMut};

use ngl_encoder::ContextualTagger;
use ngl_nn::codec::{get_quantized_f32_vec, get_u64, put_quantized_f32_slice, put_u64, CodecError};
use ngl_store::{
    IoHandle, IoStatsSnapshot, SharedPageCache, SnapshotStore, SpillFile, StoreError, Wal,
    DEFAULT_SEGMENT_BYTES,
};

use crate::bases::SurfaceEntry;
use crate::checkpoint::{get_entry, get_str, put_entry, put_str, CK_V4};
use crate::persist::PersistError;
use crate::pipeline::{BatchOutput, BatchReport, NerGlobalizer, RetentionPolicy};
use ngl_runtime::TaskError;
use ngl_text::Span;

/// Spill-file and mention-cache entry: `(tweet, start, end)` ↦ span
/// embedding.
type CacheEntry = ((usize, usize, usize), Vec<f32>);

/// Env var overriding the byte budget of the process-shared spill
/// page cache (`0` disables the cache; read once, at first use).
pub use ngl_store::SPILL_CACHE_ENV;

// ---- spill pool --------------------------------------------------------

/// Where one spilled surface lives inside the spill file.
#[derive(Debug, Clone, Copy)]
struct SpillSlot {
    offset: u64,
    bytes: u64,
}

/// An on-disk index of cold surface entries (see the module docs).
/// Entries are keyed by surface form; the in-memory index maps each to
/// a checksummed extent of the backing [`SpillFile`].
pub struct SpillPool {
    file: SpillFile,
    index: BTreeMap<String, SpillSlot>,
    /// `(surface, payload bytes)` spilled since the last
    /// [`Self::take_spill_log`] drain.
    spill_log: Vec<(String, u64)>,
}

impl SpillPool {
    /// Opens (and truncates) the spill file at `path`. Spilled entries
    /// never outlive the process, so an existing file's contents are
    /// always stale.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        Self::create_with_io(path, IoHandle::real())
    }

    /// [`Self::create`] over an explicit IO layer (chaos tests inject
    /// faults here). Reads go through the **process-shared** page
    /// cache ([`SharedPageCache::global`]): every durable spill pool
    /// in the process — one per shard under a sharded store —
    /// arbitrates one `NGL_SPILL_CACHE_BYTES` budget with stamp-LRU
    /// recency instead of owning a private cache each.
    pub fn create_with_io<P: AsRef<Path>>(path: P, io: IoHandle) -> Result<Self, StoreError> {
        let file = SpillFile::open_with_cache(path, io, SharedPageCache::global())?;
        Ok(Self { file, index: BTreeMap::new(), spill_log: Vec::new() })
    }

    /// `(hits, misses)` of the shared spill page cache —
    /// process-wide totals, not per-file counts.
    pub fn page_cache_stats(&self) -> (u64, u64) {
        self.file.page_cache_stats()
    }

    /// Number of spilled surfaces.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is spilled.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `surface` is currently spilled.
    pub fn contains(&self, surface: &str) -> bool {
        self.index.contains_key(surface)
    }

    /// The spilled surfaces, in lexicographic order.
    pub fn surfaces(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }

    /// Bytes held by live spilled entries (excludes dead extents of
    /// already-rehydrated entries; those are reclaimed by the next
    /// [`Self::reset`]).
    pub fn live_bytes(&self) -> u64 {
        self.index.values().map(|s| s.bytes).sum()
    }

    /// Total size of the backing file, dead extents included.
    pub fn file_bytes(&self) -> u64 {
        self.file.len()
    }

    /// Serializes `entry` (with the given slice of its cached span
    /// embeddings) and appends it to the spill file. Returns the
    /// payload size. The caller removes the resident copy *after* this
    /// succeeds — serialize-before-remove.
    pub fn spill(
        &mut self,
        surface: &str,
        entry: &SurfaceEntry,
        cache: &[CacheEntry],
    ) -> Result<u64, StoreError> {
        let mut buf = BytesMut::new();
        put_str(&mut buf, surface);
        put_entry(&mut buf, entry, CK_V4);
        put_u64(&mut buf, cache.len() as u64);
        for ((t, s, e), emb) in cache {
            put_u64(&mut buf, *t as u64);
            put_u64(&mut buf, *s as u64);
            put_u64(&mut buf, *e as u64);
            // Lossless for pipeline-produced embeddings: they are
            // canonicalized (quantize→dequantize) at ingest.
            put_quantized_f32_slice(&mut buf, emb);
        }
        let bytes = buf.len() as u64;
        let offset = self.file.append(&buf)?;
        self.index.insert(surface.to_string(), SpillSlot { offset, bytes });
        self.spill_log.push((surface.to_string(), bytes));
        Ok(bytes)
    }

    fn decode(surface: &str, payload: &[u8]) -> Result<(SurfaceEntry, Vec<CacheEntry>), StoreError> {
        let corrupt = |_: CodecError| StoreError::Corrupt("undecodable spill payload");
        let mut buf = Bytes::from(payload.to_vec());
        let stored = get_str(&mut buf).map_err(corrupt)?;
        if stored != surface {
            return Err(StoreError::Corrupt("spill payload names a different surface"));
        }
        let entry = get_entry(&mut buf, CK_V4).map_err(corrupt)?;
        let n = get_u64(&mut buf).map_err(corrupt)? as usize;
        if n > entry.mentions.len() {
            return Err(StoreError::Corrupt("spill cache count exceeds mentions"));
        }
        let mut cache = Vec::with_capacity(n);
        for _ in 0..n {
            let t = get_u64(&mut buf).map_err(corrupt)? as usize;
            let s = get_u64(&mut buf).map_err(corrupt)? as usize;
            let e = get_u64(&mut buf).map_err(corrupt)? as usize;
            let emb = get_quantized_f32_vec(&mut buf).map_err(corrupt)?;
            cache.push(((t, s, e), emb));
        }
        Ok((entry, cache))
    }

    /// Removes `surface` from the pool and returns its entry and cached
    /// embeddings (rehydration). The index slot is dropped even when
    /// the read fails — a rotted extent can never rehydrate, so the
    /// surface restarts empty rather than erroring forever.
    pub fn take(&mut self, surface: &str) -> Result<Option<(SurfaceEntry, Vec<CacheEntry>)>, StoreError> {
        let Some(slot) = self.index.remove(surface) else {
            return Ok(None);
        };
        let payload = self.file.read(slot.offset)?;
        Self::decode(surface, &payload).map(Some)
    }

    /// Decodes `surface`'s entry without removing it from the pool
    /// (read-only emit access; no touch-stamp, no rehydration).
    pub fn peek(&mut self, surface: &str) -> Result<Option<SurfaceEntry>, StoreError> {
        let Some(slot) = self.index.get(surface).copied() else {
            return Ok(None);
        };
        let payload = self.file.read(slot.offset)?;
        Self::decode(surface, &payload).map(|(entry, _)| Some(entry))
    }

    /// Drops every spilled entry and truncates the backing file.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.index.clear();
        self.file.reset()?;
        Ok(())
    }

    /// Drains the `(surface, bytes)` log of spills since the last call.
    pub fn take_spill_log(&mut self) -> Vec<(String, u64)> {
        std::mem::take(&mut self.spill_log)
    }
}

// ---- WAL record codec --------------------------------------------------

const TAG_BATCH: u8 = 1;
const TAG_FINALIZE: u8 = 2;
const TAG_EVICT: u8 = 3;
const TAG_SPILL: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;
/// A finalize mark carrying a `flags` word. Written only when some
/// flag is set, so stores that never degrade stay byte-identical to
/// the v1 format (and readable by older binaries).
const TAG_FINALIZE_V2: u8 = 6;

/// Finalize flag: the digest was computed on a state that diverged
/// from fault-free replay (a spill fault pinned or dropped an entry),
/// so recovery must not verify it. Cleared by the next successful
/// snapshot, which re-baselines replay.
pub(crate) const FINALIZE_FLAG_UNVERIFIED: u64 = 1;

/// A typed WAL record. `Batch` and `Finalize` drive replay; `Evict`,
/// `Spill` and `Snapshot` are audit records — cheap summaries of
/// derived transitions that replay re-derives and (for evictions)
/// cross-checks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// The inputs of one ingested batch.
    Batch { op_seq: u64, ids: Option<Vec<u64>>, tweets: Vec<Vec<String>> },
    /// One finalize ran; carries the post-state summary + digest.
    Finalize {
        op_seq: u64,
        watermark: u64,
        first_retained: u64,
        ctrie_version: u64,
        surfaces: u64,
        mentions: u64,
        digest: u64,
        /// See [`FINALIZE_FLAG_UNVERIFIED`]; `0` encodes as v1.
        flags: u64,
    },
    /// Retention moved the eviction boundary during the finalize of
    /// `op_seq`.
    Evict { op_seq: u64, first_retained: u64 },
    /// Cold surfaces were spilled during the finalize of `op_seq`.
    Spill { op_seq: u64, count: u64, bytes: u64 },
    /// A full snapshot sequenced at `op_seq` was durably written.
    Snapshot { op_seq: u64, bytes: u64 },
}

impl WalRecord {
    pub(crate) fn op_seq(&self) -> u64 {
        match *self {
            WalRecord::Batch { op_seq, .. }
            | WalRecord::Finalize { op_seq, .. }
            | WalRecord::Evict { op_seq, .. }
            | WalRecord::Spill { op_seq, .. }
            | WalRecord::Snapshot { op_seq, .. } => op_seq,
        }
    }

    fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = BytesMut::new();
        let tag = match self {
            WalRecord::Batch { op_seq, ids, tweets } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, ids.is_some() as u64);
                put_u64(&mut buf, tweets.len() as u64);
                for (i, tokens) in tweets.iter().enumerate() {
                    if let Some(ids) = ids {
                        put_u64(&mut buf, ids[i]);
                    }
                    put_u64(&mut buf, tokens.len() as u64);
                    for t in tokens {
                        put_str(&mut buf, t);
                    }
                }
                TAG_BATCH
            }
            WalRecord::Finalize {
                op_seq,
                watermark,
                first_retained,
                ctrie_version,
                surfaces,
                mentions,
                digest,
                flags,
            } => {
                for v in [op_seq, watermark, first_retained, ctrie_version, surfaces, mentions, digest] {
                    put_u64(&mut buf, *v);
                }
                if *flags == 0 {
                    TAG_FINALIZE
                } else {
                    put_u64(&mut buf, *flags);
                    TAG_FINALIZE_V2
                }
            }
            WalRecord::Evict { op_seq, first_retained } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, *first_retained);
                TAG_EVICT
            }
            WalRecord::Spill { op_seq, count, bytes } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, *count);
                put_u64(&mut buf, *bytes);
                TAG_SPILL
            }
            WalRecord::Snapshot { op_seq, bytes } => {
                put_u64(&mut buf, *op_seq);
                put_u64(&mut buf, *bytes);
                TAG_SNAPSHOT
            }
        };
        (tag, buf.to_vec())
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Self, CodecError> {
        let mut buf = Bytes::from(payload.to_vec());
        let record = match tag {
            TAG_BATCH => {
                let op_seq = get_u64(&mut buf)?;
                let has_ids = match get_u64(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::Invalid("batch has_ids flag out of range")),
                };
                let n = get_u64(&mut buf)? as usize;
                // Each tweet costs ≥ 8 bytes (its token count) on the
                // wire; bound allocation against corrupt counts.
                if n.saturating_mul(8) > buf.len() {
                    return Err(CodecError::Invalid("implausible batch size"));
                }
                let mut ids = has_ids.then(Vec::new);
                let mut tweets = Vec::with_capacity(n);
                for _ in 0..n {
                    if let Some(ids) = ids.as_mut() {
                        ids.push(get_u64(&mut buf)?);
                    }
                    let k = get_u64(&mut buf)? as usize;
                    if k.saturating_mul(8) > buf.len() {
                        return Err(CodecError::Invalid("implausible token count"));
                    }
                    let mut tokens = Vec::with_capacity(k);
                    for _ in 0..k {
                        tokens.push(get_str(&mut buf)?);
                    }
                    tweets.push(tokens);
                }
                WalRecord::Batch { op_seq, ids, tweets }
            }
            TAG_FINALIZE | TAG_FINALIZE_V2 => {
                let op_seq = get_u64(&mut buf)?;
                let watermark = get_u64(&mut buf)?;
                let first_retained = get_u64(&mut buf)?;
                let ctrie_version = get_u64(&mut buf)?;
                let surfaces = get_u64(&mut buf)?;
                let mentions = get_u64(&mut buf)?;
                let digest = get_u64(&mut buf)?;
                let flags = if tag == TAG_FINALIZE_V2 { get_u64(&mut buf)? } else { 0 };
                WalRecord::Finalize {
                    op_seq,
                    watermark,
                    first_retained,
                    ctrie_version,
                    surfaces,
                    mentions,
                    digest,
                    flags,
                }
            }
            TAG_EVICT => WalRecord::Evict {
                op_seq: get_u64(&mut buf)?,
                first_retained: get_u64(&mut buf)?,
            },
            TAG_SPILL => WalRecord::Spill {
                op_seq: get_u64(&mut buf)?,
                count: get_u64(&mut buf)?,
                bytes: get_u64(&mut buf)?,
            },
            TAG_SNAPSHOT => WalRecord::Snapshot {
                op_seq: get_u64(&mut buf)?,
                bytes: get_u64(&mut buf)?,
            },
            _ => return Err(CodecError::Invalid("unknown WAL record tag")),
        };
        if !buf.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in WAL record"));
        }
        Ok(record)
    }
}

// ---- errors ------------------------------------------------------------

/// Why a durable operation failed.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying WAL / snapshot / spill store failed.
    Store(StoreError),
    /// A WAL record or snapshot payload did not decode.
    Codec(CodecError),
    /// The snapshot checkpoint failed validation on import.
    Persist(PersistError),
    /// Replay reconverged to a different state than the pre-crash run
    /// recorded — models, config or thread-determinism drifted.
    DigestMismatch { op_seq: u64, logged: u64, replayed: u64 },
    /// The store was written under a different model bundle than the
    /// one now opening it. Raised *before* any snapshot import or
    /// replay work — wrong models would otherwise only surface as a
    /// digest mismatch at the first replayed finalize.
    ModelMismatch { stored: u64, current: u64 },
    /// The store root was written with a different shard count than
    /// the one now opening it. Raised *before* any shard opens —
    /// opening a 4-shard store as 2 shards would otherwise silently
    /// replay a subset of the lineages (wrong ownership everywhere).
    ShardLayoutMismatch { stored: u32, requested: u32 },
    /// The log's structure is inconsistent (e.g. a finalize mark with
    /// no preceding state, an eviction record contradicting replay).
    Corrupt(&'static str),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "store error: {e}"),
            DurableError::Codec(e) => write!(f, "undecodable record: {e}"),
            DurableError::Persist(e) => write!(f, "snapshot rejected: {e}"),
            DurableError::DigestMismatch { op_seq, logged, replayed } => write!(
                f,
                "replay diverged at op {op_seq}: logged digest {logged:#x}, \
                 replayed {replayed:#x}"
            ),
            DurableError::ModelMismatch { stored, current } => write!(
                f,
                "model fingerprint mismatch: store was written with \
                 {stored:#018x}, current bundle is {current:#018x} — \
                 recover with the original models or start a fresh store"
            ),
            DurableError::ShardLayoutMismatch { stored, requested } => write!(
                f,
                "shard layout mismatch: store was written with {stored} \
                 shard(s), reopen requested {requested} — reopen with the \
                 original shard count or start a fresh store"
            ),
            DurableError::Corrupt(what) => write!(f, "corrupt durable log: {what}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Codec(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

// ---- model fingerprint -------------------------------------------------

/// File next to the WAL/snapshots binding the store to a model bundle:
/// `magic "NGLM" | version u32 LE | fingerprint u64 LE`.
pub(crate) const MODEL_META_FILE: &str = "model.meta";
const MODEL_META_MAGIC: &[u8; 4] = b"NGLM";
const MODEL_META_VERSION: u32 = 1;

/// Stable fingerprint of a model bundle's serialized bytes, for
/// [`DurableGlobalizer::open_with_fingerprint`]. Any stable hash
/// works; this one is the store's own FNV-1a so CLI and tests agree
/// on one definition.
pub fn model_fingerprint(bundle_bytes: &[u8]) -> u64 {
    ngl_store::fnv1a64(bundle_bytes)
}

pub(crate) fn read_model_meta(path: &Path) -> Result<Option<u64>, DurableError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e).into()),
    };
    if bytes.len() != 16 || &bytes[0..4] != MODEL_META_MAGIC {
        return Err(DurableError::Corrupt("unreadable model fingerprint file"));
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[4..8]);
    if u32::from_le_bytes(word) != MODEL_META_VERSION {
        return Err(DurableError::Corrupt("unsupported model fingerprint version"));
    }
    let mut fp = [0u8; 8];
    fp.copy_from_slice(&bytes[8..16]);
    Ok(Some(u64::from_le_bytes(fp)))
}

pub(crate) fn write_model_meta(path: &Path, fingerprint: u64) -> Result<(), DurableError> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(MODEL_META_MAGIC);
    bytes.extend_from_slice(&MODEL_META_VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    std::fs::write(path, bytes).map_err(StoreError::Io)?;
    Ok(())
}

// ---- durable wrapper ---------------------------------------------------

/// What [`DurableGlobalizer::open`] reconstructed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot recovery started from (`None` = replay
    /// from genesis).
    pub snapshot_seq: Option<u64>,
    /// Batches re-applied from the WAL.
    pub replayed_batches: usize,
    /// Finalizes re-run (and digest-verified) from the WAL.
    pub replayed_finalizes: usize,
    /// Whether a torn/corrupt tail was cut off the final WAL segment.
    pub torn_tail: bool,
    /// The recovered scan watermark.
    pub watermark: usize,
    /// The recovered CTrie surface count.
    pub surfaces: usize,
    /// Resident candidate surfaces after recovery.
    pub resident_surfaces: usize,
    /// Stored tweets after recovery.
    pub tweets: usize,
    /// The recovered state digest.
    pub digest: u64,
    /// Finalize marks replayed *without* digest verification because
    /// the writing run recorded a spill-fault divergence (see
    /// [`FINALIZE_FLAG_UNVERIFIED`]). Non-zero means the pre-crash
    /// run degraded and never healed with a snapshot; the replayed
    /// state is the fault-free reconstruction of the logged inputs.
    pub unverified_finalizes: usize,
    /// The tweet-id partition of every replayed id-carrying batch, in
    /// log order. This is the exact batch boundary the pre-crash run
    /// committed, so a verifier can re-run the same partition cleanly
    /// and compare states bit for bit (the serving kill-under-load
    /// oracle). Batches without ids contribute empty rows.
    pub batch_ids: Vec<Vec<u64>>,
}

/// Byte accounting for the delta-vs-snapshot comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// WAL bytes appended by the most recent batch+finalize cycle —
    /// the *delta* cost of that cycle.
    pub delta_bytes_last: u64,
    /// Total WAL bytes appended over the process lifetime.
    pub wal_bytes_total: u64,
    /// Size of the most recent full snapshot.
    pub snapshot_bytes_last: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Batches logged.
    pub batches: u64,
    /// Finalizes logged.
    pub finalizes: u64,
}

// ---- degradation -------------------------------------------------------

/// What failed, for one [`DegradationEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationCause {
    /// A WAL commit failed (not out-of-space); the operation was
    /// rejected and can be retried.
    WalCommit,
    /// The disk reported out-of-space; mutations are refused until a
    /// commit succeeds again.
    DiskFull,
    /// A full snapshot could not be written; durability rides on the
    /// WAL alone and the snapshot is retried at the next finalize.
    SnapshotWrite,
    /// Rehydrating spilled surfaces for a snapshot failed; the
    /// affected surface restarts empty (a recorded loss).
    SnapshotRehydrate,
    /// WAL rotation/compaction or snapshot pruning failed after a
    /// successful snapshot. Stale files linger — harmless for
    /// correctness (replay filters records by `op_seq`), costs disk.
    Compaction,
}

impl std::fmt::Display for DegradationCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DegradationCause::WalCommit => "wal-commit",
            DegradationCause::DiskFull => "disk-full",
            DegradationCause::SnapshotWrite => "snapshot-write",
            DegradationCause::SnapshotRehydrate => "snapshot-rehydrate",
            DegradationCause::Compaction => "compaction",
        };
        f.write_str(name)
    }
}

/// One recorded storage degradation, in occurrence order.
#[derive(Debug, Clone)]
pub struct DegradationEvent {
    /// The operation counter when the failure happened.
    pub op_seq: u64,
    pub cause: DegradationCause,
    /// The underlying error, stringified.
    pub detail: String,
}

/// Overall storage health, derived from a [`DegradationReport`].
/// Ordered by severity (declaration order), so a sharded store's
/// aggregate health is `max` over its shards' modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationMode {
    /// No storage faults observed (absorbed transient retries are
    /// still healthy).
    Healthy,
    /// Faults occurred, but every acknowledged operation is durable
    /// and snapshots are current.
    Degraded,
    /// Snapshots are failing; every acknowledged operation is durable
    /// but recovery must replay the whole WAL.
    WalOnly,
    /// The disk is full: mutations are refused (typed errors, no
    /// panic) until a commit succeeds again.
    ReadOnly,
}

impl std::fmt::Display for DegradationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DegradationMode::Healthy => "healthy",
            DegradationMode::Degraded => "degraded",
            DegradationMode::WalOnly => "wal-only",
            DegradationMode::ReadOnly => "read-only",
        };
        f.write_str(name)
    }
}

/// Typed storage-health report for the degradation ladder: flags for
/// the current operating mode, cumulative failure counters, spill
/// pin/loss totals and IO retry statistics. Obtained from
/// [`DurableGlobalizer::degradation`]; never panics, never lies about
/// acknowledged data.
#[derive(Debug, Clone, Default)]
pub struct DegradationReport {
    /// Mutations are currently refused (last commit hit ENOSPC).
    /// Cleared by the next successful commit.
    pub read_only: bool,
    /// The last due snapshot failed; WAL-only operation until one
    /// succeeds.
    pub snapshot_lagging: bool,
    /// Finalize digests are currently written unverifiable (a spill
    /// fault made resident state diverge from fault-free replay).
    /// Healed by the next successful snapshot.
    pub digest_unverified: bool,
    /// WAL commits rejected (each one a typed error to the caller —
    /// the operation did not happen and may be retried).
    pub wal_commit_failures: u64,
    /// Snapshot attempts that failed (write or rehydrate).
    pub snapshot_failures: u64,
    /// Post-snapshot rotate/compact/prune failures (disk-space cost
    /// only).
    pub compaction_failures: u64,
    /// Surfaces lost while rehydrating for a snapshot.
    pub rehydrate_losses: u64,
    /// Surfaces kept resident because their spill write failed
    /// (lossless degradation of the memory budget).
    pub spill_pins: u64,
    /// Surfaces that lost cold state to spill/rehydrate faults
    /// (restart empty; includes `rehydrate_losses`).
    pub spill_losses: u64,
    /// Transient IO errors absorbed by retry (healthy).
    pub io_retries: u64,
    /// Transient IO errors that exhausted the retry budget and
    /// surfaced.
    pub io_retry_exhausted: u64,
    /// The first [`MAX_DEGRADATION_EVENTS`] degradations, in order.
    pub events: Vec<DegradationEvent>,
    /// Degradations beyond the event cap (counters above still count
    /// them).
    pub dropped_events: u64,
}

/// Cap on retained [`DegradationReport::events`].
pub const MAX_DEGRADATION_EVENTS: usize = 64;

impl DegradationReport {
    /// Collapses the flags into the degradation ladder rung.
    pub fn mode(&self) -> DegradationMode {
        if self.read_only {
            DegradationMode::ReadOnly
        } else if self.snapshot_lagging {
            DegradationMode::WalOnly
        } else if self.is_degraded() {
            DegradationMode::Degraded
        } else {
            DegradationMode::Healthy
        }
    }

    /// Whether any fault left a trace (successful transient retries
    /// don't count).
    pub fn is_degraded(&self) -> bool {
        self.read_only
            || self.snapshot_lagging
            || self.digest_unverified
            || self.wal_commit_failures
                + self.snapshot_failures
                + self.compaction_failures
                + self.spill_pins
                + self.spill_losses
                + self.io_retry_exhausted
                > 0
    }
}

/// A finalize whose stages ran but whose WAL commit failed: the
/// already-encoded records and the spans of that finalize. The records
/// are re-committed before any later operation may log (WAL order must
/// keep matching apply order); only a retried
/// [`DurableGlobalizer::finalize`] surfaces the stashed spans.
struct PendingFinalize {
    encoded: Vec<(u8, Vec<u8>)>,
    out: Vec<Vec<Span>>,
}

/// [`NerGlobalizer`] with durable state: every batch and finalize is
/// logged to a WAL before/after it applies, full snapshots land every
/// `checkpoint_every` finalizes, and [`RetentionPolicy::SpillCold`]
/// gets its spill pool managed automatically (see the module docs).
pub struct DurableGlobalizer<T: ContextualTagger> {
    inner: NerGlobalizer<T>,
    wal: Wal,
    snaps: SnapshotStore,
    pool: Option<SpillPool>,
    dir: PathBuf,
    io: IoHandle,
    checkpoint_every: usize,
    op_seq: u64,
    finalizes_since_snapshot: usize,
    stats: StoreStats,
    degradation: DegradationReport,
    pending_finalize: Option<PendingFinalize>,
    /// `spill_pins + spill_losses` of `inner` at the last divergence
    /// check — a change since then means new spill faults.
    spill_faults_marked: u64,
}

impl<T: ContextualTagger + Sync> DurableGlobalizer<T> {
    /// Opens (or creates) the durable store at `dir` and recovers into
    /// `inner`: newest valid snapshot first, then WAL replay with
    /// per-finalize digest verification. `inner` must be a freshly
    /// built pipeline with the *same models and config* as the run
    /// that wrote the store — determinism of replay depends on it.
    /// A snapshot lands every `checkpoint_every` finalizes (min 1).
    pub fn open<P: AsRef<Path>>(
        inner: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        Self::open_with_fingerprint(inner, dir, checkpoint_every, None)
    }

    /// [`Self::open`] with a model-bundle fingerprint (any stable hash
    /// of the bundle bytes). A new store adopts the fingerprint; an
    /// existing store rejects a mismatching one with
    /// [`DurableError::ModelMismatch`] *before* importing snapshots or
    /// replaying the WAL — wrong models fail fast instead of as a
    /// late digest mismatch. Stores written before fingerprints
    /// existed adopt the current fingerprint on first open.
    pub fn open_with_fingerprint<P: AsRef<Path>>(
        inner: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
        fingerprint: Option<u64>,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        Self::open_with_io(inner, dir, checkpoint_every, fingerprint, IoHandle::real())
    }

    /// [`Self::open_with_fingerprint`] over an explicit IO layer: the
    /// WAL, snapshot store and spill pool all share `io`, so a chaos
    /// plan sees every store IO call in one global order and the
    /// retry/degradation machinery is exercised end to end.
    pub fn open_with_io<P: AsRef<Path>>(
        mut inner: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
        fingerprint: Option<u64>,
        io: IoHandle,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)?;
        if let Some(current) = fingerprint {
            let meta = dir.join(MODEL_META_FILE);
            match read_model_meta(&meta)? {
                Some(stored) if stored != current => {
                    return Err(DurableError::ModelMismatch { stored, current });
                }
                Some(_) => {}
                None => write_model_meta(&meta, current)?,
            }
        }
        let snaps = SnapshotStore::open_with_io(&dir, io.clone())?;
        let wal = Wal::open_with_io(&dir, DEFAULT_SEGMENT_BYTES, io.clone())?;

        let mut report = RecoveryReport::default();
        let mut op_seq = 0u64;
        if let Some((seq, payload)) = snaps.latest()? {
            inner.import_state_bytes(&payload)?;
            report.snapshot_seq = Some(seq);
            op_seq = seq;
        }

        // The spill pool must exist before replay: replayed finalizes
        // under SpillCold spill exactly like the original run did.
        let mut pool = match inner.config().retention {
            RetentionPolicy::SpillCold(_) => {
                Some(SpillPool::create_with_io(dir.join("spill.cold"), io.clone())?)
            }
            _ => None,
        };

        let replay = wal.replay()?;
        // `Wal::open` repairs (cuts) a torn active-segment tail before
        // replay sees it — surface either source of tearing.
        report.torn_tail = replay.torn_tail || wal.repaired_tail();
        let mut records = Vec::with_capacity(replay.records.len());
        for raw in &replay.records {
            records.push(WalRecord::decode(raw.tag, &raw.payload)?);
        }

        // Concurrent replay: batches must still *apply* one at a time
        // in log order (barrier semantics, digest verification), but
        // the encoder work inside them is order-free. Group the token
        // vectors of every batch up to each Finalize barrier, so each
        // group's encodes run concurrently on the pool before its
        // batches are applied. Groups are best-effort — a memo miss
        // just encodes inline, exactly as before.
        let snap_seq = op_seq;
        let mut groups: Vec<Vec<Vec<String>>> = vec![Vec::new()];
        for record in &records {
            match record {
                WalRecord::Batch { op_seq, tweets, .. } if *op_seq > snap_seq => {
                    // `groups` starts non-empty and only grows; if that
                    // ever breaks, prewarm is best-effort anyway — skip
                    // the group rather than abort recovery.
                    if let Some(group) = groups.last_mut() {
                        group.extend(tweets.iter().cloned());
                    }
                }
                WalRecord::Finalize { op_seq, .. } if *op_seq > snap_seq => {
                    groups.push(Vec::new());
                }
                _ => {}
            }
        }
        let mut groups = groups.into_iter();
        let mut group: Vec<Vec<String>> = groups.next().unwrap_or_default();
        let mut prewarmed = false;
        // Once a finalize flagged unverified appears, the writing run
        // had diverged from fault-free replay, so every later digest
        // (and eviction cross-check) in this WAL was computed on that
        // diverged state and cannot be verified. A successful snapshot
        // would have compacted the flagged records away — their
        // presence means the degradation was never healed.
        let mut divergent_replay = false;

        for record in records {
            if record.op_seq() <= op_seq {
                continue; // already inside the snapshot
            }
            match record {
                WalRecord::Batch { op_seq: seq, ids, tweets } => {
                    if !prewarmed {
                        inner.prewarm_replay_encodes(std::mem::take(&mut group));
                        prewarmed = true;
                    }
                    match ids {
                        Some(ids) => {
                            report.batch_ids.push(ids.clone());
                            let batch = ids.into_iter().zip(tweets).collect();
                            inner.try_process_batch_with_ids(batch);
                        }
                        None => {
                            report.batch_ids.push(Vec::new());
                            inner.try_process_batch_owned(tweets);
                        }
                    }
                    op_seq = seq;
                    report.replayed_batches += 1;
                }
                WalRecord::Finalize { op_seq: seq, digest, flags, .. } => {
                    inner.finalize_with_spill(pool.as_mut());
                    if flags & FINALIZE_FLAG_UNVERIFIED != 0 {
                        divergent_replay = true;
                    }
                    if divergent_replay {
                        report.unverified_finalizes += 1;
                    } else {
                        let replayed = inner.state_digest();
                        if replayed != digest {
                            return Err(DurableError::DigestMismatch {
                                op_seq: seq,
                                logged: digest,
                                replayed,
                            });
                        }
                    }
                    op_seq = seq;
                    report.replayed_finalizes += 1;
                    // Barrier crossed: this group's memo is spent.
                    inner.clear_replay_memo();
                    group = groups.next().unwrap_or_default();
                    prewarmed = false;
                }
                WalRecord::Evict { first_retained, .. } => {
                    if !divergent_replay
                        && inner.tweet_base().first_retained() as u64 != first_retained
                    {
                        return Err(DurableError::Corrupt(
                            "eviction record contradicts replayed retention",
                        ));
                    }
                }
                // Audit-only: spills are re-derived by the replayed
                // finalizes, snapshots were consumed above.
                WalRecord::Spill { .. } | WalRecord::Snapshot { .. } => {}
            }
        }

        // Trailing unfinalized batches may have left a live memo.
        inner.clear_replay_memo();

        report.watermark = inner.scan_watermark();
        report.surfaces = inner.n_surfaces();
        report.resident_surfaces = inner.candidate_base().len();
        report.tweets = inner.tweet_base().len();
        report.digest = inner.state_digest();
        let checkpoint_every = checkpoint_every.max(1);
        // An unhealed divergence in the replayed WAL: new finalizes
        // must stay flagged (older flagged digests make them
        // unverifiable on the next replay) and the healing snapshot is
        // pulled forward to the very next finalize.
        let degradation = DegradationReport {
            digest_unverified: divergent_replay,
            ..Default::default()
        };
        let spill_faults_marked = inner.spill_pins() + inner.spill_losses();
        Ok((
            Self {
                inner,
                wal,
                snaps,
                pool,
                dir,
                io,
                checkpoint_every,
                op_seq,
                finalizes_since_snapshot: if divergent_replay { checkpoint_every - 1 } else { 0 },
                stats: StoreStats::default(),
                degradation,
                pending_finalize: None,
                spill_faults_marked,
            },
            report,
        ))
    }

    /// Commits pre-encoded records to the WAL as one atomic
    /// append+fsync, maintaining byte accounting and the degradation
    /// flags. On failure nothing of the group is visible to replay:
    /// the caller's operation did not durably happen.
    fn commit_encoded(&mut self, encoded: &[(u8, Vec<u8>)]) -> Result<(), DurableError> {
        let refs: Vec<(u8, &[u8])> = encoded.iter().map(|(t, p)| (*t, p.as_slice())).collect();
        match self.wal.commit(&refs) {
            Ok(bytes) => {
                self.stats.delta_bytes_last += bytes;
                self.stats.wal_bytes_total += bytes;
                // Space came back (or was never the problem): leave
                // read-only mode.
                self.degradation.read_only = false;
                Ok(())
            }
            Err(e) => {
                self.degradation.wal_commit_failures += 1;
                let cause = if e.is_no_space() {
                    self.degradation.read_only = true;
                    DegradationCause::DiskFull
                } else {
                    DegradationCause::WalCommit
                };
                self.push_event(cause, e.to_string());
                Err(e.into())
            }
        }
    }

    fn push_event(&mut self, cause: DegradationCause, detail: String) {
        if self.degradation.events.len() < MAX_DEGRADATION_EVENTS {
            self.degradation.events.push(DegradationEvent { op_seq: self.op_seq, cause, detail });
        } else {
            self.degradation.dropped_events += 1;
        }
    }

    /// Re-commits a stashed finalize, returning its spans. `Ok(None)`
    /// means nothing was pending. Must succeed before any later record
    /// may be logged — WAL order is apply order.
    fn commit_pending(&mut self) -> Result<Option<Vec<Vec<Span>>>, DurableError> {
        let Some(pending) = self.pending_finalize.take() else {
            return Ok(None);
        };
        match self.commit_encoded(&pending.encoded) {
            Ok(()) => {
                self.stats.finalizes += 1;
                self.after_finalize_commit();
                Ok(Some(pending.out))
            }
            Err(e) => {
                self.pending_finalize = Some(pending);
                Err(e)
            }
        }
    }

    /// Durably logs the batch inputs, then ingests them
    /// (write-ahead: a crash after the log entry replays the batch; a
    /// crash before it loses the batch wholesale — never half of it).
    ///
    /// On a WAL commit failure the batch is *rejected with a typed
    /// error* — no state changes, `op_seq` does not advance, and the
    /// same batch may simply be submitted again. An out-of-space
    /// failure additionally flips the store read-only (see
    /// [`Self::degradation`]) until a commit succeeds.
    pub fn process_batch(
        &mut self,
        batch: Vec<Vec<String>>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        self.stats.delta_bytes_last = 0;
        self.commit_pending()?;
        let record = WalRecord::Batch {
            op_seq: self.op_seq + 1,
            ids: None,
            tweets: batch.clone(),
        };
        self.commit_encoded(&[record.encode()])?;
        self.op_seq += 1;
        self.stats.batches += 1;
        Ok(self.inner.try_process_batch_owned(batch))
    }

    /// [`Self::process_batch`] for id-carrying streams.
    pub fn process_batch_with_ids(
        &mut self,
        batch: Vec<(u64, Vec<String>)>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        self.stats.delta_bytes_last = 0;
        self.commit_pending()?;
        let (ids, tweets): (Vec<u64>, Vec<Vec<String>>) = batch.into_iter().unzip();
        let record = WalRecord::Batch {
            op_seq: self.op_seq + 1,
            ids: Some(ids.clone()),
            tweets: tweets.clone(),
        };
        self.commit_encoded(&[record.encode()])?;
        self.op_seq += 1;
        self.stats.batches += 1;
        Ok(self.inner.try_process_batch_with_ids(ids.into_iter().zip(tweets).collect()))
    }

    /// Runs the Global NER stages, then durably marks the finalize
    /// (with its post-state digest) plus any derived eviction/spill
    /// transitions, and snapshots + compacts every `checkpoint_every`
    /// finalizes.
    ///
    /// Failure handling, rung by rung:
    /// - **WAL commit fails**: the stages already ran, so the records
    ///   and spans are stashed and a typed error returned — the spans
    ///   must not be acknowledged. The next successful durable
    ///   operation re-commits the stashed records first (keeping WAL
    ///   order equal to apply order); retrying `finalize` itself
    ///   returns the stashed spans without re-running the stages.
    /// - **Spill fault during the stages**: resident state diverged
    ///   from fault-free replay, so this and subsequent finalize marks
    ///   are flagged digest-unverifiable and the next snapshot is
    ///   pulled forward to heal (a snapshot re-baselines replay).
    /// - **Snapshot fails**: the finalize still succeeds; the store
    ///   degrades to WAL-only and retries the snapshot next finalize.
    pub fn finalize(&mut self) -> Result<Vec<Vec<Span>>, DurableError> {
        if self.pending_finalize.is_some() {
            return match self.commit_pending()? {
                Some(out) => Ok(out),
                // `pending_finalize` was checked just above; disagreement
                // here is state corruption, surfaced as a typed error.
                None => Err(DurableError::Corrupt("pending finalize vanished during retry")),
            };
        }
        let first_retained_before = self.inner.tweet_base().first_retained();
        self.op_seq += 1;
        let out = self.inner.finalize_with_spill(self.pool.as_mut());

        // Spill faults (pins, losses — whether from these stages or
        // the re-spill after the last snapshot) make resident state
        // diverge from what fault-free replay of this WAL rebuilds:
        // flag the digests and pull the healing snapshot forward.
        let spill_faults = self.inner.spill_pins() + self.inner.spill_losses();
        if spill_faults != self.spill_faults_marked {
            self.spill_faults_marked = spill_faults;
            if !self.degradation.digest_unverified {
                self.degradation.digest_unverified = true;
                self.finalizes_since_snapshot = self.checkpoint_every - 1;
            }
        }
        let flags = if self.degradation.digest_unverified { FINALIZE_FLAG_UNVERIFIED } else { 0 };

        let mut records = vec![WalRecord::Finalize {
            op_seq: self.op_seq,
            watermark: self.inner.scan_watermark() as u64,
            first_retained: self.inner.tweet_base().first_retained() as u64,
            ctrie_version: self.inner.trie_version(),
            surfaces: self.inner.candidate_base().len() as u64,
            mentions: self.inner.candidate_base().total_mentions() as u64,
            digest: self.inner.state_digest(),
            flags,
        }];
        let first_retained_after = self.inner.tweet_base().first_retained();
        if first_retained_after != first_retained_before {
            records.push(WalRecord::Evict {
                op_seq: self.op_seq,
                first_retained: first_retained_after as u64,
            });
        }
        if let Some(pool) = self.pool.as_mut() {
            let spills = pool.take_spill_log();
            if !spills.is_empty() {
                records.push(WalRecord::Spill {
                    op_seq: self.op_seq,
                    count: spills.len() as u64,
                    bytes: spills.iter().map(|(_, b)| b).sum(),
                });
            }
        }
        let encoded: Vec<(u8, Vec<u8>)> = records.iter().map(|r| r.encode()).collect();
        if let Err(e) = self.commit_encoded(&encoded) {
            // State advanced (op_seq stays bumped) but the records are
            // not durable; stash them for re-commit.
            self.pending_finalize = Some(PendingFinalize { encoded, out });
            return Err(e);
        }
        self.stats.finalizes += 1;
        self.after_finalize_commit();
        Ok(out)
    }

    /// Bumps the snapshot cadence counter and, when due, attempts the
    /// snapshot — downgrading a failure to WAL-only degradation
    /// instead of failing the (already durable) finalize. The counter
    /// stays at the threshold on failure, so the next finalize
    /// retries.
    fn after_finalize_commit(&mut self) {
        self.finalizes_since_snapshot += 1;
        if self.finalizes_since_snapshot >= self.checkpoint_every {
            let _ = self.snapshot_now();
        }
    }

    /// Writes a full snapshot at the current `op_seq`, then compacts:
    /// WAL segments at or below the snapshot are dropped and all but
    /// the two newest snapshots pruned. With a spill pool, the state
    /// is rehydrated first so the snapshot is complete, and re-spilled
    /// afterwards (which also compacts the spill file).
    ///
    /// A stashed finalize is re-committed first (WAL order is apply
    /// order); its spans are dropped here — only a retried
    /// [`Self::finalize`] surfaces them.
    pub fn snapshot(&mut self) -> Result<u64, DurableError> {
        self.commit_pending()?;
        self.snapshot_now()
    }

    fn snapshot_now(&mut self) -> Result<u64, DurableError> {
        // Rehydrate so the snapshot is complete. A failure loses the
        // affected surface (its index slot is consumed): record the
        // loss, flag digests unverifiable, and degrade to WAL-only —
        // the snapshot is retried at the next finalize.
        let rehydrated = match self.pool.as_mut() {
            Some(pool) => self.inner.rehydrate_all(pool),
            None => Ok(()),
        };
        if let Err(e) = rehydrated {
            self.degradation.snapshot_failures += 1;
            self.degradation.snapshot_lagging = true;
            self.degradation.rehydrate_losses += 1;
            self.degradation.digest_unverified = true;
            self.push_event(DegradationCause::SnapshotRehydrate, e.to_string());
            return Err(e.into());
        }
        let payload = self.inner.export_state_bytes();
        let bytes = match self.snaps.write(self.op_seq, &payload) {
            Ok(bytes) => bytes,
            Err(e) => {
                self.degradation.snapshot_failures += 1;
                self.degradation.snapshot_lagging = true;
                let cause = if e.is_no_space() {
                    DegradationCause::DiskFull
                } else {
                    DegradationCause::SnapshotWrite
                };
                self.push_event(cause, e.to_string());
                return Err(e.into());
            }
        };
        self.stats.snapshot_bytes_last = bytes;
        self.stats.snapshots += 1;
        // The snapshot is durable: recovery no longer needs the WAL
        // prefix, so WAL-only mode ends and any spill-divergence
        // window is healed (replay now starts from this snapshot).
        self.degradation.snapshot_lagging = false;
        self.degradation.digest_unverified = false;
        self.finalizes_since_snapshot = 0;

        // Compaction: everything at or below the snapshot's op_seq is
        // now redundant. Rotate so the active segment starts fresh,
        // then drop the older segments; keep one fallback snapshot.
        // The audit marker goes into the *new* segment so it survives
        // until the next compaction. All of this is best-effort —
        // replay filters stale records by op_seq, so a failure only
        // costs disk space: degrade, don't fail.
        match self.wal.rotate() {
            Ok(active) => {
                if let Err(e) = self.wal.compact_below(active) {
                    self.degradation.compaction_failures += 1;
                    self.push_event(DegradationCause::Compaction, e.to_string());
                }
            }
            Err(e) => {
                self.degradation.compaction_failures += 1;
                self.push_event(DegradationCause::Compaction, e.to_string());
            }
        }
        let marker = WalRecord::Snapshot { op_seq: self.op_seq, bytes }.encode();
        let _ = self.commit_encoded(&[marker]); // audit-only
        match self.snaps.list() {
            Ok(mut snapshots) => {
                snapshots.sort_unstable();
                if snapshots.len() > 2 {
                    if let Err(e) = self.snaps.prune_below(snapshots[snapshots.len() - 2]) {
                        self.degradation.compaction_failures += 1;
                        self.push_event(DegradationCause::Compaction, e.to_string());
                    }
                }
            }
            Err(e) => {
                self.degradation.compaction_failures += 1;
                self.push_event(DegradationCause::Compaction, e.to_string());
            }
        }

        if let Some(pool) = self.pool.as_mut() {
            pool.take_spill_log(); // re-spills below aren't new deltas
            let mut errors: Vec<TaskError> = Vec::new();
            self.inner.enforce_spill(pool, &mut errors);
            pool.take_spill_log();
            self.inner.push_finalize_errors(errors);
        }
        Ok(bytes)
    }

    /// The wrapped pipeline (read-only — mutating it directly would
    /// desynchronize the WAL).
    pub fn inner(&self) -> &NerGlobalizer<T> {
        &self.inner
    }

    /// Drains fault diagnostics from the wrapped pipeline.
    pub fn take_finalize_errors(&mut self) -> Vec<TaskError> {
        self.inner.take_finalize_errors()
    }

    /// The spill pool, when [`RetentionPolicy::SpillCold`] is active.
    pub fn spill_pool(&self) -> Option<&SpillPool> {
        self.pool.as_ref()
    }

    /// Mutable pool access for the cross-shard merge: peeking a
    /// spilled entry reads through the page cache, which needs `&mut`.
    /// The merge only *reads* entries; it never spills or rehydrates.
    pub(crate) fn spill_pool_mut(&mut self) -> Option<&mut SpillPool> {
        self.pool.as_mut()
    }

    /// The store directory.
    pub fn store_dir(&self) -> &Path {
        &self.dir
    }

    /// The global operation counter (one per batch or finalize).
    pub fn op_seq(&self) -> u64 {
        self.op_seq
    }

    /// Byte accounting for the delta-vs-snapshot comparison.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Typed storage-health report: degradation flags, cumulative
    /// failure counters, spill pin/loss totals and IO retry stats
    /// (see the module docs' degradation ladder).
    pub fn degradation(&self) -> DegradationReport {
        let mut report = self.degradation.clone();
        report.spill_pins = self.inner.spill_pins();
        report.spill_losses = self.inner.spill_losses() + report.rehydrate_losses;
        let io = self.io.stats();
        report.io_retries = io.transient_retries;
        report.io_retry_exhausted = io.retry_exhausted;
        report
    }

    /// Raw retry counters of the shared IO layer.
    pub fn io_stats(&self) -> IoStatsSnapshot {
        self.io.stats()
    }

    /// Whether a finalize ran whose WAL records are not yet durable.
    /// Its spans are returned by the next successful
    /// [`Self::finalize`]; until then they are unacknowledged.
    pub fn has_pending_finalize(&self) -> bool {
        self.pending_finalize.is_some()
    }

    /// Decodes this store's live WAL records (checksum-valid prefix of
    /// the surviving segments), for shard catch-up replication: a
    /// lagging shard replays a donor shard's `Batch`/`Finalize` ops
    /// beyond its own `op_seq` through its normal durable path.
    pub(crate) fn logged_records(&self) -> Result<Vec<WalRecord>, DurableError> {
        let replay = self.wal.replay()?;
        let mut records = Vec::with_capacity(replay.records.len());
        for raw in &replay.records {
            records.push(WalRecord::decode(raw.tag, &raw.payload)?);
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bases::MentionRecord;

    fn entry() -> SurfaceEntry {
        SurfaceEntry {
            mentions: vec![MentionRecord {
                tweet: 3,
                start: 1,
                end: 2,
                local_emb: vec![0.5, -1.5],
                local_type: Some(ngl_text::EntityType::Person),
                trie_version: 4,
            }],
            clusters: Vec::new(),
            clustered: 1,
            classified: 1,
            touched: 9,
        }
    }

    #[test]
    fn wal_records_round_trip() {
        let records = [
            WalRecord::Batch {
                op_seq: 1,
                ids: None,
                tweets: vec![vec!["a".into(), "b".into()], vec![]],
            },
            WalRecord::Batch {
                op_seq: 2,
                ids: Some(vec![7, 8]),
                tweets: vec![vec!["x".into()], vec!["y".into()]],
            },
            WalRecord::Finalize {
                op_seq: 3,
                watermark: 4,
                first_retained: 1,
                ctrie_version: 5,
                surfaces: 6,
                mentions: 7,
                digest: 0xDEAD_BEEF,
                flags: 0,
            },
            WalRecord::Finalize {
                op_seq: 4,
                watermark: 4,
                first_retained: 1,
                ctrie_version: 5,
                surfaces: 6,
                mentions: 7,
                digest: 0xDEAD_BEEF,
                flags: FINALIZE_FLAG_UNVERIFIED,
            },
            WalRecord::Evict { op_seq: 3, first_retained: 2 },
            WalRecord::Spill { op_seq: 3, count: 2, bytes: 1024 },
            WalRecord::Snapshot { op_seq: 3, bytes: 4096 },
        ];
        for r in &records {
            let (tag, payload) = r.encode();
            let back = WalRecord::decode(tag, &payload).expect("decode");
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn finalize_flags_pick_the_record_version() {
        let mut r = WalRecord::Finalize {
            op_seq: 1,
            watermark: 0,
            first_retained: 0,
            ctrie_version: 0,
            surfaces: 0,
            mentions: 0,
            digest: 0,
            flags: 0,
        };
        let (tag, payload) = r.encode();
        assert_eq!(tag, TAG_FINALIZE, "flagless finalize stays v1");
        assert_eq!(payload.len(), 7 * 8);
        if let WalRecord::Finalize { flags, .. } = &mut r {
            *flags = FINALIZE_FLAG_UNVERIFIED;
        }
        let (tag, payload) = r.encode();
        assert_eq!(tag, TAG_FINALIZE_V2, "flagged finalize upgrades to v2");
        assert_eq!(payload.len(), 8 * 8);
        assert_eq!(WalRecord::decode(tag, &payload).expect("decode"), r);
    }

    #[test]
    fn wal_record_decode_rejects_junk() {
        assert!(WalRecord::decode(99, &[]).is_err());
        let (tag, payload) = WalRecord::Evict { op_seq: 1, first_retained: 0 }.encode();
        // Truncated payload.
        assert!(WalRecord::decode(tag, &payload[..payload.len() - 1]).is_err());
        // Trailing bytes.
        let mut long = payload.clone();
        long.push(0);
        assert!(WalRecord::decode(tag, &long).is_err());
        // Implausible batch count.
        let (tag, payload) = WalRecord::Batch { op_seq: 1, ids: None, tweets: vec![] }.encode();
        let mut bad = payload.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(WalRecord::decode(tag, &bad).is_err());
    }

    #[test]
    fn spill_pool_round_trips_take_and_peek() {
        let dir = std::env::temp_dir().join(format!("ngl-spillpool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut pool = SpillPool::create(dir.join("spill.cold")).expect("create");
        assert!(pool.is_empty());

        let e = entry();
        let cache = vec![((3usize, 1usize, 2usize), vec![0.5f32, -1.5])];
        pool.spill("beshear", &e, &cache).expect("spill");
        assert!(pool.contains("beshear"));
        assert_eq!(pool.surfaces(), vec!["beshear".to_string()]);
        assert_eq!(pool.take_spill_log().len(), 1);

        let peeked = pool.peek("beshear").expect("peek io").expect("present");
        assert_eq!(peeked.mentions.len(), 1);
        assert_eq!(peeked.touched, 9);
        assert!(pool.contains("beshear"), "peek must not consume");

        let (back, back_cache) = pool.take("beshear").expect("take io").expect("present");
        assert_eq!(back.mentions[0].trie_version, 4);
        assert_eq!(back_cache, cache);
        assert!(!pool.contains("beshear"));
        assert!(pool.take("beshear").expect("missing ok").is_none());

        pool.reset().expect("reset");
        assert_eq!(pool.file_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
