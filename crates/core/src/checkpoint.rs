//! Crash-consistent pipeline checkpoints.
//!
//! A [`PipelineCheckpoint`] snapshots everything `NerGlobalizer` has
//! accumulated from the stream — the CTrie (surfaces + version), the
//! tweet store (including its eviction offset), the candidate store
//! with per-surface progress counts, the scan watermark, the mention
//! cache and the consumed tweet ids — so a restarted process resumes
//! mid-stream instead of losing position and re-finalizing from
//! scratch. The model components (encoder, phrase embedder,
//! classifier) are serialized separately by `GlobalizerBundle`, which
//! embeds this checkpoint in its v2 layout.
//!
//! The wire format is the workspace's little-endian `ngl_nn::codec`
//! style: explicit field-by-field layout, length-prefixed collections,
//! no self-describing metadata. The `HashMap`-backed mention cache is
//! written in sorted key order, so serialization is canonical — equal
//! states produce equal bytes.
//!
//! The CTrie is serialized as its surface list plus its version
//! counter, relying on the trie invariant that `version() == len()`
//! (both bump exactly once per newly-inserted surface and never
//! decrease): re-inserting the surfaces reproduces the version, which
//! [`get_checkpoint`] verifies.
//!
//! The codec is **versioned** alongside the `GlobalizerBundle` layout:
//! v4 (current) stores mention and cluster embeddings through the
//! quantized codec (`ngl_nn::codec::put_quantized_f32_slice`, one `i8`
//! per element plus a power-of-two scale, ~4× smaller at rest); v3
//! added the per-mention `trie_version` stamp, the per-surface
//! `touched` LRU stamp and the `SpillCold` retention tag; v2
//! checkpoints load with both stamps defaulting to 0. Writers take the
//! target version explicitly so migration tests can still produce
//! older bytes. Because the pipeline canonicalizes every embedding at
//! creation (see `ngl_nn::kernels::canonicalize`), the v4 encoding is
//! lossless and canonical: decode→re-encode is byte-identical, which
//! the durable snapshot digests rely on.

use std::collections::{BTreeSet, HashMap};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ngl_ctrie::CTrie;
use ngl_nn::codec::{
    get_f32, get_f32_vec, get_matrix, get_u64, put_f32, put_f32_slice, put_matrix, put_u64,
    CodecError,
};
use ngl_text::{EntityType, Span};

use crate::bases::{
    CandidateBase, CandidateCluster, MentionRecord, SurfaceEntry, TweetBase, TweetRecord,
};
use crate::pipeline::{AblationMode, GlobalizerConfig, RetentionPolicy};

/// A snapshot of the pipeline's stream state (see the module docs).
/// Produced by `NerGlobalizer::export_state`, consumed by
/// `NerGlobalizer::import_state`.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// The pipeline configuration active at snapshot time.
    pub cfg: GlobalizerConfig,
    /// The candidate surface trie.
    pub ctrie: CTrie,
    /// The tweet store (retained records + eviction offset).
    pub tweets: TweetBase,
    /// The candidate store with per-surface progress counts.
    pub candidates: CandidateBase,
    /// How many stream positions the mention scan has covered.
    pub scanned_tweets: usize,
    /// The CTrie version the scan last ran with.
    pub scanned_version: u64,
    /// Cached span embeddings by `(tweet, start, end)`.
    pub mention_cache: HashMap<(usize, usize, usize), Vec<f32>>,
    /// Tweet ids already consumed from the stream.
    pub seen_ids: BTreeSet<u64>,
}

/// Checkpoint layout with quantized embedding storage (bundle v4,
/// current).
pub(crate) const CK_V4: u32 = 4;
/// Checkpoint layout with per-mention trie versions and per-surface
/// touch stamps, embeddings stored as full `f32` (bundle v3).
pub(crate) const CK_V3: u32 = 3;
/// Legacy checkpoint layout without the stamps (bundle v2).
pub(crate) const CK_V2: u32 = 2;

/// Embedding-slice codec for checkpoint version `v`: quantized from v4
/// on, full `f32` before.
fn put_emb(buf: &mut BytesMut, v: u32, emb: &[f32]) {
    if v >= CK_V4 {
        ngl_nn::codec::put_quantized_f32_slice(buf, emb);
    } else {
        put_f32_slice(buf, emb);
    }
}

fn get_emb(buf: &mut Bytes, v: u32) -> Result<Vec<f32>, CodecError> {
    if v >= CK_V4 {
        ngl_nn::codec::get_quantized_f32_vec(buf)
    } else {
        get_f32_vec(buf)
    }
}

// ---- primitive helpers ------------------------------------------------

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = get_u64(buf)? as usize;
    if len > buf.remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::Invalid("invalid utf-8 string"))
}

/// Length prefix with a plausibility bound: `min_elem_bytes` is a lower
/// bound on the encoded size of one element, so a corrupted count can
/// never trigger a huge allocation.
fn get_count(buf: &mut Bytes, min_elem_bytes: usize) -> Result<usize, CodecError> {
    let n = get_u64(buf)? as usize;
    if n.saturating_mul(min_elem_bytes) > buf.remaining() {
        return Err(CodecError::Invalid("implausible element count"));
    }
    Ok(n)
}

fn put_opt_type(buf: &mut BytesMut, t: Option<EntityType>) {
    put_u64(buf, match t {
        None => 0,
        Some(ty) => 1 + ty.index() as u64,
    });
}

fn get_opt_type(buf: &mut Bytes) -> Result<Option<EntityType>, CodecError> {
    match get_u64(buf)? {
        0 => Ok(None),
        v if (v as usize) <= EntityType::COUNT => {
            Ok(Some(EntityType::from_index(v as usize - 1)))
        }
        _ => Err(CodecError::Invalid("entity type tag out of range")),
    }
}

/// `None` = 0, `Some(None)` = 1, `Some(Some(ty))` = 2 + index.
fn put_label(buf: &mut BytesMut, label: Option<Option<EntityType>>) {
    put_u64(buf, match label {
        None => 0,
        Some(None) => 1,
        Some(Some(ty)) => 2 + ty.index() as u64,
    });
}

fn get_label(buf: &mut Bytes) -> Result<Option<Option<EntityType>>, CodecError> {
    match get_u64(buf)? {
        0 => Ok(None),
        1 => Ok(Some(None)),
        v if (v as usize) <= 1 + EntityType::COUNT => {
            Ok(Some(Some(EntityType::from_index(v as usize - 2))))
        }
        _ => Err(CodecError::Invalid("cluster label tag out of range")),
    }
}

// ---- component codecs -------------------------------------------------

fn put_spans(buf: &mut BytesMut, spans: &[Span]) {
    put_u64(buf, spans.len() as u64);
    for s in spans {
        put_u64(buf, s.start as u64);
        put_u64(buf, s.end as u64);
        put_u64(buf, s.ty.index() as u64);
    }
}

fn get_spans(buf: &mut Bytes) -> Result<Vec<Span>, CodecError> {
    let n = get_count(buf, 24)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let start = get_u64(buf)? as usize;
        let end = get_u64(buf)? as usize;
        let ty = get_u64(buf)? as usize;
        if start >= end || ty >= EntityType::COUNT {
            return Err(CodecError::Invalid("malformed span"));
        }
        spans.push(Span::new(start, end, EntityType::from_index(ty)));
    }
    Ok(spans)
}

fn put_mention(buf: &mut BytesMut, m: &MentionRecord, v: u32) {
    put_u64(buf, m.tweet as u64);
    put_u64(buf, m.start as u64);
    put_u64(buf, m.end as u64);
    put_emb(buf, v, &m.local_emb);
    put_opt_type(buf, m.local_type);
    if v >= CK_V3 {
        put_u64(buf, m.trie_version);
    }
}

fn get_mention(buf: &mut Bytes, v: u32) -> Result<MentionRecord, CodecError> {
    Ok(MentionRecord {
        tweet: get_u64(buf)? as usize,
        start: get_u64(buf)? as usize,
        end: get_u64(buf)? as usize,
        local_emb: get_emb(buf, v)?,
        local_type: get_opt_type(buf)?,
        trie_version: if v >= CK_V3 { get_u64(buf)? } else { 0 },
    })
}

fn put_cluster(buf: &mut BytesMut, c: &CandidateCluster, v: u32) {
    put_u64(buf, c.members.len() as u64);
    for &m in &c.members {
        put_u64(buf, m as u64);
    }
    put_emb(buf, v, &c.global_emb);
    put_label(buf, c.label);
}

fn get_cluster(buf: &mut Bytes, v: u32) -> Result<CandidateCluster, CodecError> {
    let n = get_count(buf, 8)?;
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(get_u64(buf)? as usize);
    }
    Ok(CandidateCluster { members, global_emb: get_emb(buf, v)?, label: get_label(buf)? })
}

pub(crate) fn put_entry(buf: &mut BytesMut, e: &SurfaceEntry, v: u32) {
    put_u64(buf, e.mentions.len() as u64);
    for m in &e.mentions {
        put_mention(buf, m, v);
    }
    put_u64(buf, e.clusters.len() as u64);
    for c in &e.clusters {
        put_cluster(buf, c, v);
    }
    put_u64(buf, e.clustered as u64);
    put_u64(buf, e.classified as u64);
    if v >= CK_V3 {
        put_u64(buf, e.touched);
    }
}

pub(crate) fn get_entry(buf: &mut Bytes, v: u32) -> Result<SurfaceEntry, CodecError> {
    let n = get_count(buf, 40)?;
    let mut mentions = Vec::with_capacity(n);
    for _ in 0..n {
        mentions.push(get_mention(buf, v)?);
    }
    let n = get_count(buf, 24)?;
    let mut clusters = Vec::with_capacity(n);
    for _ in 0..n {
        clusters.push(get_cluster(buf, v)?);
    }
    Ok(SurfaceEntry {
        mentions,
        clusters,
        clustered: get_u64(buf)? as usize,
        classified: get_u64(buf)? as usize,
        touched: if v >= CK_V3 { get_u64(buf)? } else { 0 },
    })
}

fn put_candidates(buf: &mut BytesMut, cb: &CandidateBase, v: u32) {
    put_u64(buf, cb.len() as u64);
    for (surface, entry) in cb.iter() {
        put_str(buf, surface);
        put_entry(buf, entry, v);
    }
}

fn get_candidates(buf: &mut Bytes, v: u32) -> Result<CandidateBase, CodecError> {
    let n = get_count(buf, 24)?;
    let mut cb = CandidateBase::new();
    for _ in 0..n {
        let surface = get_str(buf)?;
        let entry = get_entry(buf, v)?;
        cb.insert_entry(surface, entry);
    }
    Ok(cb)
}

fn put_tweet(buf: &mut BytesMut, t: &TweetRecord) {
    put_u64(buf, t.tokens.len() as u64);
    for tok in &t.tokens {
        put_str(buf, tok);
    }
    put_matrix(buf, &t.embeddings);
    put_spans(buf, &t.local_spans);
}

fn get_tweet(buf: &mut Bytes) -> Result<TweetRecord, CodecError> {
    let n = get_count(buf, 8)?;
    let mut tokens = Vec::with_capacity(n);
    for _ in 0..n {
        tokens.push(get_str(buf)?);
    }
    Ok(TweetRecord { tokens, embeddings: get_matrix(buf)?, local_spans: get_spans(buf)? })
}

fn put_tweets(buf: &mut BytesMut, tb: &TweetBase) {
    put_u64(buf, tb.first_retained() as u64);
    put_u64(buf, tb.retained() as u64);
    for (_, record) in tb.iter_indexed() {
        put_tweet(buf, record);
    }
}

fn get_tweets(buf: &mut Bytes) -> Result<TweetBase, CodecError> {
    let start = get_u64(buf)? as usize;
    let n = get_count(buf, 32)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(get_tweet(buf)?);
    }
    Ok(TweetBase::from_parts(start, records))
}

fn put_ctrie(buf: &mut BytesMut, trie: &CTrie) {
    put_u64(buf, trie.version());
    let surfaces = trie.surfaces();
    put_u64(buf, surfaces.len() as u64);
    for s in &surfaces {
        put_str(buf, s);
    }
}

fn get_ctrie(buf: &mut Bytes) -> Result<CTrie, CodecError> {
    let version = get_u64(buf)?;
    let n = get_count(buf, 8)?;
    let mut trie = CTrie::new();
    for _ in 0..n {
        let surface = get_str(buf)?;
        let tokens: Vec<&str> = surface.split(' ').collect();
        trie.insert(&tokens);
    }
    // Surfaces are re-inserted one by one, and the trie bumps its
    // version exactly once per new surface — a reconstructed trie that
    // doesn't land on the recorded version means the surface list was
    // corrupted (duplicates, empties).
    if trie.version() != version {
        return Err(CodecError::Invalid("ctrie version mismatch after rebuild"));
    }
    Ok(trie)
}

fn put_config(buf: &mut BytesMut, cfg: &GlobalizerConfig) {
    put_u64(buf, cfg.max_mention_len as u64);
    put_f32(buf, cfg.cluster_threshold);
    put_f32(buf, cfg.min_confidence);
    put_u64(buf, match cfg.ablation {
        AblationMode::LocalOnly => 0,
        AblationMode::MentionExtraction => 1,
        AblationMode::LocalClassifier => 2,
        AblationMode::FullGlobal => 3,
    });
    let (tag, arg) = match cfg.retention {
        RetentionPolicy::Unbounded => (0u64, 0u64),
        RetentionPolicy::MaxTweets(n) => (1, n as u64),
        RetentionPolicy::MaxBytes(b) => (2, b as u64),
        RetentionPolicy::SpillCold(b) => (3, b as u64),
    };
    put_u64(buf, tag);
    put_u64(buf, arg);
    put_u64(buf, cfg.max_tweet_tokens as u64);
    put_u64(buf, cfg.reject_empty as u64);
}

fn get_config(buf: &mut Bytes) -> Result<GlobalizerConfig, CodecError> {
    let max_mention_len = get_u64(buf)? as usize;
    let cluster_threshold = get_f32(buf)?;
    let min_confidence = get_f32(buf)?;
    let ablation = match get_u64(buf)? {
        0 => AblationMode::LocalOnly,
        1 => AblationMode::MentionExtraction,
        2 => AblationMode::LocalClassifier,
        3 => AblationMode::FullGlobal,
        _ => return Err(CodecError::Invalid("ablation tag out of range")),
    };
    let tag = get_u64(buf)?;
    let arg = get_u64(buf)?;
    let retention = match tag {
        0 => RetentionPolicy::Unbounded,
        1 => RetentionPolicy::MaxTweets(arg as usize),
        2 => RetentionPolicy::MaxBytes(arg as usize),
        3 => RetentionPolicy::SpillCold(arg as usize),
        _ => return Err(CodecError::Invalid("retention tag out of range")),
    };
    let max_tweet_tokens = get_u64(buf)? as usize;
    let reject_empty = match get_u64(buf)? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Invalid("reject_empty flag out of range")),
    };
    Ok(GlobalizerConfig {
        max_mention_len,
        cluster_threshold,
        min_confidence,
        ablation,
        retention,
        max_tweet_tokens,
        reject_empty,
        // The pool policy is a process-local construction choice, not
        // stream state: it is never written (the wire format predates
        // it) and the opener re-applies its own policy after recovery.
        pool: crate::pipeline::PoolPolicy::default(),
    })
}

// ---- checkpoint codec -------------------------------------------------

/// Appends the checkpoint to `buf` in the canonical layout for codec
/// version `v` ([`CK_V2`], [`CK_V3`] or [`CK_V4`]).
pub(crate) fn put_checkpoint(buf: &mut BytesMut, ck: &PipelineCheckpoint, v: u32) {
    put_config(buf, &ck.cfg);
    put_ctrie(buf, &ck.ctrie);
    put_tweets(buf, &ck.tweets);
    put_candidates(buf, &ck.candidates, v);
    put_u64(buf, ck.scanned_tweets as u64);
    put_u64(buf, ck.scanned_version);
    let mut keys: Vec<&(usize, usize, usize)> = ck.mention_cache.keys().collect();
    keys.sort();
    put_u64(buf, keys.len() as u64);
    for k in keys {
        put_u64(buf, k.0 as u64);
        put_u64(buf, k.1 as u64);
        put_u64(buf, k.2 as u64);
        put_emb(buf, v, &ck.mention_cache[k]);
    }
    put_u64(buf, ck.seen_ids.len() as u64);
    for &id in &ck.seen_ids {
        put_u64(buf, id);
    }
}

/// Parses a checkpoint written by [`put_checkpoint`] at codec
/// version `v`.
pub(crate) fn get_checkpoint(buf: &mut Bytes, v: u32) -> Result<PipelineCheckpoint, CodecError> {
    let cfg = get_config(buf)?;
    let ctrie = get_ctrie(buf)?;
    let tweets = get_tweets(buf)?;
    let candidates = get_candidates(buf, v)?;
    let scanned_tweets = get_u64(buf)? as usize;
    let scanned_version = get_u64(buf)?;
    let n = get_count(buf, 32)?;
    let mut mention_cache = HashMap::with_capacity(n);
    for _ in 0..n {
        let t = get_u64(buf)? as usize;
        let s = get_u64(buf)? as usize;
        let e = get_u64(buf)? as usize;
        mention_cache.insert((t, s, e), get_emb(buf, v)?);
    }
    let n = get_count(buf, 8)?;
    let mut seen_ids = BTreeSet::new();
    for _ in 0..n {
        seen_ids.insert(get_u64(buf)?);
    }
    Ok(PipelineCheckpoint {
        cfg,
        ctrie,
        tweets,
        candidates,
        scanned_tweets,
        scanned_version,
        mention_cache,
        seen_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_nn::Matrix;

    fn sample() -> PipelineCheckpoint {
        let mut ctrie = CTrie::new();
        ctrie.insert(&["beshear"]);
        ctrie.insert(&["new", "york"]);
        let mut tweets = TweetBase::new();
        tweets.push(TweetRecord {
            tokens: vec!["saw".into(), "Beshear".into()],
            embeddings: Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            local_spans: vec![Span::new(1, 2, EntityType::Person)],
        });
        tweets.push(TweetRecord {
            tokens: vec!["in".into(), "new".into(), "york".into()],
            embeddings: Matrix::from_vec(3, 3, vec![0.0; 9]),
            local_spans: vec![],
        });
        tweets.evict_front();
        let mut candidates = CandidateBase::new();
        candidates.add_mention("beshear", MentionRecord {
            tweet: 0,
            start: 1,
            end: 2,
            local_emb: vec![1.0, -2.5, 3.25],
            local_type: Some(EntityType::Person),
            trie_version: 2,
        });
        let entry = candidates.get_mut("beshear").expect("entry");
        entry.clusters.push(CandidateCluster {
            members: vec![0],
            global_emb: vec![0.5, 0.5, 0.5],
            label: Some(Some(EntityType::Person)),
        });
        entry.clustered = 1;
        entry.classified = 1;
        let mut mention_cache = HashMap::new();
        mention_cache.insert((0, 1, 2), vec![1.0, -2.5, 3.25]);
        let mut seen_ids = BTreeSet::new();
        seen_ids.insert(7);
        seen_ids.insert(42);
        PipelineCheckpoint {
            cfg: GlobalizerConfig {
                retention: RetentionPolicy::MaxTweets(100),
                reject_empty: true,
                ..Default::default()
            },
            ctrie,
            tweets,
            candidates,
            scanned_tweets: 2,
            scanned_version: 2,
            mention_cache,
            seen_ids,
        }
    }

    fn to_bytes(ck: &PipelineCheckpoint, v: u32) -> Bytes {
        let mut buf = BytesMut::new();
        put_checkpoint(&mut buf, ck, v);
        buf.freeze()
    }

    #[test]
    fn round_trip_is_canonical() {
        let ck = sample();
        let bytes = to_bytes(&ck, CK_V3);
        let mut cursor = bytes.clone();
        let back = get_checkpoint(&mut cursor, CK_V3).expect("parse");
        assert_eq!(cursor.remaining(), 0, "no trailing bytes");
        // Canonical serialization ⇒ byte equality is deep equality.
        assert_eq!(to_bytes(&back, CK_V3), bytes);
        assert_eq!(back.tweets.first_retained(), 1);
        assert_eq!(back.tweets.len(), 2);
        assert_eq!(back.ctrie.version(), 2);
        assert_eq!(back.cfg.retention, RetentionPolicy::MaxTweets(100));
        assert!(back.cfg.reject_empty);
        assert_eq!(back.seen_ids.len(), 2);
        let entry = back.candidates.get("beshear").expect("entry");
        assert_eq!(entry.mentions[0].trie_version, 2);
        assert_eq!(entry.touched, 1);
    }

    #[test]
    fn v2_layout_omits_the_stamps_and_loads_them_as_zero() {
        let ck = sample();
        let v2 = to_bytes(&ck, CK_V2);
        let v3 = to_bytes(&ck, CK_V3);
        // One mention + one entry each drop a u64 stamp in v2.
        assert_eq!(v2.len() + 16, v3.len());
        let mut cursor = v2.clone();
        let back = get_checkpoint(&mut cursor, CK_V2).expect("parse v2");
        assert_eq!(cursor.remaining(), 0, "no trailing bytes");
        let entry = back.candidates.get("beshear").expect("entry");
        assert_eq!(entry.mentions[0].trie_version, 0);
        assert_eq!(entry.touched, 0);
    }

    #[test]
    fn v4_round_trip_is_canonical_and_smaller() {
        let ck = sample();
        let v4 = to_bytes(&ck, CK_V4);
        let v3 = to_bytes(&ck, CK_V3);
        assert!(v4.len() < v3.len(), "quantized layout must shrink: {} vs {}", v4.len(), v3.len());
        let mut cursor = v4.clone();
        let back = get_checkpoint(&mut cursor, CK_V4).expect("parse v4");
        assert_eq!(cursor.remaining(), 0, "no trailing bytes");
        // Decoded embeddings are the quantization round-trip of the
        // originals: re-encoding them is byte-identical even though the
        // sample's raw values were not canonical.
        assert_eq!(to_bytes(&back, CK_V4), v4);
        let entry = back.candidates.get("beshear").expect("entry");
        let orig = &ck.candidates.get("beshear").expect("entry").mentions[0].local_emb;
        let got = &entry.mentions[0].local_emb;
        let scale = ngl_nn::QuantizedVec::quantize(orig).scale;
        for (a, b) in orig.iter().zip(got) {
            assert!((a - b).abs() <= scale * 0.5, "{a} vs {b}");
        }
        // Canonical (pre-round-tripped) embeddings survive v4 exactly.
        let mut canon = ck.clone();
        for (_, e) in canon.candidates.iter_mut() {
            for m in &mut e.mentions {
                ngl_nn::kernels::canonicalize(&mut m.local_emb);
            }
            for c in &mut e.clusters {
                ngl_nn::kernels::canonicalize(&mut c.global_emb);
            }
        }
        for v in canon.mention_cache.values_mut() {
            ngl_nn::kernels::canonicalize(v);
        }
        let back =
            get_checkpoint(&mut to_bytes(&canon, CK_V4).clone(), CK_V4).expect("parse canon");
        assert_eq!(
            back.candidates.get("beshear").expect("entry").mentions[0].local_emb,
            canon.candidates.get("beshear").expect("entry").mentions[0].local_emb,
            "canonical embeddings are stored losslessly"
        );
    }

    #[test]
    fn v4_truncation_fails_cleanly_everywhere() {
        let bytes = to_bytes(&sample(), CK_V4);
        for cut in 0..bytes.len() {
            let mut truncated = bytes.slice(0..cut);
            assert!(
                get_checkpoint(&mut truncated, CK_V4).is_err(),
                "cut at {cut} of {} parsed",
                bytes.len()
            );
        }
    }

    #[test]
    fn spill_cold_retention_round_trips() {
        let mut ck = sample();
        ck.cfg.retention = RetentionPolicy::SpillCold(1 << 20);
        let bytes = to_bytes(&ck, CK_V3);
        let back = get_checkpoint(&mut bytes.clone(), CK_V3).expect("parse");
        assert_eq!(back.cfg.retention, RetentionPolicy::SpillCold(1 << 20));
    }

    #[test]
    fn truncation_fails_cleanly_everywhere() {
        let bytes = to_bytes(&sample(), CK_V3);
        for cut in 0..bytes.len() {
            let mut truncated = bytes.slice(0..cut);
            assert!(
                get_checkpoint(&mut truncated, CK_V3).is_err(),
                "cut at {cut} of {} parsed",
                bytes.len()
            );
        }
    }

    #[test]
    fn implausible_counts_are_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        // A config followed by a trie claiming u64::MAX surfaces.
        put_config(&mut buf, &GlobalizerConfig::default());
        put_u64(&mut buf, 0); // trie version
        put_u64(&mut buf, u64::MAX); // surface count
        let mut bytes = buf.freeze();
        assert!(get_checkpoint(&mut bytes, CK_V3).is_err());
    }
}
