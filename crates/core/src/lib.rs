//! # ngl-core
//!
//! The paper's primary contribution: the **NER Globalizer** pipeline.
//!
//! An execution cycle (§III) runs per batch of stream tweets:
//!
//! 1. **Local NER** — a pluggable [`ngl_encoder::ContextualTagger`]
//!    tags each sentence, seeding candidate surface forms into the
//!    [`ngl_ctrie::CTrie`] and producing entity-aware token embeddings.
//! 2. **Mention extraction** (§V-A) — a CTrie scan recovers *all*
//!    mentions of the seeded surfaces, including ones Local NER missed.
//! 3. **Phrase embedding** (§V-B) — the contrastively trained
//!    [`PhraseEmbedder`] turns each mention's token embeddings into one
//!    fixed-size local mention embedding.
//! 4. **Candidate clustering** (§V-C) — mentions of each surface form
//!    are clustered (cosine agglomerative) to split ambiguous surfaces
//!    ("washington" the president vs the state) into distinct candidates.
//! 5. **Entity classification** (§V-D) — a learned attention pooling
//!    aggregates each cluster into a **global candidate embedding**, and
//!    the [`EntityClassifier`] labels it as one of L entity types or
//!    non-entity. Mentions of validated candidates become the final NER
//!    output.
//!
//! [`train::train_globalizer`] reproduces the §VI training procedure
//! (triplet / soft-NN mining on a D5-style stream), and
//! [`pipeline::NerGlobalizer`] runs the whole thing incrementally with
//! per-stage timing and the Figure 3 ablation modes.

#![allow(clippy::needless_range_loop)] // index loops are idiomatic in the numeric kernels

#![forbid(unsafe_code)]

pub mod bases;
pub mod checkpoint;
pub mod classifier;
pub mod durable;
pub mod mining;
pub mod persist;
pub mod phrase;
pub mod pipeline;
pub mod pooling;
pub mod shard;
pub mod train;

pub use bases::{CandidateBase, CandidateCluster, MentionRecord, SurfaceEntry, TweetBase};
pub use checkpoint::PipelineCheckpoint;
pub use classifier::{CandidateExample, ClassifierConfig, EntityClassifier};
pub use durable::{
    model_fingerprint, DegradationCause, DegradationEvent, DegradationMode, DegradationReport,
    DurableError, DurableGlobalizer, RecoveryReport, SpillPool, StoreStats,
    MAX_DEGRADATION_EVENTS, SPILL_CACHE_ENV,
};
pub use ngl_store::{IoStatsSnapshot, SharedPageCache};
pub use persist::{GlobalizerBundle, PersistError};
pub use phrase::{PhraseEmbedder, PhraseEmbedderConfig, PhraseLoss};
pub use pipeline::{
    AblationMode, BatchOutput, BatchReport, ClusterSummary, GlobalizerConfig, NerGlobalizer,
    PoolPolicy, QueryTag, RetentionPolicy, StageTimings, SurfaceSummary,
};
pub use pooling::AttentivePooling;
pub use shard::{shard_of_surface, ShardedGlobalizer, ShardedRecoveryReport};
pub use train::{train_globalizer, GlobalizerTrainingConfig, GlobalizerTrainingReport};
