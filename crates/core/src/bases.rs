//! The bookkeeping stores of the pipeline: **TweetBase** (§IV) holds one
//! record per processed tweet sentence, **CandidateBase** (§V-D) holds
//! one entry per discovered candidate surface form with its mentions,
//! clusters and (eventually) cluster labels.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ngl_nn::Matrix;
use ngl_text::{EntityType, Span};

/// A single extracted mention occurrence with its local embedding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MentionRecord {
    /// Index of the tweet in the [`TweetBase`].
    pub tweet: usize,
    /// First token of the mention.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
    /// Local mention embedding from the Phrase Embedder.
    pub local_emb: Vec<f32>,
    /// Type Local NER assigned to an overlapping detection, if any
    /// (used by the mention-extraction ablation's majority vote).
    pub local_type: Option<EntityType>,
    /// The [`ngl_ctrie::CTrie`] version this mention was extracted
    /// with. Retained mentions are re-extracted (and re-stamped) on
    /// every version-bump rebuild, but mentions of *evicted* tweets are
    /// frozen — a frozen mention whose version trails the live trie was
    /// extracted with boundaries the current surface set might not
    /// reproduce, and is reported stale by
    /// `NerGlobalizer::stale_frozen_mentions`.
    #[serde(default)]
    pub trie_version: u64,
}

impl MentionRecord {
    /// Rough heap footprint in bytes (embedding floats + struct), the
    /// unit of account for `RetentionPolicy::SpillCold`.
    pub fn approx_bytes(&self) -> usize {
        self.local_emb.len() * std::mem::size_of::<f32>() + std::mem::size_of::<Self>()
    }
}

/// A candidate cluster: one (surface form, entity) hypothesis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateCluster {
    /// Indices into the owning entry's mention list.
    pub members: Vec<usize>,
    /// Global candidate embedding (Eq. 8), filled at classification.
    pub global_emb: Vec<f32>,
    /// Classifier verdict: `None` = not yet classified;
    /// `Some(None)` = non-entity; `Some(Some(ty))` = entity of type `ty`.
    pub label: Option<Option<EntityType>>,
}

/// All knowledge about one candidate surface form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SurfaceEntry {
    /// Every extracted mention of the surface, in discovery order.
    pub mentions: Vec<MentionRecord>,
    /// Current candidate clusters over those mentions.
    pub clusters: Vec<CandidateCluster>,
    /// Mention count `clusters` was last computed over. Mentions only
    /// ever append between candidate-store rebuilds, so an entry whose
    /// count still matches is untouched and its clusters (a pure
    /// function of the mention set) can be reused verbatim by the next
    /// finalize.
    #[serde(default)]
    pub clustered: usize,
    /// Mention count the cluster labels/global embeddings were last
    /// computed over (same skip logic as `clustered`).
    #[serde(default)]
    pub classified: usize,
    /// Logical timestamp of the last touch (mention append or spill
    /// rehydration), from the owning [`CandidateBase`]'s touch clock.
    /// `RetentionPolicy::SpillCold` evicts the smallest-`touched`
    /// (least-recently-matched) entries first.
    #[serde(default)]
    pub touched: u64,
}

/// Mention count at which a surface counts as *giant* at finalize.
/// Giant surfaces dominate the per-surface fan-out tail (their O(n²)
/// linkage scan occupies one worker for the whole batch), so the
/// pipeline runs them with the executor parallelizing *inside* the
/// clustering and classification instead of across surfaces.
pub const GIANT_SURFACE_MENTIONS: usize = 128;

impl SurfaceEntry {
    /// Whether this surface should be processed with intra-surface
    /// parallelism at finalize (see [`GIANT_SURFACE_MENTIONS`]).
    pub fn is_giant(&self) -> bool {
        self.mentions.len() >= GIANT_SURFACE_MENTIONS
    }

    /// Whether the mention set changed since clusters were computed.
    pub fn needs_recluster(&self) -> bool {
        self.clustered != self.mentions.len()
    }

    /// Whether the mention set changed since labels were computed.
    pub fn needs_reclassify(&self) -> bool {
        self.classified != self.mentions.len()
    }

    /// Forces the next finalize to recompute this entry even if the
    /// mention *count* is coincidentally unchanged (used after rebuilds
    /// that may replace mentions rather than append).
    pub fn mark_dirty(&mut self) {
        self.clustered = usize::MAX;
        self.classified = usize::MAX;
    }

    /// Whether clusters *and* labels are current for the mention set —
    /// only clean entries are eligible for cold spill (a dirty entry
    /// still owes the next finalize a recompute).
    pub fn is_clean(&self) -> bool {
        !self.needs_recluster() && !self.needs_reclassify()
    }

    /// Rough heap footprint of the entry in bytes (mentions, clusters,
    /// struct overhead) — the resident-memory measure bounded by
    /// `RetentionPolicy::SpillCold`. Stable and monotone, like
    /// [`TweetRecord::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        let mention_bytes: usize = self.mentions.iter().map(MentionRecord::approx_bytes).sum();
        let cluster_bytes: usize = self
            .clusters
            .iter()
            .map(|c| {
                c.members.len() * std::mem::size_of::<usize>()
                    + c.global_emb.len() * std::mem::size_of::<f32>()
                    + std::mem::size_of::<CandidateCluster>()
            })
            .sum();
        mention_bytes + cluster_bytes + std::mem::size_of::<Self>()
    }
}

/// Candidate store keyed by folded surface form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CandidateBase {
    surfaces: BTreeMap<String, SurfaceEntry>,
    /// Monotone logical clock stamping [`SurfaceEntry::touched`].
    /// Advanced on every mention append (sequential in tweet order, so
    /// stamps are identical across worker counts) and on every spill
    /// rehydration.
    #[serde(default)]
    clock: u64,
}

impl CandidateBase {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a mention of `surface`, returning its index in the entry.
    /// Bumps the entry's `touched` stamp — the surface was just matched.
    pub fn add_mention(&mut self, surface: &str, record: MentionRecord) -> usize {
        self.clock += 1;
        let entry = self.surfaces.entry(surface.to_string()).or_default();
        entry.touched = self.clock;
        entry.mentions.push(record);
        entry.mentions.len() - 1
    }

    /// Advances the touch clock for a mention admitted *elsewhere* (a
    /// shard-ownership filter skipping a non-owned surface). Keeps the
    /// stamp sequence of a sharded pipeline identical to the unsharded
    /// one: every scan-ordered mention consumes exactly one tick
    /// whether or not this base stores it, so the `touched` values of
    /// the entries it *does* own match the 1-shard run bit for bit.
    pub(crate) fn touch_skip(&mut self) {
        self.clock += 1;
    }

    /// The entry of a surface, if known.
    pub fn get(&self, surface: &str) -> Option<&SurfaceEntry> {
        self.surfaces.get(surface)
    }

    /// Mutable entry access.
    pub fn get_mut(&mut self, surface: &str) -> Option<&mut SurfaceEntry> {
        self.surfaces.get_mut(surface)
    }

    /// Iterates over `(surface, entry)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SurfaceEntry)> {
        self.surfaces.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut SurfaceEntry)> {
        self.surfaces.iter_mut()
    }

    /// Number of distinct surface forms.
    pub fn len(&self) -> usize {
        self.surfaces.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.surfaces.is_empty()
    }

    /// Total mentions across all surfaces.
    pub fn total_mentions(&self) -> usize {
        self.surfaces.values().map(|e| e.mentions.len()).sum()
    }

    /// Drops all clusters (used before a full re-clustering pass).
    pub fn clear_clusters(&mut self) {
        for e in self.surfaces.values_mut() {
            e.clusters.clear();
        }
    }

    /// Marks every entry dirty so the next finalize recomputes it.
    pub fn mark_all_dirty(&mut self) {
        for e in self.surfaces.values_mut() {
            e.mark_dirty();
        }
    }

    /// Total approximate heap bytes of the resident entries — what
    /// `RetentionPolicy::SpillCold` bounds.
    pub fn resident_bytes(&self) -> usize {
        self.surfaces.values().map(SurfaceEntry::approx_bytes).sum()
    }

    /// Installs a fully-formed entry (checkpoint restore, spill
    /// rehydration). The touch clock is advanced past the entry's
    /// stamp so future touches stay strictly newer.
    pub(crate) fn insert_entry(&mut self, surface: String, entry: SurfaceEntry) {
        self.clock = self.clock.max(entry.touched);
        self.surfaces.insert(surface, entry);
    }

    /// Removes an entry wholesale (cold spill).
    pub(crate) fn remove_entry(&mut self, surface: &str) -> Option<SurfaceEntry> {
        self.surfaces.remove(surface)
    }

    /// Keeps only the mentions belonging to tweets `< from`, dropping
    /// everything newer (and any surface left without mentions). Used
    /// by the rebuild path after eviction: mentions of evicted tweets
    /// are *frozen* (their source records are gone, so they can never
    /// be re-extracted) while the retained suffix of the stream is
    /// rescanned and re-appended. Clusters are cleared and entries
    /// marked dirty because the mention sets are about to change.
    pub(crate) fn truncate_mentions_from_tweet(&mut self, from: usize) {
        self.surfaces.retain(|_, e| {
            e.mentions.retain(|m| m.tweet < from);
            e.clusters.clear();
            e.mark_dirty();
            !e.mentions.is_empty()
        });
    }
}

/// One processed tweet sentence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TweetRecord {
    /// The sentence tokens.
    pub tokens: Vec<String>,
    /// `n × d` contextual token embeddings from Local NER.
    pub embeddings: Matrix,
    /// Spans Local NER detected (with its type guesses).
    pub local_spans: Vec<Span>,
}

impl TweetRecord {
    /// Rough heap footprint of this record in bytes, the unit of
    /// account for `RetentionPolicy::MaxBytes`. Deliberately simple
    /// (token bytes + embedding floats + span structs + fixed
    /// overhead): the retention policy needs a stable, monotone
    /// measure, not an allocator-exact one.
    pub fn approx_bytes(&self) -> usize {
        let token_bytes: usize = self
            .tokens
            .iter()
            .map(|t| t.len() + std::mem::size_of::<String>())
            .sum();
        token_bytes
            + std::mem::size_of_val(self.embeddings.as_slice())
            + self.local_spans.len() * std::mem::size_of::<Span>()
            + std::mem::size_of::<Self>()
    }
}

/// Store of processed tweets, indexed by arrival order.
///
/// Tweet indices are **stable stream positions**: evicting old records
/// from the front (bounded-state retention) never renumbers survivors.
/// `len()` keeps counting the whole stream; `retained()` counts what is
/// physically held; indices below `first_retained()` are evicted and
/// only reachable through [`TweetBase::try_get`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TweetBase {
    records: std::collections::VecDeque<TweetRecord>,
    /// Stream index of `records[0]` (number of evicted tweets).
    start: usize,
    /// Running `approx_bytes` total of the retained records.
    bytes: usize,
}

impl TweetBase {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a store from an eviction offset and the retained
    /// records (checkpoint restore); the byte account is recomputed.
    pub(crate) fn from_parts(start: usize, records: Vec<TweetRecord>) -> Self {
        let bytes = records.iter().map(TweetRecord::approx_bytes).sum();
        Self { records: records.into(), start, bytes }
    }

    /// Appends a record, returning its stream index.
    pub fn push(&mut self, record: TweetRecord) -> usize {
        self.bytes += record.approx_bytes();
        self.records.push_back(record);
        self.start + self.records.len() - 1
    }

    /// Record lookup. Panics on an out-of-range *or evicted* index —
    /// internal callers must consult the watermark first; use
    /// [`Self::try_get`] when eviction is possible.
    pub fn get(&self, idx: usize) -> &TweetRecord {
        self.try_get(idx).unwrap_or_else(|| {
            panic!(
                "tweet #{idx} unavailable (evicted below {} or beyond {})",
                self.start,
                self.len()
            )
        })
    }

    /// Record lookup returning `None` for evicted or unseen indices.
    pub fn try_get(&self, idx: usize) -> Option<&TweetRecord> {
        idx.checked_sub(self.start).and_then(|i| self.records.get(i))
    }

    /// Number of tweets ever pushed (evicted ones included) — i.e. the
    /// stream position, and one past the largest valid index.
    pub fn len(&self) -> usize {
        self.start + self.records.len()
    }

    /// Whether no tweets were ever pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records physically retained.
    pub fn retained(&self) -> usize {
        self.records.len()
    }

    /// Stream index of the oldest retained record (== number of
    /// evicted records). Equal to `len()` when nothing is retained.
    pub fn first_retained(&self) -> usize {
        self.start
    }

    /// Approximate heap footprint of the retained records, in bytes.
    pub fn retained_bytes(&self) -> usize {
        self.bytes
    }

    /// Evicts the oldest retained record, returning its stream index
    /// (`None` when nothing is retained).
    pub fn evict_front(&mut self) -> Option<usize> {
        let record = self.records.pop_front()?;
        self.bytes -= record.approx_bytes();
        let idx = self.start;
        self.start += 1;
        Some(idx)
    }

    /// Iterates **retained** records in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &TweetRecord> {
        self.records.iter()
    }

    /// Iterates retained records with their stream indices.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, &TweetRecord)> {
        self.records.iter().enumerate().map(|(i, r)| (self.start + i, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tweet: usize) -> MentionRecord {
        MentionRecord {
            tweet,
            start: 0,
            end: 1,
            local_emb: vec![1.0, 0.0],
            local_type: None,
            trie_version: 0,
        }
    }

    #[test]
    fn mentions_accumulate_per_surface() {
        let mut cb = CandidateBase::new();
        assert_eq!(cb.add_mention("italy", record(0)), 0);
        assert_eq!(cb.add_mention("italy", record(1)), 1);
        assert_eq!(cb.add_mention("us", record(1)), 0);
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.total_mentions(), 3);
        assert_eq!(cb.get("italy").expect("entry").mentions.len(), 2);
        assert!(cb.get("nowhere").is_none());
    }

    #[test]
    fn clear_clusters_keeps_mentions() {
        let mut cb = CandidateBase::new();
        cb.add_mention("us", record(0));
        cb.get_mut("us").expect("entry").clusters.push(CandidateCluster {
            members: vec![0],
            global_emb: vec![],
            label: None,
        });
        cb.clear_clusters();
        assert!(cb.get("us").expect("entry").clusters.is_empty());
        assert_eq!(cb.total_mentions(), 1);
    }

    #[test]
    fn tweet_base_round_trips() {
        let mut tb = TweetBase::new();
        let idx = tb.push(TweetRecord {
            tokens: vec!["stay".into(), "home".into()],
            embeddings: Matrix::zeros(2, 4),
            local_spans: vec![],
        });
        assert_eq!(idx, 0);
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.get(0).tokens[1], "home");
    }

    fn tweet(n_tokens: usize) -> TweetRecord {
        TweetRecord {
            tokens: (0..n_tokens).map(|i| format!("t{i}")).collect(),
            embeddings: Matrix::zeros(n_tokens, 4),
            local_spans: vec![],
        }
    }

    #[test]
    fn eviction_keeps_stream_indices_stable() {
        let mut tb = TweetBase::new();
        for i in 0..5 {
            assert_eq!(tb.push(tweet(2 + i)), i);
        }
        assert_eq!(tb.evict_front(), Some(0));
        assert_eq!(tb.evict_front(), Some(1));
        assert_eq!(tb.len(), 5);
        assert_eq!(tb.retained(), 3);
        assert_eq!(tb.first_retained(), 2);
        assert!(tb.try_get(1).is_none());
        assert_eq!(tb.try_get(2).unwrap().tokens.len(), 4);
        assert_eq!(tb.get(4).tokens.len(), 6);
        // New pushes continue the numbering.
        assert_eq!(tb.push(tweet(1)), 5);
        let indices: Vec<usize> = tb.iter_indexed().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "evicted")]
    fn get_panics_on_evicted_index() {
        let mut tb = TweetBase::new();
        tb.push(tweet(1));
        tb.push(tweet(1));
        tb.evict_front();
        let _ = tb.get(0);
    }

    #[test]
    fn retained_bytes_tracks_push_and_evict() {
        let mut tb = TweetBase::new();
        assert_eq!(tb.retained_bytes(), 0);
        let a = tweet(3).approx_bytes();
        let b = tweet(7).approx_bytes();
        assert!(b > a);
        tb.push(tweet(3));
        tb.push(tweet(7));
        assert_eq!(tb.retained_bytes(), a + b);
        tb.evict_front();
        assert_eq!(tb.retained_bytes(), b);
        tb.evict_front();
        assert_eq!(tb.retained_bytes(), 0);
        assert_eq!(tb.evict_front(), None);
    }

    #[test]
    fn surface_entry_dirty_tracking() {
        let mut e = SurfaceEntry::default();
        assert!(!e.needs_recluster()); // 0 mentions, 0 clustered
        e.mentions.push(record(0));
        assert!(e.needs_recluster());
        assert!(e.needs_reclassify());
        e.clustered = e.mentions.len();
        e.classified = e.mentions.len();
        assert!(!e.needs_recluster());
        assert!(!e.needs_reclassify());
        e.mark_dirty();
        assert!(e.needs_recluster());
        assert!(e.needs_reclassify());
    }

    #[test]
    fn truncate_mentions_freezes_old_drops_new() {
        let mut cb = CandidateBase::new();
        cb.add_mention("italy", record(0));
        cb.add_mention("italy", record(3));
        cb.add_mention("us", record(4));
        cb.get_mut("italy").expect("entry").clusters.push(CandidateCluster {
            members: vec![0, 1],
            global_emb: vec![],
            label: None,
        });
        cb.truncate_mentions_from_tweet(3);
        let italy = cb.get("italy").expect("entry");
        assert_eq!(italy.mentions.len(), 1);
        assert_eq!(italy.mentions[0].tweet, 0);
        assert!(italy.clusters.is_empty());
        assert!(italy.needs_recluster());
        // "us" only had a newer mention — gone entirely.
        assert!(cb.get("us").is_none());
        assert_eq!(cb.len(), 1);
    }

    #[test]
    fn touch_clock_orders_entries_by_recency() {
        let mut cb = CandidateBase::new();
        cb.add_mention("cold", record(0));
        cb.add_mention("warm", record(1));
        cb.add_mention("warm", record(2));
        let cold = cb.get("cold").expect("entry").touched;
        let warm = cb.get("warm").expect("entry").touched;
        assert!(cold < warm, "cold {cold} must predate warm {warm}");
        // A new mention re-stamps the entry, flipping the order.
        cb.add_mention("cold", record(3));
        assert!(cb.get("cold").expect("entry").touched > warm);
        // Reinstalling an entry never rewinds the clock.
        let e = cb.remove_entry("cold").expect("removed");
        let stamp = e.touched;
        cb.insert_entry("cold".into(), e);
        cb.add_mention("warm", record(3));
        assert!(cb.get("warm").expect("entry").touched > stamp);
    }

    #[test]
    fn resident_bytes_track_entry_footprints() {
        let mut cb = CandidateBase::new();
        assert_eq!(cb.resident_bytes(), 0);
        cb.add_mention("italy", record(0));
        let one = cb.resident_bytes();
        assert!(one > 0);
        cb.add_mention("italy", record(1));
        cb.add_mention("us", record(2));
        let three = cb.resident_bytes();
        assert!(three > one);
        let removed = cb.remove_entry("italy").expect("entry");
        assert_eq!(cb.resident_bytes(), three - removed.approx_bytes());
    }

    #[test]
    fn iteration_is_lexicographic() {
        let mut cb = CandidateBase::new();
        cb.add_mention("zebra", record(0));
        cb.add_mention("alpha", record(0));
        let keys: Vec<&String> = cb.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "zebra"]);
    }
}
