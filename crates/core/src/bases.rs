//! The bookkeeping stores of the pipeline: **TweetBase** (§IV) holds one
//! record per processed tweet sentence, **CandidateBase** (§V-D) holds
//! one entry per discovered candidate surface form with its mentions,
//! clusters and (eventually) cluster labels.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ngl_nn::Matrix;
use ngl_text::{EntityType, Span};

/// A single extracted mention occurrence with its local embedding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MentionRecord {
    /// Index of the tweet in the [`TweetBase`].
    pub tweet: usize,
    /// First token of the mention.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
    /// Local mention embedding from the Phrase Embedder.
    pub local_emb: Vec<f32>,
    /// Type Local NER assigned to an overlapping detection, if any
    /// (used by the mention-extraction ablation's majority vote).
    pub local_type: Option<EntityType>,
}

/// A candidate cluster: one (surface form, entity) hypothesis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateCluster {
    /// Indices into the owning entry's mention list.
    pub members: Vec<usize>,
    /// Global candidate embedding (Eq. 8), filled at classification.
    pub global_emb: Vec<f32>,
    /// Classifier verdict: `None` = not yet classified;
    /// `Some(None)` = non-entity; `Some(Some(ty))` = entity of type `ty`.
    pub label: Option<Option<EntityType>>,
}

/// All knowledge about one candidate surface form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SurfaceEntry {
    /// Every extracted mention of the surface, in discovery order.
    pub mentions: Vec<MentionRecord>,
    /// Current candidate clusters over those mentions.
    pub clusters: Vec<CandidateCluster>,
}

/// Candidate store keyed by folded surface form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CandidateBase {
    surfaces: BTreeMap<String, SurfaceEntry>,
}

impl CandidateBase {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a mention of `surface`, returning its index in the entry.
    pub fn add_mention(&mut self, surface: &str, record: MentionRecord) -> usize {
        let entry = self.surfaces.entry(surface.to_string()).or_default();
        entry.mentions.push(record);
        entry.mentions.len() - 1
    }

    /// The entry of a surface, if known.
    pub fn get(&self, surface: &str) -> Option<&SurfaceEntry> {
        self.surfaces.get(surface)
    }

    /// Mutable entry access.
    pub fn get_mut(&mut self, surface: &str) -> Option<&mut SurfaceEntry> {
        self.surfaces.get_mut(surface)
    }

    /// Iterates over `(surface, entry)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SurfaceEntry)> {
        self.surfaces.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut SurfaceEntry)> {
        self.surfaces.iter_mut()
    }

    /// Number of distinct surface forms.
    pub fn len(&self) -> usize {
        self.surfaces.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.surfaces.is_empty()
    }

    /// Total mentions across all surfaces.
    pub fn total_mentions(&self) -> usize {
        self.surfaces.values().map(|e| e.mentions.len()).sum()
    }

    /// Drops all clusters (used before a full re-clustering pass).
    pub fn clear_clusters(&mut self) {
        for e in self.surfaces.values_mut() {
            e.clusters.clear();
        }
    }
}

/// One processed tweet sentence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TweetRecord {
    /// The sentence tokens.
    pub tokens: Vec<String>,
    /// `n × d` contextual token embeddings from Local NER.
    pub embeddings: Matrix,
    /// Spans Local NER detected (with its type guesses).
    pub local_spans: Vec<Span>,
}

/// Store of processed tweets, indexed by arrival order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TweetBase {
    records: Vec<TweetRecord>,
}

impl TweetBase {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, returning its index.
    pub fn push(&mut self, record: TweetRecord) -> usize {
        self.records.push(record);
        self.records.len() - 1
    }

    /// Record lookup.
    pub fn get(&self, idx: usize) -> &TweetRecord {
        &self.records[idx]
    }

    /// Number of stored tweets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no tweets are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates records in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &TweetRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tweet: usize) -> MentionRecord {
        MentionRecord {
            tweet,
            start: 0,
            end: 1,
            local_emb: vec![1.0, 0.0],
            local_type: None,
        }
    }

    #[test]
    fn mentions_accumulate_per_surface() {
        let mut cb = CandidateBase::new();
        assert_eq!(cb.add_mention("italy", record(0)), 0);
        assert_eq!(cb.add_mention("italy", record(1)), 1);
        assert_eq!(cb.add_mention("us", record(1)), 0);
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.total_mentions(), 3);
        assert_eq!(cb.get("italy").expect("entry").mentions.len(), 2);
        assert!(cb.get("nowhere").is_none());
    }

    #[test]
    fn clear_clusters_keeps_mentions() {
        let mut cb = CandidateBase::new();
        cb.add_mention("us", record(0));
        cb.get_mut("us").expect("entry").clusters.push(CandidateCluster {
            members: vec![0],
            global_emb: vec![],
            label: None,
        });
        cb.clear_clusters();
        assert!(cb.get("us").expect("entry").clusters.is_empty());
        assert_eq!(cb.total_mentions(), 1);
    }

    #[test]
    fn tweet_base_round_trips() {
        let mut tb = TweetBase::new();
        let idx = tb.push(TweetRecord {
            tokens: vec!["stay".into(), "home".into()],
            embeddings: Matrix::zeros(2, 4),
            local_spans: vec![],
        });
        assert_eq!(idx, 0);
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.get(0).tokens[1], "home");
    }

    #[test]
    fn iteration_is_lexicographic() {
        let mut cb = CandidateBase::new();
        cb.add_mention("zebra", record(0));
        cb.add_mention("alpha", record(0));
        let keys: Vec<&String> = cb.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "zebra"]);
    }
}
