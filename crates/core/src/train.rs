//! End-to-end training of the Global NER components (§VI).
//!
//! Reproduces the paper's procedure: mine candidate mention sets from a
//! D5-style annotated stream, train the Phrase Embedder with the chosen
//! contrastive objective, freeze it, embed the ground-truth candidate
//! clusters, and train the attention pooling + Entity Classifier
//! end-to-end. The returned [`GlobalizerTrainingReport`] carries the
//! Table II quantities.

use serde::{Deserialize, Serialize};

use ngl_corpus::Dataset;
use ngl_encoder::ContextualTagger;
use ngl_nn::Matrix;
use ngl_text::EntityType;

use crate::classifier::{CandidateExample, ClassifierConfig, EntityClassifier};
use crate::mining::{mine_candidates, mine_soft_nn, mine_triplets};
use crate::phrase::{PhraseEmbedder, PhraseEmbedderConfig, PhraseLoss};

/// Training configuration for the whole Global NER stack.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GlobalizerTrainingConfig {
    /// Phrase-embedder hyperparameters (includes the objective choice).
    pub phrase: PhraseEmbedderConfig,
    /// Entity-classifier hyperparameters.
    pub classifier: ClassifierConfig,
    /// Triplet cap for the mining stage.
    pub max_triplets: usize,
    /// Record cap for soft-NN mining.
    pub max_soft_nn: usize,
    /// Train the Entity Classifier on clusters produced by the *same*
    /// clustering step the pipeline uses over D5 (labels = majority gold
    /// class of members), instead of pristine ground-truth clusters.
    /// This keeps the classifier's training distribution aligned with
    /// the impure clusters it will see in deployment.
    pub cluster_consistent_training: bool,
    /// Clustering threshold used when `cluster_consistent_training`
    /// (should equal the pipeline's `cluster_threshold`).
    pub cluster_threshold: f32,
    /// Mining seed.
    pub seed: u64,
}

impl GlobalizerTrainingConfig {
    /// Defaults for embedding dimension `dim`.
    pub fn for_dim(dim: usize) -> Self {
        Self {
            phrase: PhraseEmbedderConfig { dim, ..Default::default() },
            classifier: ClassifierConfig { dim, ..Default::default() },
            max_triplets: 40_000,
            max_soft_nn: 8_000,
            cluster_consistent_training: true,
            cluster_threshold: 0.7,
            seed: 0,
        }
    }
}

/// Table II row: what training produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalizerTrainingReport {
    /// Objective used ("Triplet" / "Soft NN").
    pub objective: String,
    /// Training-set size (triplets or records).
    pub dataset_size: usize,
    /// Final embedder training loss.
    pub train_loss: f32,
    /// Best embedder validation loss.
    pub val_loss: f32,
    /// Candidates the classifier trained on.
    pub n_candidates: usize,
    /// Classifier validation macro-F1 (the paper's 92.8% / 77.3%).
    pub classifier_val_macro_f1: f64,
}

/// Trained Global NER components plus the report.
pub struct TrainedGlobalNer {
    /// The contrastively trained Phrase Embedder.
    pub phrase: PhraseEmbedder,
    /// The pooling + classification head.
    pub classifier: EntityClassifier,
    /// Table II quantities.
    pub report: GlobalizerTrainingReport,
}

/// Trains the Phrase Embedder and Entity Classifier on `d5` using the
/// given local tagger (frozen), per §VI.
pub fn train_globalizer<T: ContextualTagger>(
    local: &T,
    d5: &Dataset,
    cfg: &GlobalizerTrainingConfig,
) -> TrainedGlobalNer {
    assert_eq!(local.dim(), cfg.phrase.dim, "encoder/config dim mismatch");
    let mining = mine_candidates(local, d5);

    // Stage 1: Phrase Embedder with the configured contrastive loss.
    let mut phrase = PhraseEmbedder::new(cfg.phrase);
    let (objective, dataset_size, train_loss, val_loss) = match cfg.phrase.loss {
        PhraseLoss::Triplet { .. } => {
            let triplets = mine_triplets(&mining, cfg.max_triplets, cfg.seed ^ 0x7517);
            let report = phrase.fit_triplets(&triplets);
            ("Triplet".to_string(), report.dataset_size, report.train_loss, report.val_loss)
        }
        PhraseLoss::SoftNn { .. } => {
            let records = mine_soft_nn(&mining, cfg.max_soft_nn, cfg.seed ^ 0x50F7);
            let report = phrase.fit_soft_nn(&records);
            ("Soft NN".to_string(), report.dataset_size, report.train_loss, report.val_loss)
        }
    };

    // Stage 2: train pooling + classifier end-to-end on candidate
    // clusters embedded with the frozen embedder. With cluster-consistent
    // training the clusters come from the same agglomerative step the
    // pipeline runs (labels = majority gold class of members); otherwise
    // from the pristine ground-truth candidate sets.
    let examples: Vec<CandidateExample> = if cfg.cluster_consistent_training {
        let mut out = Vec::new();
        for sm in &mining.by_surface {
            let embedded: Vec<Vec<f32>> = sm
                .mentions
                .iter()
                .map(|(p, _)| phrase.embed_pooled(p))
                .collect();
            // Same large-set fallback as the pipeline.
            let groups = if embedded.len() <= 400 {
                ngl_cluster::agglomerative(&embedded, cfg.cluster_threshold).groups()
            } else {
                let mut online = ngl_cluster::OnlineClusters::new(cfg.cluster_threshold);
                let mut groups: Vec<Vec<usize>> = Vec::new();
                for (mi, e) in embedded.iter().enumerate() {
                    let c = online.insert(e);
                    if c == groups.len() {
                        groups.push(Vec::new());
                    }
                    groups[c].push(mi);
                }
                groups
            };
            for group in groups {
                let mut votes = [0usize; EntityType::COUNT + 1];
                for &m in &group {
                    votes[sm.mentions[m].1] += 1;
                }
                // Label = majority over the entity classes; the cluster
                // counts as non-entity only when non-entity mentions
                // clearly dominate (> 70%). A cluster with substantial
                // gold-entity membership *is* that entity — its other
                // members are recovered mentions, not counter-evidence.
                let non_entity = votes[EntityType::COUNT];
                let entity_total: usize = votes[..EntityType::COUNT].iter().sum();
                let class = if entity_total == 0
                    || non_entity as f64 > 0.7 * group.len() as f64
                {
                    EntityType::COUNT
                } else {
                    votes[..EntityType::COUNT]
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map(|(i, _)| i)
                        .expect("non-empty votes")
                };
                let rows: Vec<&[f32]> = group.iter().map(|&m| embedded[m].as_slice()).collect();
                out.push(CandidateExample { locals: Matrix::from_rows(&rows), class });
            }
        }
        out
    } else {
        mining
            .candidates
            .iter()
            .filter(|c| !c.pooled_mentions.is_empty())
            .map(|c| {
                let rows: Vec<Vec<f32>> = c
                    .pooled_mentions
                    .iter()
                    .map(|p| phrase.embed_pooled(p))
                    .collect();
                let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
                CandidateExample {
                    locals: Matrix::from_rows(&refs),
                    class: EntityType::class_index(c.ty),
                }
            })
            .collect()
    };
    let mut classifier = EntityClassifier::new(cfg.classifier);
    let clf_report = classifier.fit(&examples);

    // Table II's classifier metric is measured the paper's way — on the
    // ground-truth candidate clusters — independent of which cluster set
    // the classifier trained on.
    let gold_examples: Vec<CandidateExample> = mining
        .candidates
        .iter()
        .filter(|c| !c.pooled_mentions.is_empty())
        .map(|c| {
            let rows: Vec<Vec<f32>> =
                c.pooled_mentions.iter().map(|p| phrase.embed_pooled(p)).collect();
            let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
            CandidateExample {
                locals: Matrix::from_rows(&refs),
                class: EntityType::class_index(c.ty),
            }
        })
        .collect();
    let gold_macro_f1 = classifier.macro_f1(&gold_examples);

    TrainedGlobalNer {
        phrase,
        classifier,
        report: GlobalizerTrainingReport {
            objective,
            dataset_size,
            train_loss,
            val_loss,
            n_candidates: clf_report.n_candidates,
            classifier_val_macro_f1: gold_macro_f1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_corpus::{DatasetSpec, KnowledgeBase, Topic};
    use ngl_encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};

    /// A miniature end-to-end training run: trained encoder → mined
    /// candidates → trained embedder + classifier. Asserts the Table II
    /// *shape*: the classifier reaches a usable validation macro-F1.
    #[test]
    fn end_to_end_training_produces_usable_components() {
        let kb_train = KnowledgeBase::build(31, 60);
        let kb_d5 = KnowledgeBase::build(32, 60);
        let train_set = Dataset::generate(
            &DatasetSpec::streaming("t", 600, vec![Topic::Health], 41),
            &kb_train,
        );
        let d5 = Dataset::generate(
            &DatasetSpec::streaming("d5", 400, vec![Topic::Health], 42),
            &kb_d5,
        );
        let mut enc = TokenEncoder::new(EncoderConfig {
            embed_dim: 16,
            hidden_dim: 24,
            out_dim: 16,
            seed: 1,
            ..EncoderConfig::default()
        });
        train_encoder(&mut enc, &train_set, &TrainConfig { epochs: 4, ..Default::default() });

        let mut cfg = GlobalizerTrainingConfig::for_dim(16);
        cfg.max_triplets = 4_000;
        cfg.phrase.max_epochs = 20;
        cfg.classifier.max_epochs = 40;
        let trained = train_globalizer(&enc, &d5, &cfg);

        assert_eq!(trained.report.objective, "Triplet");
        assert!(trained.report.dataset_size > 500);
        assert!(trained.report.n_candidates > 30);
        assert!(
            trained.report.classifier_val_macro_f1 > 0.4,
            "classifier too weak: {}",
            trained.report.classifier_val_macro_f1
        );
        assert!(trained.report.val_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn dim_mismatch_is_rejected() {
        let kb = KnowledgeBase::build(33, 20);
        let d5 = Dataset::generate(
            &DatasetSpec::streaming("d5", 20, vec![Topic::Health], 1),
            &kb,
        );
        let enc = TokenEncoder::new(EncoderConfig {
            embed_dim: 8,
            hidden_dim: 8,
            out_dim: 8,
            ..EncoderConfig::default()
        });
        let cfg = GlobalizerTrainingConfig::for_dim(16);
        let _ = train_globalizer(&enc, &d5, &cfg);
    }
}
