//! The Entity Phrase Embedder (§V-B).
//!
//! Combines the variable number of token-level contextual embeddings of
//! a mention phrase into one fixed-size local mention embedding:
//!
//! ```text
//! pooled  = mean(token_emb[j])                 (Eq. 1)
//! pooled̂  = pooled / |pooled|                  (Eq. 2)
//! local   = W_ff · pooled̂ + b_ff               (Eq. 3)
//! ```
//!
//! Trained with contrastive estimation — cosine triplet loss (margin 1,
//! pushing mentions of different types toward orthogonality) or the
//! soft-nearest-neighbour loss — on mention sets mined from a D5-style
//! training stream. The Local NER weights below stay frozen: gradients
//! stop at the token embeddings, exactly as in the paper's siamese setup.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_nn::layers::{BatchNorm1d, Dense, Init, L2Norm};
use ngl_nn::loss::{soft_nn, triplet};
use ngl_nn::{Adam, AdamState, EarlyStopping, Matrix};
use ngl_text::Span;

/// Which contrastive objective trains the embedder (Table II compares
/// both; the production system uses triplet loss).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhraseLoss {
    /// Cosine triplet loss with margin (Eq. 4).
    Triplet {
        /// Margin ε; the paper sets 1.0 (orthogonality).
        margin: f32,
    },
    /// Soft-nearest-neighbour loss (Eq. 5).
    SoftNn {
        /// Temperature τ; smaller emphasizes near same-class pairs.
        temperature: f32,
    },
}

/// Embedder hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhraseEmbedderConfig {
    /// Token-embedding (and output) dimension.
    pub dim: usize,
    /// Training objective.
    pub loss: PhraseLoss,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
    /// Mini-batch size (paper: 2048 for triplet, 64 for soft-NN; scaled
    /// down with our dataset sizes).
    pub batch_size: usize,
    /// Epoch cap (paper: 200).
    pub max_epochs: usize,
    /// Early-stopping patience (paper: 8).
    pub patience: usize,
    /// Apply batch normalization to the pooled inputs before the dense
    /// layer during training (§VI: "we also add batch normalization").
    /// Default off: on this 32-dim from-scratch substrate it slightly
    /// degrades end-to-end macro-F1 (see `reproduce ablations`), unlike
    /// over 768-dim BERT features.
    pub use_batch_norm: bool,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for PhraseEmbedderConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            loss: PhraseLoss::Triplet { margin: 1.0 },
            lr: 1e-3,
            batch_size: 256,
            max_epochs: 60,
            patience: 8,
            use_batch_norm: false,
            seed: 0,
        }
    }
}

/// A training triplet over pooled mention inputs.
#[derive(Debug, Clone)]
pub struct TripletExample {
    /// Anchor pooled embedding.
    pub anchor: Vec<f32>,
    /// Positive (same candidate).
    pub positive: Vec<f32>,
    /// Negative (same surface, different type — or augmented).
    pub negative: Vec<f32>,
}

/// A soft-NN training record: one pooled mention plus its candidate
/// class id (candidate identity, not entity type — the manifold is per
/// candidate).
#[derive(Debug, Clone)]
pub struct SoftNnExample {
    /// Pooled mention embedding.
    pub pooled: Vec<f32>,
    /// Candidate-manifold id.
    pub class: usize,
}

/// Result of an embedder training run (feeds Table II).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhraseTrainReport {
    /// Records trained on.
    pub dataset_size: usize,
    /// Final training loss.
    pub train_loss: f32,
    /// Best validation loss.
    pub val_loss: f32,
    /// Epochs executed.
    pub epochs_run: usize,
}

/// Optimizer moment buffers for the embedder's tensors.
struct PhraseAdamStates {
    w: AdamState,
    b: AdamState,
    gamma: AdamState,
    beta: AdamState,
}

impl PhraseAdamStates {
    fn new(dim: usize) -> Self {
        Self {
            w: AdamState::new(dim * dim),
            b: AdamState::new(dim),
            gamma: AdamState::new(dim),
            beta: AdamState::new(dim),
        }
    }
}

/// The trained phrase embedder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhraseEmbedder {
    dense: Dense,
    bn: Option<BatchNorm1d>,
    cfg: PhraseEmbedderConfig,
}

impl PhraseEmbedder {
    /// Fresh embedder (identity-ish random init).
    pub fn new(cfg: PhraseEmbedderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let dense = Dense::new(&mut rng, cfg.dim, cfg.dim, Init::Xavier);
        let bn = cfg.use_batch_norm.then(|| BatchNorm1d::new(cfg.dim));
        Self { dense, bn, cfg }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Mean-pools the token embeddings of a mention span (Eq. 1).
    pub fn pool(token_embeddings: &Matrix, span: &Span) -> Vec<f32> {
        assert!(span.end <= token_embeddings.rows(), "span beyond sentence");
        let d = token_embeddings.cols();
        let mut out = vec![0.0f32; d];
        let n = (span.end - span.start) as f32;
        for r in span.start..span.end {
            for (o, &v) in out.iter_mut().zip(token_embeddings.row(r)) {
                *o += v / n;
            }
        }
        out
    }

    /// Maps a pooled mention input through l2-norm and the dense layer
    /// (Eqs. 2–3). The output is unit-normalized so downstream cosine
    /// geometry (clustering threshold, triplet margin) is well-scaled.
    pub fn embed_pooled(&self, pooled: &[f32]) -> Vec<f32> {
        let x = Matrix::from_rows(&[pooled]);
        let y = self.forward_eval(&x);
        ngl_nn::l2_normalized(y.row(0))
    }

    /// Convenience: pools a span of token embeddings and embeds it.
    pub fn embed(&self, token_embeddings: &Matrix, span: &Span) -> Vec<f32> {
        self.embed_pooled(&Self::pool(token_embeddings, span))
    }

    /// Batch variant of [`Self::embed`]: pools every span and runs one
    /// dense forward over the whole stack instead of one single-row
    /// matmul per mention — the hot shape in the CTrie scan, where one
    /// tweet yields many uncached mentions at once.
    ///
    /// Every kernel on this path (L2 norm, eval-mode batch norm, dense
    /// matmul) is row-independent with a fixed per-row accumulation
    /// order, so the outputs are **bitwise identical** to per-span
    /// [`Self::embed`] calls.
    pub fn embed_spans(&self, token_embeddings: &Matrix, spans: &[Span]) -> Vec<Vec<f32>> {
        if spans.is_empty() {
            return Vec::new();
        }
        let pooled: Vec<Vec<f32>> =
            spans.iter().map(|s| Self::pool(token_embeddings, s)).collect();
        let rows: Vec<&[f32]> = pooled.iter().map(|p| p.as_slice()).collect();
        let y = self.forward_eval(&Matrix::from_rows(&rows));
        (0..spans.len()).map(|i| ngl_nn::l2_normalized(y.row(i))).collect()
    }

    /// Inference-mode forward (running batch-norm statistics), without
    /// the final normalization.
    fn forward_eval(&self, pooled: &Matrix) -> Matrix {
        let normed = L2Norm.forward(pooled);
        let pre = match &self.bn {
            Some(bn) => bn.forward_eval(&normed),
            None => normed,
        };
        self.dense.forward(&pre)
    }

    /// Training-mode forward: updates batch-norm running statistics and
    /// returns `(dense input, bn cache, output)` for the backward pass.
    fn forward_train(
        &mut self,
        pooled: &Matrix,
    ) -> (Matrix, Option<ngl_nn::layers::BatchNormCache>, Matrix) {
        let normed = L2Norm.forward(pooled);
        let (pre, cache) = match &mut self.bn {
            Some(bn) => {
                let (y, c) = bn.forward_train(&normed);
                (y, Some(c))
            }
            None => (normed, None),
        };
        let out = self.dense.forward(&pre);
        (pre, cache, out)
    }

    /// One optimizer step over accumulated dense (+ batch-norm) grads.
    fn optimizer_step(&mut self, adam: &mut Adam, states: &mut PhraseAdamStates) {
        adam.tick();
        let [(w, gw), (b, gb)] = self.dense.params_and_grads();
        adam.step(w, gw, &mut states.w);
        adam.step(b, gb, &mut states.b);
        if let Some(bn) = &mut self.bn {
            let [(gamma, g_gamma), (beta, g_beta)] = bn.params_and_grads();
            adam.step(gamma, g_gamma, &mut states.gamma);
            adam.step(beta, g_beta, &mut states.beta);
        }
    }

    /// Loss of the configured objective on a batch of examples; no
    /// parameter updates. Used for validation.
    pub fn eval_triplets(&self, examples: &[TripletExample]) -> f32 {
        let margin = match self.cfg.loss {
            PhraseLoss::Triplet { margin } => margin,
            PhraseLoss::SoftNn { .. } => 1.0,
        };
        let mut total = 0.0;
        for ex in examples {
            let rows = [
                ex.anchor.as_slice(),
                ex.positive.as_slice(),
                ex.negative.as_slice(),
            ];
            let out = self.forward_eval(&Matrix::from_rows(&rows));
            total += triplet(out.row(0), out.row(1), out.row(2), margin).loss;
        }
        total / examples.len().max(1) as f32
    }

    /// Soft-NN loss over a record set (validation).
    pub fn eval_soft_nn(&self, examples: &[SoftNnExample], temperature: f32) -> f32 {
        if examples.len() < 2 {
            return 0.0;
        }
        let rows: Vec<&[f32]> = examples.iter().map(|e| e.pooled.as_slice()).collect();
        let out = self.forward_eval(&Matrix::from_rows(&rows));
        let labels: Vec<usize> = examples.iter().map(|e| e.class).collect();
        soft_nn(&out, &labels, temperature).loss
    }

    /// Trains with the triplet objective. Keeps the best-validation
    /// weights; returns the Table II-style report.
    pub fn fit_triplets(&mut self, examples: &[TripletExample]) -> PhraseTrainReport {
        let margin = match self.cfg.loss {
            PhraseLoss::Triplet { margin } => margin,
            PhraseLoss::SoftNn { .. } => 1.0,
        };
        assert!(examples.len() >= 4, "need at least a few triplets");
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xABCD);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(&mut rng);
        let n_val = (examples.len() / 5).max(1);
        let (val_idx, train_idx) = order.split_at(n_val);
        let val: Vec<TripletExample> = val_idx.iter().map(|&i| examples[i].clone()).collect();

        let mut adam = Adam::new(self.cfg.lr).with_weight_decay(1e-5);
        let mut states = PhraseAdamStates::new(self.cfg.dim);
        let mut es = EarlyStopping::new(self.cfg.patience);
        let mut best = (self.dense.clone(), self.bn.clone());
        let mut train_order: Vec<usize> = train_idx.to_vec();
        let mut final_train = f32::INFINITY;
        let mut epochs_run = 0;

        for _ in 0..self.cfg.max_epochs {
            epochs_run += 1;
            train_order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in train_order.chunks(self.cfg.batch_size.max(1)) {
                let batch: Vec<&TripletExample> =
                    chunk.iter().map(|&i| &examples[i]).collect();
                epoch_loss += self.train_triplet_batch(&batch, margin, &mut adam, &mut states);
                batches += 1;
            }
            final_train = epoch_loss / batches.max(1) as f32;
            let val_loss = self.eval_triplets(&val);
            if es.record(val_loss) {
                best = (self.dense.clone(), self.bn.clone());
            }
            if es.should_stop() {
                break;
            }
        }
        self.dense = best.0;
        self.bn = best.1;
        PhraseTrainReport {
            dataset_size: examples.len(),
            train_loss: final_train,
            val_loss: es.best(),
            epochs_run,
        }
    }

    /// One siamese mini-batch: the anchors, positives and negatives of
    /// every triplet share a single batched forward (which is also what
    /// gives batch normalization meaningful statistics).
    fn train_triplet_batch(
        &mut self,
        batch: &[&TripletExample],
        margin: f32,
        adam: &mut Adam,
        states: &mut PhraseAdamStates,
    ) -> f32 {
        let n = batch.len();
        if n == 0 {
            return 0.0;
        }
        let rows: Vec<&[f32]> = batch
            .iter()
            .flat_map(|ex| {
                [
                    ex.anchor.as_slice(),
                    ex.positive.as_slice(),
                    ex.negative.as_slice(),
                ]
            })
            .collect();
        let pooled = Matrix::from_rows(&rows);
        let (pre, cache, out) = self.forward_train(&pooled);

        let scale = 1.0 / n as f32;
        let mut total = 0.0f32;
        let mut dy = Matrix::zeros(3 * n, self.cfg.dim);
        for (i, _) in batch.iter().enumerate() {
            let res = triplet(out.row(3 * i), out.row(3 * i + 1), out.row(3 * i + 2), margin);
            total += res.loss;
            if res.loss == 0.0 {
                continue;
            }
            for c in 0..self.cfg.dim {
                dy.row_mut(3 * i)[c] = res.grad_anchor[c] * scale;
                dy.row_mut(3 * i + 1)[c] = res.grad_positive[c] * scale;
                dy.row_mut(3 * i + 2)[c] = res.grad_negative[c] * scale;
            }
        }

        self.dense.zero_grad();
        if let Some(bn) = &mut self.bn {
            bn.zero_grad();
        }
        let d_pre = self.dense.backward(&pre, &dy);
        if let (Some(bn), Some(cache)) = (&mut self.bn, &cache) {
            // Input grads are discarded — the encoder below is frozen.
            let _ = bn.backward(cache, &d_pre);
        }
        self.optimizer_step(adam, states);
        total * scale
    }

    /// Serializes the trained embedder into a compact binary blob.
    pub fn to_bytes(&self) -> bytes::Bytes {
        use ngl_nn::codec::{put_dense, put_f32, put_u64};
        let mut buf = bytes::BytesMut::new();
        put_u64(&mut buf, self.cfg.dim as u64);
        match self.cfg.loss {
            PhraseLoss::Triplet { margin } => {
                put_u64(&mut buf, 0);
                put_f32(&mut buf, margin);
            }
            PhraseLoss::SoftNn { temperature } => {
                put_u64(&mut buf, 1);
                put_f32(&mut buf, temperature);
            }
        }
        put_f32(&mut buf, self.cfg.lr);
        put_u64(&mut buf, self.cfg.batch_size as u64);
        put_u64(&mut buf, self.cfg.max_epochs as u64);
        put_u64(&mut buf, self.cfg.patience as u64);
        put_u64(&mut buf, self.cfg.seed);
        put_dense(&mut buf, &self.dense);
        match &self.bn {
            Some(bn) => {
                put_u64(&mut buf, 1);
                ngl_nn::codec::put_batchnorm(&mut buf, bn);
            }
            None => put_u64(&mut buf, 0),
        }
        buf.freeze()
    }

    /// Deserializes an embedder written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &mut bytes::Bytes) -> Result<Self, ngl_nn::CodecError> {
        use ngl_nn::codec::{get_dense, get_f32, get_u64, CodecError};
        let dim = get_u64(bytes)? as usize;
        let loss = match get_u64(bytes)? {
            0 => PhraseLoss::Triplet { margin: get_f32(bytes)? },
            1 => PhraseLoss::SoftNn { temperature: get_f32(bytes)? },
            _ => return Err(CodecError::Invalid("phrase loss tag")),
        };
        let mut cfg = PhraseEmbedderConfig {
            dim,
            loss,
            lr: get_f32(bytes)?,
            batch_size: get_u64(bytes)? as usize,
            max_epochs: get_u64(bytes)? as usize,
            patience: get_u64(bytes)? as usize,
            seed: get_u64(bytes)?,
            use_batch_norm: false,
        };
        let dense = get_dense(bytes)?;
        if dense.in_dim() != dim || dense.out_dim() != dim {
            return Err(CodecError::Invalid("phrase dense shape"));
        }
        let bn = match get_u64(bytes)? {
            0 => None,
            1 => {
                let bn = ngl_nn::codec::get_batchnorm(bytes)?;
                if bn.parts().0.len() != dim {
                    return Err(CodecError::Invalid("phrase batch-norm shape"));
                }
                Some(bn)
            }
            _ => return Err(CodecError::Invalid("phrase batch-norm tag")),
        };
        cfg.use_batch_norm = bn.is_some();
        Ok(Self { dense, bn, cfg })
    }

    /// Trains with the soft-nearest-neighbour objective over candidate
    /// manifolds, mini-batched.
    pub fn fit_soft_nn(&mut self, examples: &[SoftNnExample]) -> PhraseTrainReport {
        let temperature = match self.cfg.loss {
            PhraseLoss::SoftNn { temperature } => temperature,
            PhraseLoss::Triplet { .. } => 0.5,
        };
        assert!(examples.len() >= 4, "need at least a few records");
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xDCBA);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(&mut rng);
        let n_val = (examples.len() / 5).max(2);
        let (val_idx, train_idx) = order.split_at(n_val);
        let val: Vec<SoftNnExample> = val_idx.iter().map(|&i| examples[i].clone()).collect();

        let mut adam = Adam::new(self.cfg.lr).with_weight_decay(1e-5);
        let mut states = PhraseAdamStates::new(self.cfg.dim);
        let mut es = EarlyStopping::new(self.cfg.patience);
        let mut best = (self.dense.clone(), self.bn.clone());
        let mut train_order: Vec<usize> = train_idx.to_vec();
        let mut final_train = f32::INFINITY;
        let mut epochs_run = 0;

        for _ in 0..self.cfg.max_epochs {
            epochs_run += 1;
            train_order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in train_order.chunks(self.cfg.batch_size.max(2)) {
                if chunk.len() < 2 {
                    continue;
                }
                let rows: Vec<&[f32]> =
                    chunk.iter().map(|&i| examples[i].pooled.as_slice()).collect();
                let pooled = Matrix::from_rows(&rows);
                let labels: Vec<usize> = chunk.iter().map(|&i| examples[i].class).collect();
                let (pre, cache, out) = self.forward_train(&pooled);
                let res = soft_nn(&out, &labels, temperature);
                if res.active_anchors == 0 {
                    continue;
                }
                epoch_loss += res.loss;
                batches += 1;
                self.dense.zero_grad();
                if let Some(bn) = &mut self.bn {
                    bn.zero_grad();
                }
                let d_pre = self.dense.backward(&pre, &res.grads);
                if let (Some(bn), Some(cache)) = (&mut self.bn, &cache) {
                    let _ = bn.backward(cache, &d_pre);
                }
                self.optimizer_step(&mut adam, &mut states);
            }
            final_train = epoch_loss / batches.max(1) as f32;
            let val_loss = self.eval_soft_nn(&val, temperature);
            if es.record(val_loss) {
                best = (self.dense.clone(), self.bn.clone());
            }
            if es.should_stop() {
                break;
            }
        }
        self.dense = best.0;
        self.bn = best.1;
        PhraseTrainReport {
            dataset_size: examples.len(),
            train_loss: final_train,
            val_loss: es.best(),
            epochs_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_text::EntityType;
    use rand::Rng;

    fn cfg(dim: usize) -> PhraseEmbedderConfig {
        PhraseEmbedderConfig {
            dim,
            batch_size: 32,
            max_epochs: 40,
            patience: 8,
            seed: 1,
            ..PhraseEmbedderConfig::default()
        }
    }

    #[test]
    fn pool_averages_span_rows() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 100.0, 100.0]);
        let p = PhraseEmbedder::pool(&m, &Span::new(0, 2, EntityType::Person));
        assert_eq!(p, vec![2.0, 3.0]);
    }

    #[test]
    fn embed_output_is_unit_norm() {
        let e = PhraseEmbedder::new(cfg(8));
        let m = Matrix::from_vec(2, 8, (0..16).map(|v| v as f32 * 0.1).collect());
        let v = e.embed(&m, &Span::new(0, 2, EntityType::Location));
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    /// Synthetic two-manifold task: mentions of class A near one
    /// direction, class B near another with overlap; the triplet-trained
    /// embedder must increase the margin between classes.
    #[test]
    fn triplet_training_separates_classes() {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(7);
        let mut mk = |base: usize| -> Vec<f32> {
            let mut v = vec![0.0f32; dim];
            v[base] = 1.0;
            v[(base + 1) % dim] = 0.8; // heavy overlap between classes
            for x in v.iter_mut() {
                *x += rng.gen_range(-0.2f32..0.2);
            }
            v
        };
        let a: Vec<Vec<f32>> = (0..40).map(|_| mk(0)).collect();
        let b: Vec<Vec<f32>> = (0..40).map(|_| mk(1)).collect();
        let mut triplets = Vec::new();
        for i in 0..40 {
            triplets.push(TripletExample {
                anchor: a[i].clone(),
                positive: a[(i + 1) % 40].clone(),
                negative: b[i].clone(),
            });
            triplets.push(TripletExample {
                anchor: b[i].clone(),
                positive: b[(i + 1) % 40].clone(),
                negative: a[i].clone(),
            });
        }
        let mut emb = PhraseEmbedder::new(cfg(dim));
        let before = emb.eval_triplets(&triplets);
        let report = emb.fit_triplets(&triplets);
        assert!(
            report.val_loss < before * 0.7,
            "triplet loss did not improve: before {before}, after {}",
            report.val_loss
        );
        // Separation check in the output space.
        let ea = emb.embed_pooled(&a[0]);
        let ea2 = emb.embed_pooled(&a[1]);
        let eb = emb.embed_pooled(&b[0]);
        let d_same = ngl_nn::cosine_distance(&ea, &ea2);
        let d_diff = ngl_nn::cosine_distance(&ea, &eb);
        assert!(
            d_diff > d_same + 0.2,
            "classes not separated: same {d_same}, diff {d_diff}"
        );
    }

    #[test]
    fn soft_nn_training_reduces_loss() {
        let dim = 6;
        let mut rng = StdRng::seed_from_u64(9);
        let mut examples = Vec::new();
        for class in 0..3usize {
            for _ in 0..20 {
                let mut v = vec![0.0f32; dim];
                v[class] = 1.0;
                v[(class + 1) % dim] = 0.7;
                for x in v.iter_mut() {
                    *x += rng.gen_range(-0.15f32..0.15);
                }
                examples.push(SoftNnExample { pooled: v, class });
            }
        }
        let mut emb = PhraseEmbedder::new(PhraseEmbedderConfig {
            loss: PhraseLoss::SoftNn { temperature: 0.5 },
            ..cfg(dim)
        });
        let before = emb.eval_soft_nn(&examples, 0.5);
        let report = emb.fit_soft_nn(&examples);
        assert!(
            report.val_loss < before,
            "soft-NN did not improve: {before} -> {}",
            report.val_loss
        );
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = PhraseEmbedder::new(cfg(8));
        let m = Matrix::from_vec(1, 8, vec![0.5; 8]);
        let s = Span::new(0, 1, EntityType::Person);
        assert_eq!(e.embed(&m, &s), e.embed(&m, &s));
    }

    #[test]
    #[should_panic(expected = "span beyond sentence")]
    fn pool_rejects_out_of_range_span() {
        let m = Matrix::zeros(2, 4);
        PhraseEmbedder::pool(&m, &Span::new(1, 3, EntityType::Person));
    }
}
