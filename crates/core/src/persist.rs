//! Model persistence: save a fully trained NER Globalizer (Local NER
//! encoder + Phrase Embedder + Entity Classifier), optionally together
//! with a mid-stream [`PipelineCheckpoint`], to one versioned binary
//! file and load it back — train once, deploy anywhere, restart
//! without losing stream position.
//!
//! v4 layout (current):
//! `magic ("NGLB") | version (u32) | payload_len (u64) | fnv1a64
//! checksum of payload (u64) | payload`, where the payload is
//! `encoder | phrase | classifier | has_checkpoint (u64: 0/1) |
//! [checkpoint]`. The length + checksum header makes partial or
//! bit-flipped writes detectable before any component parsing runs.
//! v4 differs from v3 only inside the checkpoint: mention and cluster
//! embeddings are stored through the quantized i8 codec (~4× smaller),
//! losslessly because the pipeline canonicalizes embeddings at
//! creation.
//!
//! v3 layout (legacy, still loadable): same framing, embeddings as
//! full `f32`; adds over v2 the per-mention trie-version stamp, the
//! per-surface LRU `touched` stamp and the `SpillCold` retention tag.
//!
//! v2 layout (legacy, still loadable): same framing, checkpoint
//! without the per-mention / per-surface stamps — they load as 0.
//!
//! v1 layout (legacy, still loadable):
//! `magic | version | encoder | phrase | classifier` — no checksum, no
//! checkpoint. Loading a v1 bundle yields `checkpoint: None`; a
//! pipeline built from it simply starts the stream from scratch.
//!
//! [`GlobalizerBundle::save`] is **crash-consistent**: bytes are
//! written to a sibling temp file, fsynced, then atomically renamed
//! over the destination, so a crash mid-save leaves either the old
//! complete file or the new complete file — never a torn mix.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ngl_encoder::TokenEncoder;
use ngl_nn::CodecError;

use crate::checkpoint::{get_checkpoint, put_checkpoint, PipelineCheckpoint, CK_V2, CK_V3, CK_V4};
use crate::classifier::EntityClassifier;
use crate::phrase::PhraseEmbedder;

const MAGIC: &[u8; 4] = b"NGLB";
const VERSION: u32 = 4;
const V3_VERSION: u32 = 3;
const V2_VERSION: u32 = 2;
const LEGACY_VERSION: u32 = 1;

/// Why loading a bundle failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not an NGLB file.
    BadMagic,
    /// A format version this build cannot read.
    UnsupportedVersion(u32),
    /// The v2 payload checksum or length did not match (torn write or
    /// bit rot).
    ChecksumMismatch,
    /// The payload was malformed.
    Codec(CodecError),
    /// Component dimensions disagree with each other.
    Inconsistent(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not an NGLB model file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            PersistError::Codec(e) => write!(f, "malformed payload: {e}"),
            PersistError::Inconsistent(what) => write!(f, "inconsistent bundle: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free integrity hash for the v2
/// payload. Guards against torn writes and bit rot, not adversaries.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A complete trained model: everything [`crate::NerGlobalizer`] needs,
/// plus (optionally) a mid-stream state checkpoint.
#[derive(Debug, Clone)]
pub struct GlobalizerBundle {
    /// The fine-tuned Local NER encoder.
    pub encoder: TokenEncoder,
    /// The contrastively trained Phrase Embedder.
    pub phrase: PhraseEmbedder,
    /// The pooling + classification head.
    pub classifier: EntityClassifier,
    /// Stream state captured by `NerGlobalizer::export_state`, when
    /// the bundle is a restart checkpoint rather than a bare model.
    pub checkpoint: Option<PipelineCheckpoint>,
}

impl GlobalizerBundle {
    /// A bare model bundle (no stream checkpoint).
    pub fn from_models(
        encoder: TokenEncoder,
        phrase: PhraseEmbedder,
        classifier: EntityClassifier,
    ) -> Self {
        Self { encoder, phrase, classifier, checkpoint: None }
    }

    /// Serializes the bundle into one binary blob (v4 layout, quantized
    /// embedding storage).
    pub fn to_bytes(&self) -> Bytes {
        self.to_bytes_versioned(VERSION, CK_V4)
    }

    /// Serializes in the v3 layout (full-`f32` embeddings). Kept for
    /// the migration tests; new code should use [`Self::to_bytes`].
    pub fn to_bytes_v3(&self) -> Bytes {
        self.to_bytes_versioned(V3_VERSION, CK_V3)
    }

    /// Serializes in the v2 layout (checkpoint without the trie-version
    /// / touch stamps). Kept for the migration tests; new code should
    /// use [`Self::to_bytes`].
    pub fn to_bytes_v2(&self) -> Bytes {
        self.to_bytes_versioned(V2_VERSION, CK_V2)
    }

    fn to_bytes_versioned(&self, version: u32, ck_version: u32) -> Bytes {
        let mut payload = BytesMut::new();
        payload.extend_from_slice(&self.encoder.to_bytes());
        payload.extend_from_slice(&self.phrase.to_bytes());
        payload.extend_from_slice(&self.classifier.to_bytes());
        match &self.checkpoint {
            None => payload.put_u64_le(0),
            Some(ck) => {
                payload.put_u64_le(1);
                put_checkpoint(&mut payload, ck, ck_version);
            }
        }
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(version);
        buf.put_u64_le(payload.len() as u64);
        buf.put_u64_le(fnv1a64(&payload));
        buf.extend_from_slice(&payload);
        buf.freeze()
    }

    /// Serializes in the legacy v1 layout (models only — no checksum,
    /// no checkpoint). Kept for back-compat tooling and the migration
    /// tests; new code should use [`Self::to_bytes`].
    pub fn to_bytes_v1(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(LEGACY_VERSION);
        buf.extend_from_slice(&self.encoder.to_bytes());
        buf.extend_from_slice(&self.phrase.to_bytes());
        buf.extend_from_slice(&self.classifier.to_bytes());
        buf.freeze()
    }

    /// Parses a bundle previously produced by [`Self::to_bytes`] (v2)
    /// or [`Self::to_bytes_v1`] / an older build (v1).
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, PersistError> {
        if bytes.remaining() < 8 {
            return Err(PersistError::BadMagic);
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = bytes.get_u32_le();
        match version {
            LEGACY_VERSION => Self::parse_components(bytes, None),
            VERSION | V3_VERSION | V2_VERSION => {
                if bytes.remaining() < 16 {
                    return Err(PersistError::ChecksumMismatch);
                }
                let payload_len = bytes.get_u64_le();
                let checksum = bytes.get_u64_le();
                if bytes.remaining() as u64 != payload_len {
                    return Err(PersistError::ChecksumMismatch);
                }
                if fnv1a64(&bytes) != checksum {
                    return Err(PersistError::ChecksumMismatch);
                }
                let ck_version = match version {
                    VERSION => CK_V4,
                    V3_VERSION => CK_V3,
                    _ => CK_V2,
                };
                Self::parse_components(bytes, Some(ck_version))
            }
            v => Err(PersistError::UnsupportedVersion(v)),
        }
    }

    fn parse_components(mut bytes: Bytes, ck_version: Option<u32>) -> Result<Self, PersistError> {
        let encoder = TokenEncoder::from_bytes(&mut bytes)?;
        let phrase = PhraseEmbedder::from_bytes(&mut bytes)?;
        let classifier = EntityClassifier::from_bytes(&mut bytes)?;
        let checkpoint = if let Some(v) = ck_version {
            match ngl_nn::codec::get_u64(&mut bytes)? {
                0 => None,
                1 => Some(get_checkpoint(&mut bytes, v)?),
                _ => return Err(PersistError::Codec(CodecError::Invalid(
                    "checkpoint flag out of range",
                ))),
            }
        } else {
            None
        };
        if encoder.out_dim() != phrase.dim() {
            return Err(PersistError::Inconsistent("encoder vs phrase dim"));
        }
        Ok(Self { encoder, phrase, classifier, checkpoint })
    }

    /// Writes the bundle to `path` atomically: the bytes land in a
    /// sibling `<name>.tmp` file, are fsynced, and are renamed over the
    /// destination in one step — a crash at any point leaves a
    /// complete file (old or new), never a torn one.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)
        })();
        if write.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        Ok(write?)
    }

    /// Loads a bundle from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let mut f = std::fs::File::open(path)?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use crate::phrase::PhraseEmbedderConfig;
    use ngl_encoder::{ContextualTagger, EncoderConfig};
    use ngl_nn::Matrix;

    fn bundle() -> GlobalizerBundle {
        let dim = 16;
        let mut encoder = TokenEncoder::new(EncoderConfig {
            embed_dim: 8,
            hidden_dim: 12,
            out_dim: dim,
            seed: 13,
            ..Default::default()
        });
        // Give it a transition model so the optional branch is covered.
        let t = ngl_text::BioTag::COUNT;
        encoder.set_transitions(vec![-1.0; t * t]);
        GlobalizerBundle::from_models(
            encoder,
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, seed: 14, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, seed: 15, ..Default::default() }),
        )
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    #[test]
    fn bundle_round_trips_bit_exact() {
        let b = bundle();
        let bytes = b.to_bytes();
        let back = GlobalizerBundle::from_bytes(bytes).expect("load");
        assert!(back.checkpoint.is_none());

        // The models must behave identically, not just parse.
        let sent = toks("gov Beshear said stay home");
        let a = b.encoder.encode(&sent);
        let c = back.encoder.encode(&sent);
        assert_eq!(a.tags, c.tags);
        assert_eq!(a.embeddings, c.embeddings);

        let span = ngl_text::Span::new(1, 2, ngl_text::EntityType::Person);
        assert_eq!(
            b.phrase.embed(&a.embeddings, &span),
            back.phrase.embed(&c.embeddings, &span)
        );
        let locals = Matrix::from_vec(2, 16, vec![0.1; 32]);
        assert_eq!(
            b.classifier.predict_proba(&locals),
            back.classifier.predict_proba(&locals)
        );
    }

    #[test]
    fn legacy_v1_bytes_still_load() {
        let b = bundle();
        let v1 = b.to_bytes_v1();
        let back = GlobalizerBundle::from_bytes(v1).expect("v1 load");
        assert!(back.checkpoint.is_none());
        let sent = toks("gov Beshear said stay home");
        assert_eq!(b.encoder.encode(&sent).embeddings, back.encoder.encode(&sent).embeddings);
    }

    #[test]
    fn legacy_v2_bytes_load_with_zero_stamps() {
        use crate::bases::{CandidateBase, MentionRecord, TweetBase};
        use crate::pipeline::GlobalizerConfig;
        use ngl_ctrie::CTrie;
        use std::collections::{BTreeSet, HashMap};

        let mut ctrie = CTrie::new();
        ctrie.insert(&["beshear"]);
        let mut candidates = CandidateBase::new();
        candidates.add_mention("beshear", MentionRecord {
            tweet: 0,
            start: 1,
            end: 2,
            local_emb: vec![0.5; 16],
            local_type: Some(ngl_text::EntityType::Person),
            trie_version: 1,
        });
        let mut b = bundle();
        b.checkpoint = Some(PipelineCheckpoint {
            cfg: GlobalizerConfig::default(),
            ctrie,
            tweets: TweetBase::new(),
            candidates,
            scanned_tweets: 0,
            scanned_version: 1,
            mention_cache: HashMap::new(),
            seen_ids: BTreeSet::new(),
        });

        let back = GlobalizerBundle::from_bytes(b.to_bytes_v2()).expect("v2 load");
        let ck = back.checkpoint.expect("checkpoint survives");
        let entry = ck.candidates.get("beshear").expect("entry");
        // The v2 wire format has no stamps; they come back zeroed.
        assert_eq!(entry.mentions[0].trie_version, 0);
        assert_eq!(entry.touched, 0);

        // The same bundle through the current (v4) path keeps them.
        let back4 = GlobalizerBundle::from_bytes(b.to_bytes()).expect("v4 load");
        let entry4 = back4.checkpoint.expect("checkpoint").candidates.get("beshear").cloned();
        assert_eq!(entry4.expect("entry").mentions[0].trie_version, 1);
    }

    #[test]
    fn legacy_v3_bytes_load_with_exact_embeddings() {
        use crate::bases::{CandidateBase, MentionRecord, TweetBase};
        use crate::pipeline::GlobalizerConfig;
        use ngl_ctrie::CTrie;
        use std::collections::{BTreeSet, HashMap};

        // Deliberately non-canonical values: a v3 (full-f32) encoding
        // must round-trip them bit-exactly, while the v4 encoding of the
        // same bundle is smaller but quantized.
        let emb: Vec<f32> = (0..16).map(|i| ((i * 37 + 5) as f32).sin() * 0.7).collect();
        let mut ctrie = CTrie::new();
        ctrie.insert(&["beshear"]);
        let mut candidates = CandidateBase::new();
        candidates.add_mention("beshear", MentionRecord {
            tweet: 0,
            start: 1,
            end: 2,
            local_emb: emb.clone(),
            local_type: Some(ngl_text::EntityType::Person),
            trie_version: 3,
        });
        let mut b = bundle();
        b.checkpoint = Some(PipelineCheckpoint {
            cfg: GlobalizerConfig::default(),
            ctrie,
            tweets: TweetBase::new(),
            candidates,
            scanned_tweets: 0,
            scanned_version: 1,
            mention_cache: HashMap::new(),
            seen_ids: BTreeSet::new(),
        });

        let v3 = b.to_bytes_v3();
        let v4 = b.to_bytes();
        assert!(v4.len() < v3.len(), "v4 ({}) must be smaller than v3 ({})", v4.len(), v3.len());

        let back = GlobalizerBundle::from_bytes(v3).expect("v3 load");
        let ck = back.checkpoint.expect("checkpoint survives");
        let entry = ck.candidates.get("beshear").expect("entry");
        assert_eq!(entry.mentions[0].local_emb, emb, "v3 embeddings are bit-exact");
        assert_eq!(entry.mentions[0].trie_version, 3);
    }

    #[test]
    fn save_and_load_via_file() {
        let b = bundle();
        let dir = std::env::temp_dir().join("ngl-persist-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.nglb");
        b.save(&path).expect("save");
        let back = GlobalizerBundle::load(&path).expect("load");
        assert_eq!(b.encoder.out_dim(), back.encoder.out_dim());
        // The atomic-save staging file must not linger.
        assert!(!dir.join("model.nglb.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let dir = std::env::temp_dir().join("ngl-persist-atomic-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.nglb");
        std::fs::write(&path, b"garbage from a previous life").expect("seed file");
        bundle().save(&path).expect("save over existing");
        assert!(GlobalizerBundle::load(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let err = GlobalizerBundle::from_bytes(Bytes::from_static(b"XXXX\x01\x00\x00\x00rest"))
            .expect_err("must fail");
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(99);
        let err = GlobalizerBundle::from_bytes(buf.freeze()).expect_err("must fail");
        assert!(matches!(err, PersistError::UnsupportedVersion(99)));
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let bytes = bundle().to_bytes().to_vec();
        // Flip one bit somewhere inside the payload (past the 24-byte
        // header).
        for pos in [24, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x40;
            let err = GlobalizerBundle::from_bytes(Bytes::from(corrupted))
                .expect_err("corruption must fail");
            assert!(
                matches!(err, PersistError::ChecksumMismatch),
                "bit flip at {pos} gave {err:?}"
            );
        }
    }

    #[test]
    fn truncation_anywhere_fails_cleanly() {
        for bytes in [bundle().to_bytes(), bundle().to_bytes_v1()] {
            // Sample a spread of truncation points (all ~100k is slow).
            for frac in [0.1, 0.35, 0.6, 0.85, 0.99] {
                let cut = (bytes.len() as f64 * frac) as usize;
                let sliced = bytes.slice(0..cut);
                assert!(
                    GlobalizerBundle::from_bytes(sliced).is_err(),
                    "truncation at {cut}/{} must fail",
                    bytes.len()
                );
            }
        }
    }
}
