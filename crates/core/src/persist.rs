//! Model persistence: save a fully trained NER Globalizer (Local NER
//! encoder + Phrase Embedder + Entity Classifier) to one versioned
//! binary file and load it back — train once, deploy anywhere.
//!
//! Layout: `magic ("NGLB") | version (u32) | encoder | phrase |
//! classifier`, each component in its own length-checked binary format
//! (see `ngl_nn::codec`). Corrupted or truncated files fail with a
//! descriptive [`PersistError`] instead of yielding a broken model.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ngl_encoder::TokenEncoder;
use ngl_nn::CodecError;

use crate::classifier::EntityClassifier;
use crate::phrase::PhraseEmbedder;

const MAGIC: &[u8; 4] = b"NGLB";
const VERSION: u32 = 1;

/// Why loading a bundle failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not an NGLB file.
    BadMagic,
    /// A format version this build cannot read.
    UnsupportedVersion(u32),
    /// The payload was malformed.
    Codec(CodecError),
    /// Component dimensions disagree with each other.
    Inconsistent(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not an NGLB model file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Codec(e) => write!(f, "malformed payload: {e}"),
            PersistError::Inconsistent(what) => write!(f, "inconsistent bundle: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// A complete trained model: everything [`crate::NerGlobalizer`] needs.
#[derive(Debug, Clone)]
pub struct GlobalizerBundle {
    /// The fine-tuned Local NER encoder.
    pub encoder: TokenEncoder,
    /// The contrastively trained Phrase Embedder.
    pub phrase: PhraseEmbedder,
    /// The pooling + classification head.
    pub classifier: EntityClassifier,
}

impl GlobalizerBundle {
    /// Serializes the bundle into one binary blob.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.extend_from_slice(&self.encoder.to_bytes());
        buf.extend_from_slice(&self.phrase.to_bytes());
        buf.extend_from_slice(&self.classifier.to_bytes());
        buf.freeze()
    }

    /// Parses a bundle previously produced by [`Self::to_bytes`].
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, PersistError> {
        if bytes.remaining() < 8 {
            return Err(PersistError::BadMagic);
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = bytes.get_u32_le();
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let encoder = TokenEncoder::from_bytes(&mut bytes)?;
        let phrase = PhraseEmbedder::from_bytes(&mut bytes)?;
        let classifier = EntityClassifier::from_bytes(&mut bytes)?;
        if encoder.out_dim() != phrase.dim() {
            return Err(PersistError::Inconsistent("encoder vs phrase dim"));
        }
        Ok(Self { encoder, phrase, classifier })
    }

    /// Writes the bundle to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Loads a bundle from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let mut f = std::fs::File::open(path)?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use crate::phrase::PhraseEmbedderConfig;
    use ngl_encoder::{ContextualTagger, EncoderConfig};
    use ngl_nn::Matrix;

    fn bundle() -> GlobalizerBundle {
        let dim = 16;
        let mut encoder = TokenEncoder::new(EncoderConfig {
            embed_dim: 8,
            hidden_dim: 12,
            out_dim: dim,
            seed: 13,
            ..Default::default()
        });
        // Give it a transition model so the optional branch is covered.
        let t = ngl_text::BioTag::COUNT;
        encoder.set_transitions(vec![-1.0; t * t]);
        GlobalizerBundle {
            encoder,
            phrase: PhraseEmbedder::new(PhraseEmbedderConfig { dim, seed: 14, ..Default::default() }),
            classifier: EntityClassifier::new(ClassifierConfig { dim, seed: 15, ..Default::default() }),
        }
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    #[test]
    fn bundle_round_trips_bit_exact() {
        let b = bundle();
        let bytes = b.to_bytes();
        let back = GlobalizerBundle::from_bytes(bytes).expect("load");

        // The models must behave identically, not just parse.
        let sent = toks("gov Beshear said stay home");
        let a = b.encoder.encode(&sent);
        let c = back.encoder.encode(&sent);
        assert_eq!(a.tags, c.tags);
        assert_eq!(a.embeddings, c.embeddings);

        let span = ngl_text::Span::new(1, 2, ngl_text::EntityType::Person);
        assert_eq!(
            b.phrase.embed(&a.embeddings, &span),
            back.phrase.embed(&c.embeddings, &span)
        );
        let locals = Matrix::from_vec(2, 16, vec![0.1; 32]);
        assert_eq!(
            b.classifier.predict_proba(&locals),
            back.classifier.predict_proba(&locals)
        );
    }

    #[test]
    fn save_and_load_via_file() {
        let b = bundle();
        let dir = std::env::temp_dir().join("ngl-persist-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.nglb");
        b.save(&path).expect("save");
        let back = GlobalizerBundle::load(&path).expect("load");
        assert_eq!(b.encoder.out_dim(), back.encoder.out_dim());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let err = GlobalizerBundle::from_bytes(Bytes::from_static(b"XXXX\x01\x00\x00\x00rest"))
            .expect_err("must fail");
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(99);
        let err = GlobalizerBundle::from_bytes(buf.freeze()).expect_err("must fail");
        assert!(matches!(err, PersistError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncation_anywhere_fails_cleanly() {
        let bytes = bundle().to_bytes();
        // Sample a spread of truncation points (checking all ~100k is slow).
        for frac in [0.1, 0.35, 0.6, 0.85, 0.99] {
            let cut = (bytes.len() as f64 * frac) as usize;
            let sliced = bytes.slice(0..cut);
            assert!(
                GlobalizerBundle::from_bytes(sliced).is_err(),
                "truncation at {cut}/{} must fail",
                bytes.len()
            );
        }
    }
}
