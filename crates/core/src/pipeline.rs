//! The NER Globalizer execution pipeline (§III).
//!
//! [`NerGlobalizer`] sustains a continuous execution over stream batches:
//! Local NER seeds surfaces and embeddings per batch
//! ([`NerGlobalizer::process_batch`]); the Global NER steps — mention
//! extraction, phrase embedding, candidate clustering, pooling and
//! classification — run over everything seen so far
//! ([`NerGlobalizer::finalize`]). Per-stage wall-clock is tracked for the
//! Table IV time-overhead analysis, and [`AblationMode`] switches the
//! pipeline into the Figure 3 component-ablation variants.
//!
//! ## Execution model
//!
//! The three hot stages fan out over an [`ngl_runtime::Executor`]
//! (worker count from `NGL_THREADS`, default = available parallelism):
//! per-tweet encoding in [`NerGlobalizer::process_batch`], the per-tweet
//! CTrie scan + phrase embedding, and per-surface clustering +
//! classification inside [`NerGlobalizer::finalize`]. Every parallel
//! unit is pure and results are assembled in input order, so parallel
//! output is **bitwise identical** to the sequential (`NGL_THREADS=1`)
//! run in every [`AblationMode`] — the invariant the
//! `parallel_equivalence` property tests pin down.
//!
//! ## Incremental finalize
//!
//! `finalize()` used to rebuild the whole [`CandidateBase`] from
//! scratch, making per-batch incremental execution quadratic in stream
//! length. The pipeline now tracks how far the scan has progressed
//! (`scanned_tweets`) together with the [`CTrie::version`] it scanned
//! with, and keeps a mention-embedding cache keyed by
//! `(tweet, start, end)`:
//!
//! * **version unchanged** — only tweets that arrived since the last
//!   `finalize()` are scanned and embedded; earlier mentions are reused
//!   as-is.
//! * **version bumped** (a batch seeded a new surface) — the candidate
//!   store is rebuilt because new surfaces can change the greedy scan's
//!   occurrence boundaries anywhere in the stream, but every previously
//!   embedded `(tweet, start, end)` span is served from the cache
//!   instead of re-running the phrase embedder.
//!
//! Both paths produce byte-identical state to a from-scratch rebuild
//! (the embedder is frozen and deterministic), so repeated incremental
//! calls match one end-of-stream call exactly.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ngl_cluster::agglomerative;
use ngl_ctrie::CTrie;
use ngl_encoder::ContextualTagger;
use ngl_nn::Matrix;
use ngl_runtime::Executor;
use ngl_text::{decode_bio, EntityType, Span};

use crate::bases::{
    CandidateBase, CandidateCluster, MentionRecord, SurfaceEntry, TweetBase, TweetRecord,
};
use crate::classifier::EntityClassifier;
use crate::phrase::PhraseEmbedder;

/// Which pipeline variant runs (Figure 3's incremental component study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationMode {
    /// Stop after Local NER (the bottom curve of Fig. 3).
    LocalOnly,
    /// Local NER + CTrie mention extraction; each surface takes its most
    /// frequent locally-assigned type.
    MentionExtraction,
    /// Adds local mention embeddings: each mention is classified
    /// individually from its own local embedding (no aggregation).
    LocalClassifier,
    /// The full system with global candidate embeddings (top curve).
    FullGlobal,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GlobalizerConfig {
    /// Maximum mention length in tokens for the CTrie scan (§V-A's k).
    pub max_mention_len: usize,
    /// Agglomerative clustering threshold (cosine distance; tuned below
    /// 1, the triplet margin — §V-C).
    pub cluster_threshold: f32,
    /// Minimum classifier probability required to accept a cluster as an
    /// entity; below it the cluster is treated as non-entity. Precision
    /// guard: a confidently mixed cluster should not flood the output
    /// with one type's mentions.
    pub min_confidence: f32,
    /// Which variant to run.
    pub ablation: AblationMode,
}

impl Default for GlobalizerConfig {
    fn default() -> Self {
        Self {
            max_mention_len: 4,
            cluster_threshold: 0.7,
            min_confidence: 0.35,
            ablation: AblationMode::FullGlobal,
        }
    }
}

/// Accumulated wall-clock per stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Time spent in Local NER (encoding + tagging + seeding).
    pub local: Duration,
    /// Total time spent in the Global NER stages
    /// (≈ `extract + cluster + classify` + emission).
    pub global: Duration,
    /// CTrie mention extraction + phrase embedding within `global`.
    #[serde(default)]
    pub extract: Duration,
    /// Candidate clustering within `global`.
    #[serde(default)]
    pub cluster: Duration,
    /// Pooling + classification within `global`.
    #[serde(default)]
    pub classify: Duration,
}

/// Output of one processed batch.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Index of the first tweet of this batch in the stream.
    pub first_tweet: usize,
    /// Local NER spans per tweet of the batch.
    pub local_spans: Vec<Vec<Span>>,
}

/// The NER Globalizer system.
pub struct NerGlobalizer<T: ContextualTagger> {
    local: T,
    phrase: PhraseEmbedder,
    classifier: EntityClassifier,
    cfg: GlobalizerConfig,
    ctrie: CTrie,
    tweets: TweetBase,
    candidates: CandidateBase,
    timings: StageTimings,
    exec: Executor,
    /// How many stored tweets the mention scan has covered.
    scanned_tweets: usize,
    /// The [`CTrie::version`] the scan last ran with; a mismatch means
    /// new surfaces were seeded and earlier scan results are stale.
    scanned_version: u64,
    /// Local mention embeddings by `(tweet, start, end)`. Embeddings
    /// depend only on the (immutable) tweet record and the span, so
    /// entries stay valid across CTrie version bumps and candidate
    /// rebuilds.
    mention_cache: HashMap<(usize, usize, usize), Vec<f32>>,
}

impl<T: ContextualTagger + Clone> Clone for NerGlobalizer<T> {
    fn clone(&self) -> Self {
        Self {
            local: self.local.clone(),
            phrase: self.phrase.clone(),
            classifier: self.classifier.clone(),
            cfg: self.cfg,
            ctrie: self.ctrie.clone(),
            tweets: self.tweets.clone(),
            candidates: self.candidates.clone(),
            timings: self.timings,
            exec: self.exec.clone(),
            scanned_tweets: self.scanned_tweets,
            scanned_version: self.scanned_version,
            mention_cache: self.mention_cache.clone(),
        }
    }
}

impl<T: ContextualTagger> NerGlobalizer<T> {
    /// Assembles a pipeline from a trained local tagger, a trained
    /// phrase embedder and a trained entity classifier.
    ///
    /// # Panics
    /// Panics when the embedding dimensions of the three components
    /// disagree.
    pub fn new(
        local: T,
        phrase: PhraseEmbedder,
        classifier: EntityClassifier,
        cfg: GlobalizerConfig,
    ) -> Self {
        assert_eq!(local.dim(), phrase.dim(), "encoder/embedder dim mismatch");
        Self {
            local,
            phrase,
            classifier,
            cfg,
            ctrie: CTrie::new(),
            tweets: TweetBase::new(),
            candidates: CandidateBase::new(),
            timings: StageTimings::default(),
            exec: Executor::from_env(),
            scanned_tweets: 0,
            scanned_version: 0,
            mention_cache: HashMap::new(),
        }
    }

    /// Replaces the parallel executor (builder style). The default comes
    /// from [`Executor::from_env`]; pass [`Executor::sequential`] for the
    /// exact single-threaded execution.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The executor driving the parallel stages.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The Local NER stage over one batch of tokenized tweets: tags each
    /// sentence, stores its record, registers detected surface forms in
    /// the CTrie. Returns the batch's local outputs.
    ///
    /// Borrowing convenience over [`Self::process_batch_owned`]; callers
    /// that own their token vectors should prefer the owned variant,
    /// which moves them into the [`TweetBase`] instead of cloning.
    pub fn process_batch(&mut self, batch: &[Vec<String>]) -> BatchOutput
    where
        T: Sync,
    {
        self.process_batch_owned(batch.to_vec())
    }

    /// [`Self::process_batch`] taking ownership of the batch: token
    /// vectors and encoder outputs are moved into the stored
    /// [`TweetRecord`]s — no per-tweet cloning on the hot path.
    ///
    /// Tweets are encoded in parallel (each [`ContextualTagger::encode`]
    /// call is independent); CTrie registration and [`TweetBase`]
    /// insertion stay sequential in batch order so stored state is
    /// identical to the sequential execution.
    pub fn process_batch_owned(&mut self, batch: Vec<Vec<String>>) -> BatchOutput
    where
        T: Sync,
    {
        let t0 = Instant::now();
        let first_tweet = self.tweets.len();
        let local = &self.local;
        let encoded: Vec<(ngl_encoder::SentenceEncoding, Vec<Span>)> =
            self.exec.par_map_ref(&batch, |_, tokens| {
                let enc = local.encode(tokens);
                let spans = decode_bio(&enc.tags);
                (enc, spans)
            });
        let mut local_spans = Vec::with_capacity(batch.len());
        for (tokens, (enc, spans)) in batch.into_iter().zip(encoded) {
            for s in &spans {
                let surface: Vec<&str> =
                    tokens[s.start..s.end].iter().map(String::as_str).collect();
                // Stray tags on bare function words are partial-
                // extraction artifacts, never real candidates.
                if !ngl_text::is_stopword_surface(&surface) {
                    self.ctrie.insert(&surface);
                }
            }
            // `Span` is `Copy`, so duplicating the span list for the
            // batch output is one flat memcpy; tokens and embeddings
            // move into the record.
            local_spans.push(spans.clone());
            self.tweets.push(TweetRecord {
                tokens,
                embeddings: enc.embeddings,
                local_spans: spans,
            });
        }
        self.timings.local += t0.elapsed();
        BatchOutput { first_tweet, local_spans }
    }

    /// Runs the Global NER stages over everything processed so far and
    /// returns the final NER output per stored tweet. Can be called
    /// after every batch (incremental execution) or once at the end.
    pub fn finalize(&mut self) -> Vec<Vec<Span>> {
        let t0 = Instant::now();
        let out = match self.cfg.ablation {
            AblationMode::LocalOnly => self.tweets.iter().map(|t| t.local_spans.clone()).collect(),
            mode => {
                let t = Instant::now();
                self.extract_and_embed();
                self.timings.extract += t.elapsed();
                let t = Instant::now();
                self.cluster_candidates(mode);
                self.timings.cluster += t.elapsed();
                let t = Instant::now();
                self.classify_candidates(mode);
                self.timings.classify += t.elapsed();
                self.emit(mode)
            }
        };
        self.timings.global += t0.elapsed();
        out
    }

    /// Stage (i)+(ii): CTrie scan plus phrase embedding of every
    /// occurrence, incremental where possible (see the module docs):
    /// with an unchanged CTrie version only tweets beyond
    /// `scanned_tweets` are scanned; a version bump rebuilds the
    /// candidate store (late-discovered surfaces recover early mentions
    /// and can shift greedy scan boundaries) while reusing every cached
    /// span embedding. Tweets are scanned and embedded in parallel;
    /// candidate insertion stays sequential in tweet order so the store
    /// is identical to a sequential full rebuild.
    fn extract_and_embed(&mut self) {
        let version = self.ctrie.version();
        let start = if version == self.scanned_version {
            self.scanned_tweets
        } else {
            self.candidates = CandidateBase::new();
            0
        };
        let n = self.tweets.len();
        if start < n {
            let ctrie = &self.ctrie;
            let phrase = &self.phrase;
            let tweets = &self.tweets;
            let cache = &self.mention_cache;
            let max_len = self.cfg.max_mention_len;
            let per_tweet: Vec<Vec<(String, MentionRecord)>> =
                self.exec.par_map((start..n).collect::<Vec<usize>>(), |_, ti| {
                    let record = tweets.get(ti);
                    ctrie
                        .extract_mentions(&record.tokens, max_len)
                        .into_iter()
                        .map(|occ| {
                            let local_emb = match cache.get(&(ti, occ.start, occ.end)) {
                                Some(emb) => emb.clone(),
                                None => {
                                    let probe =
                                        Span::new(occ.start, occ.end, EntityType::Person);
                                    phrase.embed(&record.embeddings, &probe)
                                }
                            };
                            let local_type = record
                                .local_spans
                                .iter()
                                .find(|s| s.start == occ.start && s.end == occ.end)
                                .map(|s| s.ty);
                            (
                                occ.surface,
                                MentionRecord {
                                    tweet: ti,
                                    start: occ.start,
                                    end: occ.end,
                                    local_emb,
                                    local_type,
                                },
                            )
                        })
                        .collect()
                });
            for tweet_mentions in per_tweet {
                for (surface, record) in tweet_mentions {
                    self.mention_cache
                        .entry((record.tweet, record.start, record.end))
                        .or_insert_with(|| record.local_emb.clone());
                    self.candidates.add_mention(&surface, record);
                }
            }
        }
        self.scanned_tweets = n;
        self.scanned_version = version;
    }

    /// Stage (iii): split each surface's mentions into candidate
    /// clusters, fanning out per surface (each surface's clustering is
    /// independent). The ablation variants below full-global use one
    /// cluster per surface (no ambiguity resolution).
    fn cluster_candidates(&mut self, mode: AblationMode) {
        let threshold = self.cfg.cluster_threshold;
        let entries: Vec<&mut SurfaceEntry> =
            self.candidates.iter_mut().map(|(_, e)| e).collect();
        self.exec.par_map(entries, |_, entry| {
            cluster_surface(entry, mode, threshold);
        });
    }

    /// Stages (iv)+(v): pool each cluster and classify it, fanning out
    /// per surface (each surface's matmuls are independent). In
    /// [`AblationMode::MentionExtraction`] the "classification" is the
    /// majority local type instead.
    fn classify_candidates(&mut self, mode: AblationMode) {
        let classifier = &self.classifier;
        let min_confidence = self.cfg.min_confidence;
        let entries: Vec<&mut SurfaceEntry> =
            self.candidates.iter_mut().map(|(_, e)| e).collect();
        self.exec.par_map(entries, |_, entry| {
            classify_surface(entry, mode, classifier, min_confidence);
        });
    }

    /// Produces the final span outputs per tweet.
    fn emit(&self, mode: AblationMode) -> Vec<Vec<Span>> {
        let mut out: Vec<Vec<Span>> = vec![Vec::new(); self.tweets.len()];
        for (_, entry) in self.candidates.iter() {
            match mode {
                AblationMode::MentionExtraction | AblationMode::FullGlobal => {
                    for cluster in &entry.clusters {
                        let Some(Some(ty)) = cluster.label else {
                            continue; // unclassified or non-entity
                        };
                        for &mi in &cluster.members {
                            let m = &entry.mentions[mi];
                            out[m.tweet].push(Span::new(m.start, m.end, ty));
                        }
                    }
                }
                AblationMode::LocalClassifier => {
                    for m in &entry.mentions {
                        let locals = Matrix::from_rows(&[m.local_emb.as_slice()]);
                        if let Some(ty) =
                            self.classifier.predict_confident(&locals, self.cfg.min_confidence)
                        {
                            out[m.tweet].push(Span::new(m.start, m.end, ty));
                        }
                    }
                }
                AblationMode::LocalOnly => {}
            }
        }
        for spans in &mut out {
            spans.sort_by_key(|s| (s.start, s.end));
        }
        out
    }

    /// Local NER outputs of every stored tweet (for ablations and the
    /// Table IV "Local NER" columns).
    pub fn local_outputs(&self) -> Vec<Vec<Span>> {
        self.tweets.iter().map(|t| t.local_spans.clone()).collect()
    }

    /// Accumulated per-stage wall-clock.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Number of surface forms currently registered in the CTrie.
    pub fn n_surfaces(&self) -> usize {
        self.ctrie.len()
    }

    /// Number of span embeddings held by the incremental mention cache
    /// (diagnostics; grows monotonically with the scanned stream).
    pub fn cached_mentions(&self) -> usize {
        self.mention_cache.len()
    }

    /// Drops all incremental state — the mention-embedding cache and the
    /// scan watermark — forcing the next [`Self::finalize`] to rebuild
    /// and re-embed everything from scratch. Benchmarking hook for
    /// comparing incremental against full-rebuild finalization; output
    /// is unaffected (both paths are byte-identical).
    pub fn reset_incremental_state(&mut self) {
        self.mention_cache.clear();
        self.scanned_tweets = 0;
        self.scanned_version = 0;
        self.candidates = CandidateBase::new();
    }

    /// Read access to the candidate store (diagnostics, examples).
    pub fn candidate_base(&self) -> &CandidateBase {
        &self.candidates
    }

    /// Read access to the tweet store.
    pub fn tweet_base(&self) -> &TweetBase {
        &self.tweets
    }

    /// The trained local tagger (shared with baselines in experiments).
    pub fn local_tagger(&self) -> &T {
        &self.local
    }
}

/// Clusters one surface's mentions in place (stage iii for a single
/// [`SurfaceEntry`]); free function so the parallel fan-out borrows only
/// the entry.
fn cluster_surface(entry: &mut SurfaceEntry, mode: AblationMode, threshold: f32) {
    entry.clusters.clear();
    if entry.mentions.is_empty() {
        return;
    }
    if mode == AblationMode::FullGlobal {
        // Agglomerative clustering is O(n²·merges); very frequent
        // surfaces (often Local-NER junk like stopwords) can collect
        // thousands of mentions, so those fall back to the one-pass
        // online approximation.
        const BATCH_CLUSTER_CAP: usize = 400;
        if entry.mentions.len() <= BATCH_CLUSTER_CAP {
            let points: Vec<&[f32]> =
                entry.mentions.iter().map(|m| m.local_emb.as_slice()).collect();
            let clustering = agglomerative(&points, threshold);
            for group in clustering.groups() {
                entry.clusters.push(CandidateCluster {
                    members: group,
                    global_emb: Vec::new(),
                    label: None,
                });
            }
        } else {
            let mut online = ngl_cluster::OnlineClusters::new(threshold);
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (mi, m) in entry.mentions.iter().enumerate() {
                let c = online.insert(&m.local_emb);
                if c == groups.len() {
                    groups.push(Vec::new());
                }
                groups[c].push(mi);
            }
            for group in groups {
                entry.clusters.push(CandidateCluster {
                    members: group,
                    global_emb: Vec::new(),
                    label: None,
                });
            }
        }
    } else {
        entry.clusters.push(CandidateCluster {
            members: (0..entry.mentions.len()).collect(),
            global_emb: Vec::new(),
            label: None,
        });
    }
}

/// Pools and classifies one surface's clusters in place (stages iv+v
/// for a single [`SurfaceEntry`]).
fn classify_surface(
    entry: &mut SurfaceEntry,
    mode: AblationMode,
    classifier: &EntityClassifier,
    min_confidence: f32,
) {
    // Split borrow: clusters vs mentions.
    let mentions = std::mem::take(&mut entry.mentions);
    for cluster in &mut entry.clusters {
        match mode {
            AblationMode::MentionExtraction => {
                cluster.label = Some(majority_local_type(
                    cluster.members.iter().map(|&m| mentions[m].local_type),
                ));
            }
            AblationMode::FullGlobal => {
                let rows: Vec<&[f32]> = cluster
                    .members
                    .iter()
                    .map(|&m| mentions[m].local_emb.as_slice())
                    .collect();
                let locals = Matrix::from_rows(&rows);
                cluster.global_emb = classifier.global_embedding(&locals);
                cluster.label = Some(classifier.predict_confident(&locals, min_confidence));
            }
            AblationMode::LocalClassifier | AblationMode::LocalOnly => {
                // Per-mention classification happens at emit time.
                cluster.label = None;
            }
        }
    }
    entry.mentions = mentions;
}

/// Majority vote over the local types of a cluster's mentions; `None`
/// when no mention carries a local type.
fn majority_local_type(
    types: impl Iterator<Item = Option<EntityType>>,
) -> Option<EntityType> {
    let mut counts = [0usize; EntityType::COUNT];
    for t in types.flatten() {
        counts[t.index()] += 1;
    }
    let (best, n) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty counts");
    if *n == 0 {
        None
    } else {
        Some(EntityType::from_index(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use crate::phrase::PhraseEmbedderConfig;
    use ngl_encoder::{SentenceEncoding, SequenceTagger};
    use ngl_text::BioTag;

    /// A deterministic fake local tagger for pipeline unit tests: tags
    /// any capitalized token as B-PER and embeds tokens by a hash-driven
    /// one-hot so the clustering is predictable.
    struct FakeTagger {
        dim: usize,
    }

    impl SequenceTagger for FakeTagger {
        fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
            tokens
                .iter()
                .map(|t| {
                    if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                        BioTag::B(EntityType::Person)
                    } else {
                        BioTag::O
                    }
                })
                .collect()
        }
    }

    impl ContextualTagger for FakeTagger {
        fn dim(&self) -> usize {
            self.dim
        }

        fn encode(&self, tokens: &[String]) -> SentenceEncoding {
            let mut emb = Matrix::zeros(tokens.len(), self.dim);
            for (i, t) in tokens.iter().enumerate() {
                let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
                emb.row_mut(i)[h % self.dim] = 1.0;
            }
            let tags = self.tag(tokens);
            SentenceEncoding {
                embeddings: emb,
                tags,
                probs: Matrix::zeros(tokens.len(), BioTag::COUNT),
            }
        }
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    fn pipeline(mode: AblationMode) -> NerGlobalizer<FakeTagger> {
        let dim = 8;
        NerGlobalizer::new(
            FakeTagger { dim },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig { ablation: mode, ..Default::default() },
        )
    }

    #[test]
    fn local_only_passes_through_local_spans() {
        let mut p = pipeline(AblationMode::LocalOnly);
        let batch = vec![toks("Beshear spoke today"), toks("nothing here")];
        let out = p.process_batch(&batch);
        assert_eq!(out.local_spans[0].len(), 1);
        assert!(out.local_spans[1].is_empty());
        let fin = p.finalize();
        assert_eq!(fin, p.local_outputs());
    }

    #[test]
    fn mention_extraction_recovers_missed_lowercase_mention() {
        let mut p = pipeline(AblationMode::MentionExtraction);
        // "Beshear" detected locally in tweet 0; lowercase "beshear" in
        // tweet 1 is missed by the fake tagger but recovered by the scan.
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear for this")]);
        let fin = p.finalize();
        assert_eq!(fin[0], vec![Span::new(0, 1, EntityType::Person)]);
        assert_eq!(fin[1], vec![Span::new(1, 2, EntityType::Person)]);
    }

    #[test]
    fn surfaces_found_in_later_batches_recover_earlier_mentions() {
        let mut p = pipeline(AblationMode::MentionExtraction);
        // Batch 1: lowercase mention, locally missed; no surface yet.
        p.process_batch(&[toks("saw beshear yesterday")]);
        // Batch 2: capitalized mention seeds the surface.
        p.process_batch(&[toks("Beshear responded")]);
        let fin = p.finalize();
        assert_eq!(fin[0].len(), 1, "early mention recovered: {fin:?}");
        assert_eq!(fin[1].len(), 1);
    }

    #[test]
    fn timings_accumulate() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke")]);
        p.finalize();
        let t = p.timings();
        assert!(t.local > Duration::ZERO);
        assert!(t.global > Duration::ZERO);
    }

    #[test]
    fn full_global_clusters_per_surface() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[
            toks("Beshear spoke today"),
            toks("thanks beshear again"),
            toks("Beshear announced plans"),
        ]);
        p.finalize();
        let cb = p.candidate_base();
        let entry = cb.get("beshear").expect("surface registered");
        assert_eq!(entry.mentions.len(), 3);
        assert!(!entry.clusters.is_empty());
        let total: usize = entry.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 3, "clusters partition mentions");
        // Identical embeddings (same token) must share one cluster.
        assert_eq!(entry.clusters.len(), 1);
        assert!(entry.clusters[0].label.is_some());
        assert_eq!(entry.clusters[0].global_emb.len(), 8);
    }

    #[test]
    fn majority_type_vote_breaks_toward_most_frequent() {
        let t = majority_local_type(
            [
                Some(EntityType::Person),
                Some(EntityType::Location),
                Some(EntityType::Person),
                None,
            ]
            .into_iter(),
        );
        assert_eq!(t, Some(EntityType::Person));
        assert_eq!(majority_local_type([None, None].into_iter()), None);
    }

    #[test]
    fn n_surfaces_counts_unique_folded_forms() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear and BESHEAR and Italy")]);
        // Fake tagger tags all three capitalized tokens; "beshear" folds
        // to one surface.
        assert_eq!(p.n_surfaces(), 2);
    }

    /// Flattens the candidate store into an exactly comparable
    /// fingerprint (f32s by bit pattern).
    fn fingerprint(p: &NerGlobalizer<FakeTagger>) -> Vec<(String, Vec<u64>, Vec<u32>)> {
        p.candidate_base()
            .iter()
            .map(|(surface, e)| {
                let mut nums: Vec<u64> = Vec::new();
                let mut bits: Vec<u32> = Vec::new();
                for m in &e.mentions {
                    nums.extend([m.tweet as u64, m.start as u64, m.end as u64]);
                    bits.extend(m.local_emb.iter().map(|x| x.to_bits()));
                }
                for c in &e.clusters {
                    nums.push(u64::MAX); // cluster delimiter
                    nums.extend(c.members.iter().map(|&m| m as u64));
                    bits.extend(c.global_emb.iter().map(|x| x.to_bits()));
                }
                (surface.to_string(), nums, bits)
            })
            .collect()
    }

    #[test]
    fn incremental_finalize_matches_single_finalize() {
        let batches = [
            vec![toks("Beshear spoke today"), toks("saw beshear downtown")],
            vec![toks("nothing here at all")],
            vec![toks("Italy won again"), toks("thanks beshear for italy")],
            vec![toks("more beshear and Italy talk")],
        ];
        for mode in [
            AblationMode::LocalOnly,
            AblationMode::MentionExtraction,
            AblationMode::LocalClassifier,
            AblationMode::FullGlobal,
        ] {
            let mut inc = pipeline(mode);
            let mut full = pipeline(mode);
            let mut inc_out = Vec::new();
            for b in &batches {
                inc.process_batch(b);
                inc_out = inc.finalize(); // finalize after every batch
                full.process_batch(b);
            }
            let full_out = full.finalize(); // one end-of-stream finalize
            assert_eq!(inc_out, full_out, "outputs diverge in {mode:?}");
            assert_eq!(
                fingerprint(&inc),
                fingerprint(&full),
                "candidate state diverges in {mode:?}"
            );
        }
    }

    #[test]
    fn unchanged_trie_version_skips_rescan_of_old_tweets() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear again")]);
        p.finalize();
        let cached = p.cached_mentions();
        assert!(cached > 0);
        // A batch with no new surfaces (known surface + stopwords) keeps
        // the CTrie version, so only the new tweet is scanned/embedded.
        p.process_batch(&[toks("more beshear talk")]);
        p.finalize();
        assert_eq!(p.cached_mentions(), cached + 1, "exactly the new mention embeds");
    }

    #[test]
    fn version_bump_rebuilds_candidates_but_reuses_cached_embeddings() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("saw beshear and italy yesterday")]);
        p.finalize();
        assert_eq!(p.cached_mentions(), 0, "no surfaces yet, nothing embedded");
        // New surfaces arrive: version bumps, the old tweet is rescanned
        // and its recovered mentions are embedded and cached.
        p.process_batch(&[toks("Beshear visited Italy")]);
        p.finalize();
        let cached = p.cached_mentions();
        assert_eq!(cached, 4, "two mentions in each tweet");
        let fp = fingerprint(&p);
        // Re-finalizing with no new data is a no-op scan that reproduces
        // the exact same state from cache.
        p.finalize();
        assert_eq!(p.cached_mentions(), cached);
        assert_eq!(fingerprint(&p), fp);
    }

    #[test]
    fn reset_incremental_state_reproduces_identical_output() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear again")]);
        let out = p.finalize();
        let fp = fingerprint(&p);
        p.reset_incremental_state();
        assert_eq!(p.cached_mentions(), 0);
        let out2 = p.finalize();
        assert_eq!(out, out2);
        assert_eq!(fingerprint(&p), fp);
    }

    #[test]
    fn sequential_executor_matches_default_executor() {
        let batch = vec![
            toks("Beshear spoke today"),
            toks("thanks beshear again"),
            toks("Italy won and beshear cheered"),
        ];
        for mode in [
            AblationMode::MentionExtraction,
            AblationMode::LocalClassifier,
            AblationMode::FullGlobal,
        ] {
            let mut seq = pipeline(mode).with_executor(ngl_runtime::Executor::sequential());
            let mut par = pipeline(mode).with_executor(ngl_runtime::Executor::new(4));
            seq.process_batch(&batch);
            par.process_batch(&batch);
            assert_eq!(seq.finalize(), par.finalize(), "{mode:?}");
            assert_eq!(fingerprint(&seq), fingerprint(&par), "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn dimension_mismatch_is_rejected() {
        let _ = NerGlobalizer::new(
            FakeTagger { dim: 8 },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim: 16, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim: 16, ..Default::default() }),
            GlobalizerConfig::default(),
        );
    }
}
