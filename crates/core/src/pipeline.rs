//! The NER Globalizer execution pipeline (§III).
//!
//! [`NerGlobalizer`] sustains a continuous execution over stream batches:
//! Local NER seeds surfaces and embeddings per batch
//! ([`NerGlobalizer::process_batch`]); the Global NER steps — mention
//! extraction, phrase embedding, candidate clustering, pooling and
//! classification — run over everything seen so far
//! ([`NerGlobalizer::finalize`]). Per-stage wall-clock is tracked for the
//! Table IV time-overhead analysis, and [`AblationMode`] switches the
//! pipeline into the Figure 3 component-ablation variants.
//!
//! ## Execution model
//!
//! The three hot stages fan out over an [`ngl_runtime::Executor`]
//! (worker count from `NGL_THREADS`, default = available parallelism):
//! per-tweet encoding in [`NerGlobalizer::process_batch`], the per-tweet
//! CTrie scan + phrase embedding, and per-surface clustering +
//! classification inside [`NerGlobalizer::finalize`]. Every parallel
//! unit is pure and results are assembled in input order, so parallel
//! output is **bitwise identical** to the sequential (`NGL_THREADS=1`)
//! run in every [`AblationMode`] — the invariant the
//! `parallel_equivalence` property tests pin down.
//!
//! ## Incremental finalize
//!
//! `finalize()` used to rebuild the whole [`CandidateBase`] from
//! scratch, making per-batch incremental execution quadratic in stream
//! length. The pipeline now tracks how far the scan has progressed
//! (`scanned_tweets`) together with the [`CTrie::version`] it scanned
//! with, and keeps a mention-embedding cache keyed by
//! `(tweet, start, end)`:
//!
//! * **version unchanged** — only tweets that arrived since the last
//!   `finalize()` are scanned and embedded; earlier mentions are reused
//!   as-is.
//! * **version bumped** (a batch seeded a new surface) — the candidate
//!   store is rebuilt because new surfaces can change the greedy scan's
//!   occurrence boundaries anywhere in the stream, but every previously
//!   embedded `(tweet, start, end)` span is served from the cache
//!   instead of re-running the phrase embedder.
//!
//! Both paths produce byte-identical state to a from-scratch rebuild
//! (the embedder is frozen and deterministic), so repeated incremental
//! calls match one end-of-stream call exactly.
//!
//! ## Fault tolerance & bounded state
//!
//! The stream-facing entry points come in *fault-isolated* variants
//! ([`NerGlobalizer::try_process_batch_owned`],
//! [`NerGlobalizer::try_process_batch_with_ids`]) built on
//! [`Executor::try_par_map`]: a tweet whose encoding task panics, whose
//! embeddings come back non-finite, that re-uses an already-seen id, or
//! that is empty (when [`GlobalizerConfig::reject_empty`] is set)
//! degrades to a **skipped record** reported in a [`BatchReport`]
//! instead of tearing down the pipeline. Rejected tweets are never
//! stored, so the resulting state is *exactly* the state of a clean run
//! over the surviving inputs. [`GlobalizerConfig::retention`] bounds
//! the [`TweetBase`] and the mention cache; eviction only ever removes
//! tweets strictly below the scan watermark (see
//! [`NerGlobalizer::scan_watermark`]), so incremental finalize stays
//! correct — evicted tweets keep their already-extracted mentions
//! frozen in the candidate store.

use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ngl_ctrie::CTrie;
use ngl_encoder::ContextualTagger;
use ngl_nn::Matrix;
use ngl_runtime::{Executor, TaskError};
use ngl_text::{decode_bio, EntityType, Span};

use crate::bases::{
    CandidateBase, CandidateCluster, MentionRecord, SurfaceEntry, TweetBase, TweetRecord,
};
use crate::checkpoint::PipelineCheckpoint;
use crate::classifier::EntityClassifier;
use crate::persist::PersistError;
use crate::phrase::PhraseEmbedder;

/// Which pipeline variant runs (Figure 3's incremental component study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationMode {
    /// Stop after Local NER (the bottom curve of Fig. 3).
    LocalOnly,
    /// Local NER + CTrie mention extraction; each surface takes its most
    /// frequent locally-assigned type.
    MentionExtraction,
    /// Adds local mention embeddings: each mention is classified
    /// individually from its own local embedding (no aggregation).
    LocalClassifier,
    /// The full system with global candidate embeddings (top curve).
    FullGlobal,
}

/// How much stream state the pipeline retains (TweetBase records plus
/// the derived mention cache). Eviction is **watermark-aware**: only
/// tweets strictly below the scan watermark are ever evicted, so the
/// incremental scan never loses unscanned input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetentionPolicy {
    /// Keep everything (the default; historical behaviour).
    #[default]
    Unbounded,
    /// Keep at most this many tweet records.
    MaxTweets(usize),
    /// Keep tweet records totalling at most this many (approximate)
    /// heap bytes — see `TweetRecord::approx_bytes`.
    MaxBytes(usize),
    /// Bound the **candidate store** instead of the tweet store: keep
    /// resident [`CandidateBase`] entries under this many approximate
    /// heap bytes by spilling the least-recently-touched clean surfaces
    /// (mentions + cached embeddings) to a [`crate::durable::SpillPool`]
    /// on disk, rehydrating them transparently when the CTrie matches
    /// the surface again. Tweets are never evicted under this policy,
    /// and final outputs are identical to an unbounded run — spilled
    /// entries are still consulted (read-only) at emit time. Requires a
    /// pool: [`NerGlobalizer::finalize_with_spill`] /
    /// [`crate::durable::DurableGlobalizer`]; a plain
    /// [`NerGlobalizer::finalize`] treats it as [`Self::Unbounded`].
    SpillCold(usize),
}

/// Which [`Executor`] a freshly assembled pipeline runs on. Serialized
/// as a policy (not a handle) so [`GlobalizerConfig`] stays `Copy` and
/// checkpoint-safe; the actual pool is resolved at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolPolicy {
    /// Each pipeline builds its own executor via [`Executor::from_env`]
    /// (the default; historical behaviour).
    #[default]
    PerPipeline,
    /// Use the process-wide [`Executor::shared`] pool. The serving
    /// front-end runs its ingest loop and query handlers on one pool
    /// this way instead of oversubscribing cores with one pool per
    /// pipeline clone.
    Shared,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GlobalizerConfig {
    /// Maximum mention length in tokens for the CTrie scan (§V-A's k).
    pub max_mention_len: usize,
    /// Agglomerative clustering threshold (cosine distance; tuned below
    /// 1, the triplet margin — §V-C).
    pub cluster_threshold: f32,
    /// Minimum classifier probability required to accept a cluster as an
    /// entity; below it the cluster is treated as non-entity. Precision
    /// guard: a confidently mixed cluster should not flood the output
    /// with one type's mentions.
    pub min_confidence: f32,
    /// Which variant to run.
    pub ablation: AblationMode,
    /// Bound on retained stream state (tweets + mention cache).
    #[serde(default)]
    pub retention: RetentionPolicy,
    /// Hard cap on tokens ingested per tweet; longer token lists are
    /// truncated at the `try_process_*` boundary (reported in
    /// [`BatchReport::truncated`]) so one adversarial record can't blow
    /// up encoder cost or stored state.
    #[serde(default = "default_max_tweet_tokens")]
    pub max_tweet_tokens: usize,
    /// When set, tweets with no tokens are rejected into the
    /// [`BatchReport`] instead of stored as empty records. Off by
    /// default: empty records are harmless and keeping them preserves
    /// the historical 1:1 batch-to-store mapping.
    #[serde(default)]
    pub reject_empty: bool,
    /// Which executor the pipeline is constructed with — per-pipeline
    /// (default) or the process-wide shared pool. Not part of the
    /// checkpoint wire format: recovery restores the default and the
    /// opener re-applies its policy.
    #[serde(default, skip_serializing)]
    pub pool: PoolPolicy,
}

fn default_max_tweet_tokens() -> usize {
    1024
}

impl Default for GlobalizerConfig {
    fn default() -> Self {
        Self {
            max_mention_len: 4,
            cluster_threshold: 0.7,
            min_confidence: 0.35,
            ablation: AblationMode::FullGlobal,
            retention: RetentionPolicy::Unbounded,
            max_tweet_tokens: default_max_tweet_tokens(),
            reject_empty: false,
            pool: PoolPolicy::PerPipeline,
        }
    }
}

/// Accumulated wall-clock per stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Time spent in Local NER (encoding + tagging + seeding).
    pub local: Duration,
    /// Total time spent in the Global NER stages
    /// (≈ `extract + cluster + classify` + emission).
    pub global: Duration,
    /// CTrie mention extraction + phrase embedding within `global`.
    #[serde(default)]
    pub extract: Duration,
    /// Candidate clustering within `global`.
    #[serde(default)]
    pub cluster: Duration,
    /// Pooling + classification within `global`.
    #[serde(default)]
    pub classify: Duration,
}

/// Output of one processed batch.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Index of the first tweet of this batch in the stream.
    pub first_tweet: usize,
    /// Local NER spans per **accepted** tweet of the batch, aligned
    /// with the records stored from `first_tweet` on (identical to
    /// per-input alignment when nothing was rejected).
    pub local_spans: Vec<Vec<Span>>,
}

/// Fault accounting for one `try_process_*` batch: which inputs were
/// stored, which were dropped and why, and which were truncated on the
/// way in. Indices are batch-local input positions.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Inputs accepted into the [`TweetBase`], in input order.
    pub ok: Vec<usize>,
    /// Inputs dropped (panicking encode task, non-finite embeddings,
    /// duplicate id, empty tweet under `reject_empty`), in input order.
    pub rejected: Vec<usize>,
    /// Why each rejected input was dropped — `errors[k]` explains
    /// `rejected[k]`, and `errors[k].index` is that input position.
    pub errors: Vec<TaskError>,
    /// Inputs stored only after their token list was cut to
    /// [`GlobalizerConfig::max_tweet_tokens`].
    pub truncated: Vec<usize>,
}

impl BatchReport {
    /// Whether every input of the batch was stored untruncated.
    pub fn all_ok(&self) -> bool {
        self.rejected.is_empty() && self.truncated.is_empty()
    }
}

/// One span from the read-only query path
/// ([`NerGlobalizer::tag_query`]), with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTag {
    /// The tagged span (token coordinates in the queried message).
    pub span: Span,
    /// Canonical (folded, space-joined) surface the CTrie matched;
    /// `None` for spans contributed by Local NER alone.
    pub surface: Option<String>,
    /// Cosine similarity to the winning labeled cluster centroid;
    /// `None` for local-only spans.
    pub score: Option<f32>,
    /// Whether the type came from the global candidate state rather
    /// than the local tagger.
    pub global: bool,
}

/// Per-cluster line of a [`SurfaceSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// `None` — not yet classified; `Some(None)` — classified
    /// non-entity; `Some(Some(ty))` — entity cluster (the
    /// [`crate::bases::CandidateCluster::label`] lattice).
    pub label: Option<Option<EntityType>>,
    /// Number of member mentions.
    pub members: usize,
}

/// Read-only snapshot of one surface's global state
/// ([`NerGlobalizer::surface_summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceSummary {
    /// The canonical (folded, space-joined) form the query resolved to.
    pub surface: String,
    /// Whether the surface is registered in the CTrie at all.
    pub known: bool,
    /// Whether a resident [`crate::bases::SurfaceEntry`] backs the
    /// counts below. `false` for unknown surfaces and for entries
    /// spilled cold to disk — the summary reflects *resident* finalized
    /// state, consistent with the serving snapshot rule.
    pub resident: bool,
    /// Mentions recorded for this surface.
    pub mentions: usize,
    /// One line per candidate cluster.
    pub clusters: Vec<ClusterSummary>,
    /// LRU touch stamp (spill-eviction recency; 0 when untracked).
    pub touched: u64,
    /// Mentions both frozen (source tweet evicted) and stale (the trie
    /// grew after extraction) — see
    /// [`NerGlobalizer::stale_frozen_mentions`].
    pub stale_frozen: usize,
}

/// The NER Globalizer system.
pub struct NerGlobalizer<T: ContextualTagger> {
    local: T,
    phrase: PhraseEmbedder,
    classifier: EntityClassifier,
    cfg: GlobalizerConfig,
    ctrie: CTrie,
    tweets: TweetBase,
    candidates: CandidateBase,
    timings: StageTimings,
    exec: Executor,
    /// How many stored tweets the mention scan has covered.
    scanned_tweets: usize,
    /// The [`CTrie::version`] the scan last ran with; a mismatch means
    /// new surfaces were seeded and earlier scan results are stale.
    scanned_version: u64,
    /// Local mention embeddings by `(tweet, start, end)`. Embeddings
    /// depend only on the (immutable) tweet record and the span, so
    /// entries stay valid across CTrie version bumps and candidate
    /// rebuilds.
    mention_cache: HashMap<(usize, usize, usize), Vec<f32>>,
    /// Tweet ids already consumed by [`Self::try_process_batch_with_ids`]
    /// (ids are claimed on first sight, even if that record is later
    /// rejected, so replays are deterministic).
    seen_ids: BTreeSet<u64>,
    /// Task errors from fault-isolated finalize scans, drained by
    /// [`Self::take_finalize_errors`]. Transient diagnostics — not part
    /// of checkpointed state.
    finalize_errors: Vec<TaskError>,
    /// Surfaces kept resident because their cold spill failed
    /// (lossless degradation: the entry simply stays in memory).
    /// Transient diagnostics, like `finalize_errors`.
    spill_pins: u64,
    /// Spill reads that failed (rehydration or emit): the affected
    /// entry restarted empty or its spans were missing from one
    /// finalize's output. Lossy degradation — a nonzero count means
    /// live state/output may diverge from a clean run until the next
    /// full rebuild or snapshot recovery.
    spill_losses: u64,
    /// Pre-computed encodings keyed by *truncated* token vector,
    /// installed during WAL replay (see
    /// [`Self::prewarm_replay_encodes`]). Consulted before
    /// [`ContextualTagger::encode`]; empty outside replay. Transient —
    /// never checkpointed.
    replay_memo: HashMap<Vec<String>, ngl_encoder::SentenceEncoding>,
    /// Shard-ownership filter `(index, count)`: when set, the candidate
    /// base only admits surfaces with
    /// `fnv1a64(surface) % count == index`; non-owned scan results
    /// still advance the touch clock (see [`CandidateBase`]) so owned
    /// entries carry the same stamps as an unfiltered run. Runtime
    /// wiring like `exec` — never serialized, survives state import.
    shard_filter: Option<(u32, u32)>,
}

impl<T: ContextualTagger + Clone> Clone for NerGlobalizer<T> {
    fn clone(&self) -> Self {
        Self {
            local: self.local.clone(),
            phrase: self.phrase.clone(),
            classifier: self.classifier.clone(),
            cfg: self.cfg,
            ctrie: self.ctrie.clone(),
            tweets: self.tweets.clone(),
            candidates: self.candidates.clone(),
            timings: self.timings,
            exec: self.exec.clone(),
            scanned_tweets: self.scanned_tweets,
            scanned_version: self.scanned_version,
            mention_cache: self.mention_cache.clone(),
            seen_ids: self.seen_ids.clone(),
            finalize_errors: self.finalize_errors.clone(),
            spill_pins: self.spill_pins,
            spill_losses: self.spill_losses,
            replay_memo: self.replay_memo.clone(),
            shard_filter: self.shard_filter,
        }
    }
}

impl<T: ContextualTagger> NerGlobalizer<T> {
    /// Assembles a pipeline from a trained local tagger, a trained
    /// phrase embedder and a trained entity classifier.
    ///
    /// # Panics
    /// Panics when the embedding dimensions of the three components
    /// disagree.
    pub fn new(
        local: T,
        phrase: PhraseEmbedder,
        classifier: EntityClassifier,
        cfg: GlobalizerConfig,
    ) -> Self {
        assert_eq!(local.dim(), phrase.dim(), "encoder/embedder dim mismatch");
        Self {
            local,
            phrase,
            classifier,
            cfg,
            ctrie: CTrie::new(),
            tweets: TweetBase::new(),
            candidates: CandidateBase::new(),
            timings: StageTimings::default(),
            exec: match cfg.pool {
                PoolPolicy::PerPipeline => Executor::from_env(),
                PoolPolicy::Shared => Executor::shared(),
            },
            scanned_tweets: 0,
            scanned_version: 0,
            mention_cache: HashMap::new(),
            seen_ids: BTreeSet::new(),
            finalize_errors: Vec::new(),
            spill_pins: 0,
            spill_losses: 0,
            replay_memo: HashMap::new(),
            shard_filter: None,
        }
    }

    /// Replaces the parallel executor (builder style). The default comes
    /// from [`Executor::from_env`]; pass [`Executor::sequential`] for the
    /// exact single-threaded execution.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The executor driving the parallel stages.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Restricts the candidate base to shard `index` of `count`: only
    /// surfaces with `shard_of_surface(surface, count) == index` are
    /// admitted (see [`crate::shard::shard_of_surface`]); every other
    /// scan result just advances the touch clock. Runtime wiring, not
    /// checkpointed state — it survives [`Self::import_state`] and must
    /// be set *before* replay so filtered digests reproduce.
    ///
    /// # Panics
    /// Panics when `index >= count` or `count == 0` — a
    /// misconfigured filter would silently drop every mention.
    pub fn set_shard_ownership(&mut self, index: u32, count: u32) {
        assert!(count > 0 && index < count, "shard index {index} out of range for {count} shards");
        self.shard_filter = Some((index, count));
    }

    /// Removes the shard-ownership filter (the merged pipeline admits
    /// everything).
    pub fn clear_shard_ownership(&mut self) {
        self.shard_filter = None;
    }

    /// The active shard-ownership filter `(index, count)`, if any.
    pub fn shard_ownership(&self) -> Option<(u32, u32)> {
        self.shard_filter
    }

    /// Whether this pipeline's candidate base stores `surface` under
    /// the active ownership filter (always true when unfiltered).
    fn owns_surface(&self, surface: &str) -> bool {
        match self.shard_filter {
            Some((index, count)) => crate::shard::shard_of_surface(surface, count) == index,
            None => true,
        }
    }

    /// The Local NER stage over one batch of tokenized tweets: tags each
    /// sentence, stores its record, registers detected surface forms in
    /// the CTrie. Returns the batch's local outputs.
    ///
    /// Borrowing convenience over [`Self::process_batch_owned`]; callers
    /// that own their token vectors should prefer the owned variant,
    /// which moves them into the [`TweetBase`] instead of cloning.
    pub fn process_batch(&mut self, batch: &[Vec<String>]) -> BatchOutput
    where
        T: Sync,
    {
        self.process_batch_owned(batch.to_vec())
    }

    /// [`Self::process_batch`] taking ownership of the batch: token
    /// vectors and encoder outputs are moved into the stored
    /// [`TweetRecord`]s — no per-tweet cloning on the hot path.
    ///
    /// Fault-isolated under the hood (see
    /// [`Self::try_process_batch_owned`]): a poison tweet is silently
    /// skipped here; callers that need to observe skips should use the
    /// `try_` variant.
    pub fn process_batch_owned(&mut self, batch: Vec<Vec<String>>) -> BatchOutput
    where
        T: Sync,
    {
        self.try_process_batch_owned(batch).0
    }

    /// Fault-isolated batch ingestion. Tweets are encoded in parallel
    /// (each [`ContextualTagger::encode`] call is independent) with
    /// per-task panic isolation; CTrie registration and [`TweetBase`]
    /// insertion stay sequential in batch order so stored state is
    /// identical to the sequential execution.
    ///
    /// A tweet is **rejected** — dropped before storage, reported in
    /// the [`BatchReport`] — when its encode task panics, its
    /// embeddings contain NaN/Inf, or it is empty while
    /// [`GlobalizerConfig::reject_empty`] is set. Rejected tweets leave
    /// no trace in pipeline state: the store after a faulty batch is
    /// exactly the store of a clean run over the surviving inputs.
    pub fn try_process_batch_owned(
        &mut self,
        batch: Vec<Vec<String>>,
    ) -> (BatchOutput, BatchReport)
    where
        T: Sync,
    {
        let batch = batch.into_iter().map(|tokens| (None, tokens)).collect();
        self.try_process_impl(batch)
    }

    /// [`Self::try_process_batch_owned`] for id-carrying streams: a
    /// tweet whose id was already seen (in this or any earlier batch)
    /// is additionally rejected as a duplicate. Ids are claimed on
    /// first sight even when that record is rejected for another
    /// reason, so replay behaviour is deterministic.
    pub fn try_process_batch_with_ids(
        &mut self,
        batch: Vec<(u64, Vec<String>)>,
    ) -> (BatchOutput, BatchReport)
    where
        T: Sync,
    {
        let batch = batch.into_iter().map(|(id, tokens)| (Some(id), tokens)).collect();
        self.try_process_impl(batch)
    }

    fn try_process_impl(
        &mut self,
        mut batch: Vec<(Option<u64>, Vec<String>)>,
    ) -> (BatchOutput, BatchReport)
    where
        T: Sync,
    {
        // ngl-lint: allow(R3, wall-clock stage timing for BatchReport/Timings only; never feeds token processing, ordering, or persisted state)
        let t0 = Instant::now();
        let first_tweet = self.tweets.len();
        let n = batch.len();
        let mut report = BatchReport::default();

        // Ingress guards run sequentially in input order: oversized
        // token lists are truncated (so stored tokens and embeddings
        // always agree), duplicates and empties are rejected before
        // any encoder work is spent on them.
        let cap = self.cfg.max_tweet_tokens.max(1);
        let mut pre_rejected: Vec<Option<TaskError>> = (0..n).map(|_| None).collect();
        for (i, (id, tokens)) in batch.iter_mut().enumerate() {
            if tokens.len() > cap {
                tokens.truncate(cap);
                report.truncated.push(i);
            }
            if let Some(id) = *id {
                if !self.seen_ids.insert(id) {
                    pre_rejected[i] = Some(TaskError {
                        index: i,
                        payload: summarize_tokens(tokens),
                        message: format!("duplicate tweet id {id}"),
                    });
                    continue;
                }
            }
            if self.cfg.reject_empty && tokens.is_empty() {
                pre_rejected[i] = Some(TaskError {
                    index: i,
                    payload: String::new(),
                    message: "empty tweet rejected".to_string(),
                });
            }
        }

        // Parallel panic-isolated encode over the survivors.
        let survivors: Vec<(usize, Vec<String>)> = batch
            .into_iter()
            .enumerate()
            .filter(|(i, _)| pre_rejected[*i].is_none())
            .map(|(i, (_, tokens))| (i, tokens))
            .collect();
        let survivor_input: Vec<usize> = survivors.iter().map(|(i, _)| *i).collect();
        let local = &self.local;
        let memo = &self.replay_memo;
        let encoded = self.exec.try_par_map_described(
            survivors,
            |(i, tokens)| format!("input #{i}: {}", summarize_tokens(tokens)),
            |_, (i, tokens)| {
                // During WAL replay a barrier group's encodings are
                // pre-computed; the memo holds `local.encode` outputs
                // keyed by the same truncated token vector, so hitting
                // it is bitwise-identical to encoding here.
                let enc = match memo.get(&tokens) {
                    Some(enc) => enc.clone(),
                    None => local.encode(&tokens),
                };
                let spans = decode_bio(&enc.tags);
                (i, tokens, enc, spans)
            },
        );

        // Sequential assembly in input order: merge ingress rejections
        // with encode results, then store the accepted tweets.
        enum Slot {
            Rejected(TaskError),
            Ready(Vec<String>, ngl_encoder::SentenceEncoding, Vec<Span>),
        }
        let mut slots: Vec<Option<Slot>> = pre_rejected
            .into_iter()
            .map(|e| e.map(Slot::Rejected))
            .collect();
        for (k, result) in encoded.into_iter().enumerate() {
            let i = survivor_input[k];
            slots[i] = Some(match result {
                Ok((_, tokens, enc, spans)) => {
                    if enc.embeddings.as_slice().iter().all(|v| v.is_finite()) {
                        Slot::Ready(tokens, enc, spans)
                    } else {
                        Slot::Rejected(TaskError {
                            index: i,
                            payload: summarize_tokens(&tokens),
                            message: "non-finite embeddings rejected".to_string(),
                        })
                    }
                }
                // The executor reports the task's position among the
                // survivors; surface the batch input position instead.
                Err(e) => Slot::Rejected(TaskError { index: i, ..e }),
            });
        }
        let mut local_spans = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.expect("every slot filled") {
                Slot::Rejected(e) => {
                    report.rejected.push(i);
                    report.errors.push(e);
                }
                Slot::Ready(tokens, enc, spans) => {
                    for s in &spans {
                        let surface: Vec<&str> =
                            tokens[s.start..s.end].iter().map(String::as_str).collect();
                        // Stray tags on bare function words are partial-
                        // extraction artifacts, never real candidates.
                        if !ngl_text::is_stopword_surface(&surface) {
                            self.ctrie.insert(&surface);
                        }
                    }
                    // `Span` is `Copy`, so duplicating the span list for
                    // the batch output is one flat memcpy; tokens and
                    // embeddings move into the record.
                    local_spans.push(spans.clone());
                    self.tweets.push(TweetRecord {
                        tokens,
                        embeddings: enc.embeddings,
                        local_spans: spans,
                    });
                    report.ok.push(i);
                }
            }
        }
        self.timings.local += t0.elapsed();
        (BatchOutput { first_tweet, local_spans }, report)
    }

    /// Pre-encodes the unique token vectors of an upcoming group of
    /// replayed batches concurrently on the executor, filling the
    /// replay memo consulted by the batch ingestion path. WAL replay
    /// applies batches one at a time to preserve barrier semantics;
    /// small logged batches would otherwise leave the worker pool
    /// mostly idle. Encoding a whole barrier group up front restores
    /// full parallelism without reordering any state mutation.
    ///
    /// Token vectors are truncated to
    /// [`GlobalizerConfig::max_tweet_tokens`] first — the same ingress
    /// guard the batch path applies — so memo keys match lookups
    /// exactly. Panicking encodes are skipped here and surface through
    /// the usual fault-isolated path when their batch is applied.
    pub fn prewarm_replay_encodes(&mut self, token_lists: Vec<Vec<String>>)
    where
        T: Sync,
    {
        let cap = self.cfg.max_tweet_tokens.max(1);
        let mut unique: Vec<Vec<String>> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<String>> = std::collections::HashSet::new();
        for mut tokens in token_lists {
            if tokens.len() > cap {
                tokens.truncate(cap);
            }
            if !self.replay_memo.contains_key(&tokens) && seen.insert(tokens.clone()) {
                unique.push(tokens);
            }
        }
        let local = &self.local;
        let encoded = self.exec.try_par_map_described(
            unique,
            |tokens| summarize_tokens(tokens),
            |_, tokens| {
                let enc = local.encode(&tokens);
                (tokens, enc)
            },
        );
        for (tokens, enc) in encoded.into_iter().flatten() {
            self.replay_memo.insert(tokens, enc);
        }
    }

    /// Drops the replay memo (called at each replayed finalize
    /// barrier, and once replay completes).
    pub fn clear_replay_memo(&mut self) {
        self.replay_memo = HashMap::new();
    }

    /// Runs the Global NER stages over everything processed so far and
    /// returns the final NER output per stored tweet. Can be called
    /// after every batch (incremental execution) or once at the end.
    ///
    /// Without a spill pool a [`RetentionPolicy::SpillCold`] config
    /// behaves like [`RetentionPolicy::Unbounded`]; use
    /// [`Self::finalize_with_spill`] (or the durable wrapper) to
    /// actually bound candidate memory.
    pub fn finalize(&mut self) -> Vec<Vec<Span>> {
        self.finalize_with_spill(None)
    }

    /// [`Self::finalize`] with an optional cold-surface spill pool.
    /// Under [`RetentionPolicy::SpillCold`] the pool receives the
    /// least-recently-touched clean surfaces after emission, spilled
    /// surfaces re-matched by the scan are rehydrated first, and emit
    /// consults spilled entries read-only — so outputs are identical
    /// to an unbounded run while resident candidate memory stays under
    /// the cap. Spill I/O failures degrade to
    /// [`Self::take_finalize_errors`] diagnostics, never a panic.
    pub fn finalize_with_spill(
        &mut self,
        mut pool: Option<&mut crate::durable::SpillPool>,
    ) -> Vec<Vec<Span>> {
        // ngl-lint: allow(R3, wall-clock stage timing for BatchReport/Timings only; never feeds token processing, ordering, or persisted state)
        let t0 = Instant::now();
        let mut spill_errors = Vec::new();
        let out = match self.cfg.ablation {
            AblationMode::LocalOnly => (0..self.tweets.len())
                .map(|i| {
                    self.tweets
                        .try_get(i)
                        .map(|t| t.local_spans.clone())
                        .unwrap_or_default()
                })
                .collect(),
            mode => {
                // ngl-lint: allow(R3, wall-clock stage timing for BatchReport/Timings only; never feeds token processing, ordering, or persisted state)
                let t = Instant::now();
                self.extract_and_embed(pool.as_deref_mut());
                self.timings.extract += t.elapsed();
                // ngl-lint: allow(R3, wall-clock stage timing for BatchReport/Timings only; never feeds token processing, ordering, or persisted state)
                let t = Instant::now();
                self.cluster_candidates(mode);
                self.timings.cluster += t.elapsed();
                // ngl-lint: allow(R3, wall-clock stage timing for BatchReport/Timings only; never feeds token processing, ordering, or persisted state)
                let t = Instant::now();
                self.classify_candidates(mode);
                self.timings.classify += t.elapsed();
                self.emit(mode, pool.as_deref_mut(), &mut spill_errors)
            }
        };
        // Every error emit pushed is an unreadable spilled entry whose
        // spans are missing from this finalize's output.
        self.spill_losses += spill_errors.len() as u64;
        self.enforce_retention();
        if let Some(pool) = pool {
            self.enforce_spill(pool, &mut spill_errors);
        }
        self.finalize_errors.append(&mut spill_errors);
        self.timings.global += t0.elapsed();
        out
    }

    /// Absorbs another shard's owned state into this (merged)
    /// pipeline: candidate entries are disjoint by surface ownership,
    /// so the union reconstructs the unsharded candidate base; the
    /// mention caches are keyed by `(tweet, start, end)` — each span
    /// resolves to exactly one surface, hence one owner — so their
    /// union is disjoint too. The shared state (CTrie, tweets,
    /// seen-ids, watermarks) is identical on every shard by the
    /// replicated-ingest invariant and is left untouched.
    pub(crate) fn absorb_owned_state(&mut self, shard: &Self) {
        for (surface, entry) in shard.candidates.iter() {
            self.candidates.insert_entry(surface.clone(), entry.clone());
        }
        for (k, v) in &shard.mention_cache {
            self.mention_cache.entry(*k).or_insert_with(|| v.clone());
        }
    }

    /// Absorbs one entry a shard had spilled to its cold pool, so the
    /// merged view emits and answers queries over spilled surfaces
    /// too (a per-shard pool only holds that shard's owned surfaces,
    /// so these inserts are disjoint from every resident absorb).
    pub(crate) fn absorb_spilled_entry(&mut self, surface: String, entry: SurfaceEntry) {
        self.candidates.insert_entry(surface, entry);
    }

    /// Re-emits the final NER output from already-finalized state
    /// without running any stage — the cross-shard merge path. Every
    /// entry in the (merged) candidate base is already clustered and
    /// classified by its owner shard, so this reproduces exactly what
    /// [`Self::finalize`] would have emitted from the same state.
    pub(crate) fn emit_finalized(&mut self) -> Vec<Vec<Span>> {
        match self.cfg.ablation {
            AblationMode::LocalOnly => (0..self.tweets.len())
                .map(|i| {
                    self.tweets
                        .try_get(i)
                        .map(|t| t.local_spans.clone())
                        .unwrap_or_default()
                })
                .collect(),
            mode => {
                let mut errors = Vec::new();
                let out = self.emit(mode, None, &mut errors);
                self.finalize_errors.append(&mut errors);
                out
            }
        }
    }

    /// Evicts the oldest tweets (and their cache entries) until the
    /// configured [`RetentionPolicy`] is satisfied. Invariant: eviction
    /// never crosses the scan watermark — a tweet that the incremental
    /// mention scan has not covered yet is never dropped, which is what
    /// keeps bounded-state finalize output identical for all tweets at
    /// or beyond the watermark.
    fn enforce_retention(&mut self) {
        let over = |tweets: &TweetBase| match self.cfg.retention {
            RetentionPolicy::Unbounded => false,
            RetentionPolicy::MaxTweets(n) => tweets.retained() > n,
            RetentionPolicy::MaxBytes(b) => tweets.retained_bytes() > b,
            // SpillCold bounds the candidate store, not the tweet
            // store; keeping every tweet means `first_retained` stays
            // 0 and a CTrie version bump always performs a *full*
            // rebuild — which is what lets the spill pool be cleared
            // wholesale on rebuilds.
            RetentionPolicy::SpillCold(_) => false,
        };
        let mut evicted = false;
        while over(&self.tweets) && self.tweets.first_retained() < self.scanned_tweets {
            self.tweets.evict_front();
            evicted = true;
        }
        if evicted {
            // Cache entries of evicted tweets can never be consulted
            // again (rescans start at `first_retained` at the
            // earliest), so the cache shrinks with the store.
            let keep_from = self.tweets.first_retained();
            self.mention_cache.retain(|&(t, _, _), _| t >= keep_from);
        }
    }

    /// Spills least-recently-touched clean surfaces to `pool` until
    /// resident candidate memory is within the
    /// [`RetentionPolicy::SpillCold`] budget. Victim order is
    /// `(touched, surface)` over the BTreeMap, so spill decisions are
    /// byte-deterministic across worker counts and across crash-replay.
    /// Serialize-before-remove: an entry leaves memory only after its
    /// bytes are durably appended, so an I/O failure (reported via
    /// [`Self::take_finalize_errors`]) loses nothing.
    pub(crate) fn enforce_spill(
        &mut self,
        pool: &mut crate::durable::SpillPool,
        errors: &mut Vec<TaskError>,
    ) {
        let RetentionPolicy::SpillCold(budget) = self.cfg.retention else {
            return;
        };
        while self.candidates.resident_bytes() > budget {
            let victim = self
                .candidates
                .iter()
                .filter(|(_, e)| e.is_clean())
                .min_by(|(sa, ea), (sb, eb)| (ea.touched, *sa).cmp(&(eb.touched, *sb)))
                .map(|(s, _)| s.clone());
            let Some(surface) = victim else { break };
            let entry = self.candidates.get(&surface).expect("victim resident");
            let cache: Vec<((usize, usize, usize), Vec<f32>)> = entry
                .mentions
                .iter()
                .filter_map(|m| {
                    let key = (m.tweet, m.start, m.end);
                    self.mention_cache.get(&key).map(|emb| (key, emb.clone()))
                })
                .collect();
            if let Err(e) = pool.spill(&surface, entry, &cache) {
                self.spill_pins += 1;
                errors.push(TaskError {
                    index: 0,
                    payload: surface,
                    message: format!("cold spill failed, entry kept resident: {e}"),
                });
                break;
            }
            self.candidates.remove_entry(&surface);
            for (key, _) in &cache {
                self.mention_cache.remove(key);
            }
        }
    }

    /// Moves every spilled surface back into the resident candidate
    /// store (and mention cache), leaving `pool` empty. Used before
    /// state export so snapshots always describe the *complete*
    /// candidate store; the caller re-spills afterwards.
    pub(crate) fn rehydrate_all(
        &mut self,
        pool: &mut crate::durable::SpillPool,
    ) -> Result<(), ngl_store::StoreError> {
        for surface in pool.surfaces() {
            let (entry, cache) = pool.take(&surface)?.expect("listed surface present");
            self.candidates.insert_entry(surface, entry);
            self.mention_cache.extend(cache);
        }
        pool.reset()
    }

    /// Appends externally collected spill/store diagnostics to the
    /// fault log drained by [`Self::take_finalize_errors`].
    pub(crate) fn push_finalize_errors(&mut self, mut errors: Vec<TaskError>) {
        self.finalize_errors.append(&mut errors);
    }

    /// The active configuration.
    pub fn config(&self) -> &GlobalizerConfig {
        &self.cfg
    }

    /// A cheap order-independent summary of the pipeline's logical
    /// stream state — watermark, retention boundary, CTrie version,
    /// and per-surface mention coordinates / progress counters. Two
    /// runs that agree on this digest after every finalize agree on
    /// state evolution; the durable WAL stores it per finalize mark so
    /// crash recovery can prove it reconverged. Embedding floats are
    /// deliberately excluded (they are a deterministic function of the
    /// covered coordinates); full bitwise checks live in the
    /// recovery tests, which compare exported checkpoint bytes.
    pub fn state_digest(&self) -> u64 {
        use ngl_store::fnv1a64;
        let mut acc: Vec<u8> = Vec::new();
        let mut word = |v: u64| acc.extend_from_slice(&v.to_le_bytes());
        word(self.scanned_tweets as u64);
        word(self.scanned_version);
        word(self.tweets.len() as u64);
        word(self.tweets.first_retained() as u64);
        word(self.ctrie.version());
        word(self.ctrie.len() as u64);
        word(self.seen_ids.len() as u64);
        word(self.mention_cache.len() as u64);
        word(self.candidates.len() as u64);
        let mut surfaces: Vec<u8> = Vec::new();
        for (surface, entry) in self.candidates.iter() {
            surfaces.extend_from_slice(surface.as_bytes());
            for v in [
                entry.mentions.len() as u64,
                entry.clusters.len() as u64,
                entry.clustered as u64,
                entry.classified as u64,
                entry.touched,
            ] {
                surfaces.extend_from_slice(&v.to_le_bytes());
            }
            for m in &entry.mentions {
                for v in [m.tweet as u64, m.start as u64, m.end as u64, m.trie_version] {
                    surfaces.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        word(fnv1a64(&surfaces));
        fnv1a64(&acc)
    }

    /// Mentions that are **frozen** (their source tweet was evicted, so
    /// they can never be re-extracted) *and* **stale** (the CTrie has
    /// grown since they were extracted, so a from-scratch run over the
    /// full stream might segment those positions differently). Returned
    /// as `(surface, tweet, start, end)` so emit consumers can flag the
    /// affected spans. Retained mentions are never stale: every version
    /// bump rescans and re-stamps them.
    pub fn stale_frozen_mentions(&self) -> Vec<(String, usize, usize, usize)> {
        let frozen_below = self.tweets.first_retained();
        let live = self.ctrie.version();
        let mut out = Vec::new();
        for (surface, entry) in self.candidates.iter() {
            for m in &entry.mentions {
                if m.tweet < frozen_below && m.trie_version < live {
                    out.push((surface.clone(), m.tweet, m.start, m.end));
                }
            }
        }
        out
    }

    /// Stage (i)+(ii): CTrie scan plus phrase embedding of every
    /// occurrence, incremental where possible (see the module docs):
    /// with an unchanged CTrie version only tweets beyond
    /// `scanned_tweets` are scanned; a version bump rebuilds the
    /// candidate store (late-discovered surfaces recover early mentions
    /// and can shift greedy scan boundaries) while reusing every cached
    /// span embedding. Tweets are scanned and embedded in parallel;
    /// candidate insertion stays sequential in tweet order so the store
    /// is identical to a sequential full rebuild.
    ///
    /// Under a bounded [`RetentionPolicy`] the version-bump rebuild can
    /// only rescan *retained* tweets: mentions of evicted tweets are
    /// kept frozen at the boundaries they were extracted with (their
    /// source records are gone), while everything from
    /// `TweetBase::first_retained` on is rebuilt against the new trie.
    ///
    /// Scan tasks are panic-isolated: a poison record degrades to a
    /// tweet with no extracted mentions, reported through
    /// [`Self::take_finalize_errors`].
    ///
    /// With a spill pool, a surface re-matched by the scan while its
    /// entry sits on disk is rehydrated (and touch-stamped) before the
    /// new mention is appended; a version-bump rebuild instead clears
    /// the pool wholesale — under [`RetentionPolicy::SpillCold`] no
    /// tweet is ever evicted, so the rebuild re-derives every spilled
    /// mention from the still-resident tweet records.
    fn extract_and_embed(&mut self, mut pool: Option<&mut crate::durable::SpillPool>) {
        let version = self.ctrie.version();
        let start = if version == self.scanned_version {
            self.scanned_tweets
        } else {
            let keep_from = self.tweets.first_retained();
            if keep_from == 0 {
                self.candidates = CandidateBase::new();
                if let Some(pool) = pool.as_deref_mut() {
                    if let Err(e) = pool.reset() {
                        self.finalize_errors.push(TaskError {
                            index: 0,
                            payload: String::new(),
                            message: format!("spill pool reset failed on rebuild: {e}"),
                        });
                    }
                }
            } else {
                // Freeze the evicted prefix, rebuild the retained
                // suffix (marks every entry dirty).
                self.candidates.truncate_mentions_from_tweet(keep_from);
            }
            keep_from
        };
        let n = self.tweets.len();
        if start < n {
            let ctrie = &self.ctrie;
            let phrase = &self.phrase;
            let tweets = &self.tweets;
            let cache = &self.mention_cache;
            let max_len = self.cfg.max_mention_len;
            let per_tweet = self.exec.try_par_map_described(
                (start..n).collect::<Vec<usize>>(),
                |&ti| format!("tweet #{ti}"),
                |_, ti| {
                    let record = tweets.get(ti);
                    let occs = ctrie.extract_mentions(&record.tokens, max_len);
                    // All cache-miss spans of one tweet go through a
                    // single batched dense forward instead of one
                    // single-row matmul each — bitwise identical per
                    // [`PhraseEmbedder::embed_spans`]'s contract.
                    let mut miss_spans: Vec<Span> = Vec::new();
                    let mut miss_at: Vec<usize> = Vec::new();
                    for (k, occ) in occs.iter().enumerate() {
                        if !cache.contains_key(&(ti, occ.start, occ.end)) {
                            miss_spans.push(Span::new(occ.start, occ.end, EntityType::Person));
                            miss_at.push(k);
                        }
                    }
                    let mut fresh =
                        phrase.embed_spans(&record.embeddings, &miss_spans).into_iter();
                    let mut miss_at = miss_at.into_iter().peekable();
                    occs.into_iter()
                        .enumerate()
                        .map(|(k, occ)| {
                            let local_emb = if miss_at.peek() == Some(&k) {
                                miss_at.next();
                                // Canonicalize fresh embeddings once, at
                                // creation: every value kept in memory or
                                // persisted afterwards is an exact i8
                                // quantization round-trip, so the
                                // quantized storage codec is lossless
                                // ("i8 at rest, f32 in compute").
                                let mut emb =
                                    fresh.next().expect("one embedding per cache miss");
                                ngl_nn::kernels::canonicalize(&mut emb);
                                emb
                            } else {
                                cache
                                    .get(&(ti, occ.start, occ.end))
                                    .expect("span cached")
                                    .clone()
                            };
                            let local_type = record
                                .local_spans
                                .iter()
                                .find(|s| s.start == occ.start && s.end == occ.end)
                                .map(|s| s.ty);
                            (
                                occ.surface,
                                MentionRecord {
                                    tweet: ti,
                                    start: occ.start,
                                    end: occ.end,
                                    local_emb,
                                    local_type,
                                    trie_version: version,
                                },
                            )
                        })
                        .collect::<Vec<(String, MentionRecord)>>()
                },
            );
            for (k, result) in per_tweet.into_iter().enumerate() {
                match result {
                    Ok(tweet_mentions) => {
                        for (surface, record) in tweet_mentions {
                            if !self.owns_surface(&surface) {
                                // Another shard stores this mention;
                                // consume its clock tick so owned
                                // entries keep the unsharded stamps.
                                self.candidates.touch_skip();
                                continue;
                            }
                            if let Some(pool) = pool.as_deref_mut() {
                                if pool.contains(&surface) {
                                    match pool.take(&surface) {
                                        Ok(Some((entry, cache))) => {
                                            // No explicit re-touch: the
                                            // add_mention below stamps
                                            // recency exactly as it would
                                            // for a resident entry, so
                                            // replay-from-snapshot (where
                                            // nothing is spilled) evolves
                                            // the clock identically.
                                            self.candidates
                                                .insert_entry(surface.clone(), entry);
                                            self.mention_cache.extend(cache);
                                        }
                                        Ok(None) => {}
                                        Err(e) => {
                                            self.spill_losses += 1;
                                            self.finalize_errors.push(TaskError {
                                                index: start + k,
                                                payload: surface.clone(),
                                                message: format!(
                                                    "spill rehydration failed, \
                                                     entry restarts empty: {e}"
                                                ),
                                            })
                                        }
                                    }
                                }
                            }
                            self.mention_cache
                                .entry((record.tweet, record.start, record.end))
                                .or_insert_with(|| record.local_emb.clone());
                            self.candidates.add_mention(&surface, record);
                        }
                    }
                    // The executor reports the task's position in the
                    // scan range; surface the tweet index instead. The
                    // tweet keeps its record but contributes no
                    // mentions this scan.
                    Err(e) => self.finalize_errors.push(TaskError { index: start + k, ..e }),
                }
            }
        }
        self.scanned_tweets = n;
        self.scanned_version = version;
    }

    /// Stage (iii): split each surface's mentions into candidate
    /// clusters, fanning out per surface (each surface's clustering is
    /// independent). The ablation variants below full-global use one
    /// cluster per surface (no ambiguity resolution).
    /// Surfaces whose mention set is unchanged since the last finalize
    /// are skipped — their clusters are a pure function of the mention
    /// set, so the previous result is still exact (the
    /// `SurfaceEntry::clustered` bookkeeping).
    fn cluster_candidates(&mut self, mode: AblationMode) {
        let threshold = self.cfg.cluster_threshold;
        let exec = &self.exec;
        // Giant surfaces would occupy one worker for the whole batch if
        // they rode the per-surface fan-out, so they run here on the
        // caller with the executor parallelizing *inside* the linkage
        // scan instead. Each entry's result is a pure function of its
        // own mention set, so the grouping cannot change outputs.
        let (giant, small): (Vec<&mut SurfaceEntry>, Vec<&mut SurfaceEntry>) = self
            .candidates
            .iter_mut()
            .map(|(_, e)| e)
            .filter(|e| e.needs_recluster())
            .partition(|e| e.is_giant());
        for entry in giant {
            cluster_surface_exec(entry, mode, threshold, exec);
            entry.clustered = entry.mentions.len();
        }
        exec.par_map(small, |_, entry| {
            cluster_surface(entry, mode, threshold);
            entry.clustered = entry.mentions.len();
        });
    }

    /// Stages (iv)+(v): pool each cluster and classify it, fanning out
    /// per surface (each surface's matmuls are independent). In
    /// [`AblationMode::MentionExtraction`] the "classification" is the
    /// majority local type instead.
    /// Same skip rule as [`Self::cluster_candidates`], tracked by
    /// `SurfaceEntry::classified`.
    fn classify_candidates(&mut self, mode: AblationMode) {
        let classifier = &self.classifier;
        let min_confidence = self.cfg.min_confidence;
        let exec = &self.exec;
        // Same split as `cluster_candidates`: giants score their
        // cluster chunks on the whole pool instead of one worker.
        let (giant, small): (Vec<&mut SurfaceEntry>, Vec<&mut SurfaceEntry>) = self
            .candidates
            .iter_mut()
            .map(|(_, e)| e)
            .filter(|e| e.needs_reclassify())
            .partition(|e| e.is_giant());
        for entry in giant {
            classify_surface_exec(entry, mode, classifier, min_confidence, exec);
            entry.classified = entry.mentions.len();
        }
        exec.par_map(small, |_, entry| {
            classify_surface(entry, mode, classifier, min_confidence);
            entry.classified = entry.mentions.len();
        });
    }

    /// Produces the final span outputs per tweet. Spilled surfaces
    /// contribute exactly like resident ones — their entries are
    /// decoded transiently from the pool (read-only; no rehydration,
    /// no touch-stamp), so bounding resident memory never changes the
    /// emitted spans.
    fn emit(
        &self,
        mode: AblationMode,
        pool: Option<&mut crate::durable::SpillPool>,
        errors: &mut Vec<TaskError>,
    ) -> Vec<Vec<Span>> {
        let mut out: Vec<Vec<Span>> = vec![Vec::new(); self.tweets.len()];
        for (_, entry) in self.candidates.iter() {
            self.emit_entry(entry, mode, &mut out);
        }
        if let Some(pool) = pool {
            for surface in pool.surfaces() {
                match pool.peek(&surface) {
                    Ok(Some(entry)) => self.emit_entry(&entry, mode, &mut out),
                    Ok(None) => {}
                    Err(e) => errors.push(TaskError {
                        index: 0,
                        payload: surface,
                        message: format!("spilled entry unreadable at emit: {e}"),
                    }),
                }
            }
        }
        for spans in &mut out {
            spans.sort_by_key(|s| (s.start, s.end));
        }
        out
    }

    /// Emission of a single surface entry (resident or spill-decoded).
    fn emit_entry(&self, entry: &SurfaceEntry, mode: AblationMode, out: &mut [Vec<Span>]) {
        match mode {
            AblationMode::MentionExtraction | AblationMode::FullGlobal => {
                for cluster in &entry.clusters {
                    let Some(Some(ty)) = cluster.label else {
                        continue; // unclassified or non-entity
                    };
                    for &mi in &cluster.members {
                        let m = &entry.mentions[mi];
                        out[m.tweet].push(Span::new(m.start, m.end, ty));
                    }
                }
            }
            AblationMode::LocalClassifier => {
                for m in &entry.mentions {
                    let locals = Matrix::from_rows(&[m.local_emb.as_slice()]);
                    if let Some(ty) =
                        self.classifier.predict_confident(&locals, self.cfg.min_confidence)
                    {
                        out[m.tweet].push(Span::new(m.start, m.end, ty));
                    }
                }
            }
            AblationMode::LocalOnly => {}
        }
    }

    /// Tags one message against the **current** global state without
    /// mutating anything — the serving query path. The message is
    /// encoded with the local tagger, scanned against the CTrie, and
    /// each matched mention is embedded and resolved to the
    /// nearest-by-cosine *labeled* cluster of its surface's resident
    /// candidate entry; Local NER spans that don't overlap a global
    /// match fill the gaps. Spans come back sorted by `(start, end)`.
    ///
    /// Ablation modes mirror batch emission: `LocalOnly` returns local
    /// spans only; `LocalClassifier` classifies each matched mention's
    /// embedding directly instead of consulting cluster labels.
    ///
    /// Surfaces whose entries are spilled cold contribute nothing —
    /// queries see resident finalized state (the documented snapshot
    /// rule), and the stream itself is unaffected.
    pub fn tag_query(&self, tokens: &[String]) -> Vec<QueryTag> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let tokens = &tokens[..tokens.len().min(self.cfg.max_tweet_tokens)];
        let enc = self.local.encode(tokens);
        let local_spans = decode_bio(&enc.tags);
        let mut out: Vec<QueryTag> = Vec::new();
        if self.cfg.ablation != AblationMode::LocalOnly {
            for occ in self.ctrie.extract_mentions(tokens, self.cfg.max_mention_len) {
                let Some(entry) = self.candidates.get(&occ.surface) else {
                    continue;
                };
                // The span type is irrelevant to pooling; `Person` is a
                // placeholder overwritten by the resolved label below.
                let probe = Span::new(occ.start, occ.end, EntityType::Person);
                let emb = self.phrase.embed(&enc.embeddings, &probe);
                let resolved = match self.cfg.ablation {
                    AblationMode::LocalClassifier => self
                        .classifier
                        .predict_confident(
                            &Matrix::from_rows(&[emb.as_slice()]),
                            self.cfg.min_confidence,
                        )
                        .map(|ty| (ty, None)),
                    _ => {
                        let labeled: Vec<(EntityType, &[f32])> = entry
                            .clusters
                            .iter()
                            .filter_map(|c| match c.label {
                                Some(Some(ty)) => Some((ty, c.global_emb.as_slice())),
                                _ => None,
                            })
                            .collect();
                        let rows: Vec<&[f32]> = labeled.iter().map(|(_, e)| *e).collect();
                        ngl_nn::kernels::cosine_best_of(&emb, &rows)
                            .map(|(i, score)| (labeled[i].0, Some(score)))
                    }
                };
                if let Some((ty, score)) = resolved {
                    out.push(QueryTag {
                        span: Span::new(occ.start, occ.end, ty),
                        surface: Some(occ.surface),
                        score,
                        global: true,
                    });
                }
            }
        }
        for s in local_spans {
            let overlaps =
                out.iter().any(|t| t.span.start < s.end && s.start < t.span.end);
            if !overlaps {
                out.push(QueryTag { span: s, surface: None, score: None, global: false });
            }
        }
        out.sort_by_key(|t| (t.span.start, t.span.end));
        out
    }

    /// Read-only summary of one surface's global state — cluster
    /// labels, mention counts and staleness — for the serving `surface`
    /// endpoint. The input is folded token-wise exactly like the CTrie
    /// scan, so `"#Coronavirus"` resolves to `"coronavirus"`.
    pub fn surface_summary(&self, surface: &str) -> SurfaceSummary {
        let tokens: Vec<String> = surface
            .split_whitespace()
            .map(ngl_ctrie::fold_token)
            .filter(|t| !t.is_empty())
            .collect();
        let canonical = tokens.join(" ");
        let known = !tokens.is_empty() && self.ctrie.contains(&tokens);
        let Some(entry) = self.candidates.get(&canonical) else {
            return SurfaceSummary {
                surface: canonical,
                known,
                resident: false,
                mentions: 0,
                clusters: Vec::new(),
                touched: 0,
                stale_frozen: 0,
            };
        };
        let frozen_below = self.tweets.first_retained();
        let live = self.ctrie.version();
        let stale_frozen = entry
            .mentions
            .iter()
            .filter(|m| m.tweet < frozen_below && m.trie_version < live)
            .count();
        SurfaceSummary {
            surface: canonical,
            known,
            resident: true,
            mentions: entry.mentions.len(),
            clusters: entry
                .clusters
                .iter()
                .map(|c| ClusterSummary { label: c.label, members: c.members.len() })
                .collect(),
            touched: entry.touched,
            stale_frozen,
        }
    }

    /// Local NER outputs of every stored tweet (for ablations and the
    /// Table IV "Local NER" columns). Evicted tweets yield empty rows.
    pub fn local_outputs(&self) -> Vec<Vec<Span>> {
        (0..self.tweets.len())
            .map(|i| {
                self.tweets
                    .try_get(i)
                    .map(|t| t.local_spans.clone())
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Accumulated per-stage wall-clock.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Number of surface forms currently registered in the CTrie.
    pub fn n_surfaces(&self) -> usize {
        self.ctrie.len()
    }

    /// The CTrie's monotone version counter (bumps once per newly
    /// seeded surface).
    pub fn trie_version(&self) -> u64 {
        self.ctrie.version()
    }

    /// Number of span embeddings held by the incremental mention cache
    /// (diagnostics; grows monotonically with the scanned stream).
    pub fn cached_mentions(&self) -> usize {
        self.mention_cache.len()
    }

    /// Drops all incremental state — the mention-embedding cache and the
    /// scan watermark — forcing the next [`Self::finalize`] to rebuild
    /// and re-embed everything from scratch. Benchmarking hook for
    /// comparing incremental against full-rebuild finalization; output
    /// is unaffected (both paths are byte-identical) as long as nothing
    /// has been evicted — evicted tweets cannot be rescanned, so their
    /// frozen mentions are lost by this reset.
    pub fn reset_incremental_state(&mut self) {
        self.mention_cache.clear();
        self.scanned_tweets = 0;
        self.scanned_version = 0;
        self.candidates = CandidateBase::new();
    }

    /// Read access to the candidate store (diagnostics, examples).
    pub fn candidate_base(&self) -> &CandidateBase {
        &self.candidates
    }

    /// Read access to the tweet store.
    pub fn tweet_base(&self) -> &TweetBase {
        &self.tweets
    }

    /// The trained local tagger (shared with baselines in experiments).
    pub fn local_tagger(&self) -> &T {
        &self.local
    }

    /// How many stream positions the incremental mention scan has
    /// covered — the eviction watermark: retention never drops a tweet
    /// at or beyond this index.
    pub fn scan_watermark(&self) -> usize {
        self.scanned_tweets
    }

    /// Drains the task errors collected by fault-isolated finalize
    /// scans since the last drain (empty on a clean stream).
    pub fn take_finalize_errors(&mut self) -> Vec<TaskError> {
        std::mem::take(&mut self.finalize_errors)
    }

    /// Surfaces kept resident because a cold spill failed (lossless
    /// degradation), since this pipeline was built.
    pub fn spill_pins(&self) -> u64 {
        self.spill_pins
    }

    /// Failed spill reads (rehydration or emit) — lossy degradation;
    /// see the field docs.
    pub fn spill_losses(&self) -> u64 {
        self.spill_losses
    }

    /// Snapshots the pipeline's stream state — CTrie, tweet store,
    /// candidate store (with per-surface progress counts), scan
    /// watermark + version, mention cache and consumed ids — for
    /// inclusion in a crash-consistent `GlobalizerBundle` v2. The
    /// model components travel separately in the bundle.
    pub fn export_state(&self) -> PipelineCheckpoint {
        PipelineCheckpoint {
            cfg: self.cfg,
            ctrie: self.ctrie.clone(),
            tweets: self.tweets.clone(),
            candidates: self.candidates.clone(),
            scanned_tweets: self.scanned_tweets,
            scanned_version: self.scanned_version,
            mention_cache: self.mention_cache.clone(),
            seen_ids: self.seen_ids.clone(),
        }
    }

    /// [`Self::export_state`] in the canonical v4 wire encoding
    /// (embeddings stored via the quantized codec) — equal pipeline
    /// states produce equal bytes, which is what the durable snapshots
    /// store and the crash-recovery tests compare. Lossless because
    /// every resident embedding is canonicalized at creation.
    pub fn export_state_bytes(&self) -> bytes::Bytes {
        let mut buf = bytes::BytesMut::new();
        crate::checkpoint::put_checkpoint(&mut buf, &self.export_state(), crate::checkpoint::CK_V4);
        buf.freeze()
    }

    /// Byte sizes of the state snapshot under the current (quantized,
    /// v4) and the previous (full-`f32`, v3) embedding codecs — the
    /// operational surfacing behind `ngl recover` and the store bench.
    pub fn snapshot_codec_bytes(&self) -> (u64, u64) {
        let state = self.export_state();
        let mut q = bytes::BytesMut::new();
        crate::checkpoint::put_checkpoint(&mut q, &state, crate::checkpoint::CK_V4);
        let mut f = bytes::BytesMut::new();
        crate::checkpoint::put_checkpoint(&mut f, &state, crate::checkpoint::CK_V3);
        (q.len() as u64, f.len() as u64)
    }

    /// Restores state from bytes produced by
    /// [`Self::export_state_bytes`].
    pub fn import_state_bytes(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let mut cursor = bytes::Bytes::from(bytes.to_vec());
        let ck = crate::checkpoint::get_checkpoint(&mut cursor, crate::checkpoint::CK_V4)?;
        if !cursor.is_empty() {
            return Err(PersistError::Codec(ngl_nn::CodecError::Invalid(
                "trailing bytes after checkpoint",
            )));
        }
        self.import_state(ck)
    }

    /// Restores stream state captured by [`Self::export_state`],
    /// replacing this pipeline's stores, watermark and caches. The
    /// restored pipeline continues the stream exactly where the
    /// snapshot left off: feeding it the remaining input yields
    /// bitwise-identical finalize output to a never-interrupted run.
    pub fn import_state(&mut self, mut ck: PipelineCheckpoint) -> Result<(), PersistError> {
        if ck.scanned_tweets > ck.tweets.len() {
            return Err(PersistError::Inconsistent("watermark beyond tweet store"));
        }
        if ck.tweets.first_retained() > ck.scanned_tweets {
            return Err(PersistError::Inconsistent("eviction crossed the watermark"));
        }
        if ck.scanned_version > ck.ctrie.version() {
            return Err(PersistError::Inconsistent("scan version beyond trie version"));
        }
        let dim = self.phrase.dim();
        if ck.mention_cache.values().any(|v| v.len() != dim) {
            return Err(PersistError::Inconsistent("cached embedding dim mismatch"));
        }
        // Re-canonicalize embeddings on ingest: a no-op for states
        // written by this version (v4 decodes are canonical by
        // construction), but it upgrades legacy full-f32 states so
        // their next quantized encode is lossless too.
        for (_, entry) in ck.candidates.iter_mut() {
            for m in &mut entry.mentions {
                ngl_nn::kernels::canonicalize(&mut m.local_emb);
            }
            for c in &mut entry.clusters {
                ngl_nn::kernels::canonicalize(&mut c.global_emb);
            }
        }
        for emb in ck.mention_cache.values_mut() {
            ngl_nn::kernels::canonicalize(emb);
        }
        self.cfg = ck.cfg;
        self.ctrie = ck.ctrie;
        self.tweets = ck.tweets;
        self.candidates = ck.candidates;
        self.scanned_tweets = ck.scanned_tweets;
        self.scanned_version = ck.scanned_version;
        self.mention_cache = ck.mention_cache;
        self.seen_ids = ck.seen_ids;
        self.finalize_errors.clear();
        Ok(())
    }
}

/// Char-boundary-safe prefix of `s` with at most `max_chars` chars.
fn clip(s: &str, max_chars: usize) -> &str {
    match s.char_indices().nth(max_chars) {
        Some((byte, _)) => &s[..byte],
        None => s,
    }
}

/// Short human-readable summary of a token list for [`TaskError`]
/// payloads (bounded regardless of input size).
fn summarize_tokens(tokens: &[String]) -> String {
    let mut out = format!("{} tokens", tokens.len());
    if !tokens.is_empty() {
        out.push_str(": ");
        let head: Vec<&str> = tokens.iter().take(4).map(|t| clip(t, 16)).collect();
        out.push_str(&head.join(" "));
        if tokens.len() > 4 {
            out.push_str(" …");
        }
    }
    out
}

/// Clusters one surface's mentions in place (stage iii for a single
/// [`SurfaceEntry`]); free function so the parallel fan-out borrows only
/// the entry.
fn cluster_surface(entry: &mut SurfaceEntry, mode: AblationMode, threshold: f32) {
    cluster_surface_exec(entry, mode, threshold, &Executor::sequential())
}

/// [`cluster_surface`] with the agglomerative closest-pair scan spread
/// over `exec` — used for giant surfaces, where the executor's workers
/// parallelize *inside* the linkage instead of across surfaces. Output
/// is bitwise identical at any thread count
/// ([`ngl_cluster::agglomerative_exec`]'s contract).
fn cluster_surface_exec(
    entry: &mut SurfaceEntry,
    mode: AblationMode,
    threshold: f32,
    exec: &Executor,
) {
    entry.clusters.clear();
    if entry.mentions.is_empty() {
        return;
    }
    if mode == AblationMode::FullGlobal {
        // Agglomerative clustering is O(n²·merges); very frequent
        // surfaces (often Local-NER junk like stopwords) can collect
        // thousands of mentions, so those fall back to the one-pass
        // online approximation.
        const BATCH_CLUSTER_CAP: usize = 400;
        if entry.mentions.len() <= BATCH_CLUSTER_CAP {
            let points: Vec<&[f32]> =
                entry.mentions.iter().map(|m| m.local_emb.as_slice()).collect();
            let clustering = ngl_cluster::agglomerative_exec(&points, threshold, exec);
            for group in clustering.groups() {
                entry.clusters.push(CandidateCluster {
                    members: group,
                    global_emb: Vec::new(),
                    label: None,
                });
            }
        } else {
            // The per-mention centroid scan runs on the block kernel and
            // parallelizes over centroid chunks once the cluster count
            // grows; assignments stay bitwise identical to a sequential
            // insert at any thread count.
            let mut online = ngl_cluster::OnlineClusters::new(threshold);
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (mi, m) in entry.mentions.iter().enumerate() {
                let c = online.insert_exec(&m.local_emb, exec);
                if c == groups.len() {
                    groups.push(Vec::new());
                }
                groups[c].push(mi);
            }
            for group in groups {
                entry.clusters.push(CandidateCluster {
                    members: group,
                    global_emb: Vec::new(),
                    label: None,
                });
            }
        }
    } else {
        entry.clusters.push(CandidateCluster {
            members: (0..entry.mentions.len()).collect(),
            global_emb: Vec::new(),
            label: None,
        });
    }
}

/// Pools and classifies one surface's clusters in place (stages iv+v
/// for a single [`SurfaceEntry`]).
fn classify_surface(
    entry: &mut SurfaceEntry,
    mode: AblationMode,
    classifier: &EntityClassifier,
    min_confidence: f32,
) {
    // Split borrow: clusters vs mentions.
    let mentions = std::mem::take(&mut entry.mentions);
    for cluster in &mut entry.clusters {
        score_cluster(cluster, mode, &mentions, classifier, min_confidence);
    }
    entry.mentions = mentions;
}

/// [`classify_surface`] with the per-cluster scoring spread over `exec`
/// in contiguous cluster chunks — used for giant surfaces. Each
/// cluster's `(global_emb, label)` is a pure function of its own
/// members, so chunked execution is output-identical to the sequential
/// loop at any thread count.
fn classify_surface_exec(
    entry: &mut SurfaceEntry,
    mode: AblationMode,
    classifier: &EntityClassifier,
    min_confidence: f32,
    exec: &Executor,
) {
    let mentions = std::mem::take(&mut entry.mentions);
    let n = entry.clusters.len();
    if n > 0 {
        // Over-split relative to the thread count: cluster sizes are
        // skewed, and dynamic scheduling evens smaller chunks out.
        let chunk = n.div_ceil(exec.threads().max(1) * 4).max(1);
        let chunks: Vec<&mut [CandidateCluster]> = entry.clusters.chunks_mut(chunk).collect();
        let mentions = &mentions;
        exec.par_map(chunks, |_, chunk| {
            for cluster in chunk {
                score_cluster(cluster, mode, mentions, classifier, min_confidence);
            }
        });
    }
    entry.mentions = mentions;
}

/// Pools and labels one candidate cluster (the per-cluster body of
/// stages iv+v), reading mention embeddings from `mentions`.
fn score_cluster(
    cluster: &mut CandidateCluster,
    mode: AblationMode,
    mentions: &[MentionRecord],
    classifier: &EntityClassifier,
    min_confidence: f32,
) {
    match mode {
        AblationMode::MentionExtraction => {
            cluster.label = Some(majority_local_type(
                cluster.members.iter().map(|&m| mentions[m].local_type),
            ));
        }
        AblationMode::FullGlobal => {
            let rows: Vec<&[f32]> = cluster
                .members
                .iter()
                .map(|&m| mentions[m].local_emb.as_slice())
                .collect();
            let locals = Matrix::from_rows(&rows);
            // One fused attention pass for both outputs — bitwise equal
            // to the separate global_embedding + predict_confident
            // calls it replaces.
            let (mut global, label) = classifier.score_candidate(&locals, min_confidence);
            // Canonicalize the stored embedding (the label was already
            // decided from the raw pooled vector) so the quantized
            // checkpoint codec round-trips it exactly; re-scoring after
            // a resume recomputes from the members either way.
            ngl_nn::kernels::canonicalize(&mut global);
            cluster.global_emb = global;
            cluster.label = Some(label);
        }
        AblationMode::LocalClassifier | AblationMode::LocalOnly => {
            // Per-mention classification happens at emit time.
            cluster.label = None;
        }
    }
}

/// Majority vote over the local types of a cluster's mentions; `None`
/// when no mention carries a local type.
fn majority_local_type(
    types: impl Iterator<Item = Option<EntityType>>,
) -> Option<EntityType> {
    let mut counts = [0usize; EntityType::COUNT];
    for t in types.flatten() {
        counts[t.index()] += 1;
    }
    let (best, n) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty counts");
    if *n == 0 {
        None
    } else {
        Some(EntityType::from_index(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use crate::phrase::PhraseEmbedderConfig;
    use ngl_encoder::{SentenceEncoding, SequenceTagger};
    use ngl_text::BioTag;

    /// A deterministic fake local tagger for pipeline unit tests: tags
    /// any capitalized token as B-PER and embeds tokens by a hash-driven
    /// one-hot so the clustering is predictable.
    struct FakeTagger {
        dim: usize,
    }

    impl SequenceTagger for FakeTagger {
        fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
            tokens
                .iter()
                .map(|t| {
                    if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                        BioTag::B(EntityType::Person)
                    } else {
                        BioTag::O
                    }
                })
                .collect()
        }
    }

    impl ContextualTagger for FakeTagger {
        fn dim(&self) -> usize {
            self.dim
        }

        fn encode(&self, tokens: &[String]) -> SentenceEncoding {
            let mut emb = Matrix::zeros(tokens.len(), self.dim);
            for (i, t) in tokens.iter().enumerate() {
                let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
                emb.row_mut(i)[h % self.dim] = 1.0;
            }
            let tags = self.tag(tokens);
            SentenceEncoding {
                embeddings: emb,
                tags,
                probs: Matrix::zeros(tokens.len(), BioTag::COUNT),
            }
        }
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    fn pipeline(mode: AblationMode) -> NerGlobalizer<FakeTagger> {
        let dim = 8;
        NerGlobalizer::new(
            FakeTagger { dim },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig { ablation: mode, ..Default::default() },
        )
    }

    #[test]
    fn local_only_passes_through_local_spans() {
        let mut p = pipeline(AblationMode::LocalOnly);
        let batch = vec![toks("Beshear spoke today"), toks("nothing here")];
        let out = p.process_batch(&batch);
        assert_eq!(out.local_spans[0].len(), 1);
        assert!(out.local_spans[1].is_empty());
        let fin = p.finalize();
        assert_eq!(fin, p.local_outputs());
    }

    #[test]
    fn mention_extraction_recovers_missed_lowercase_mention() {
        let mut p = pipeline(AblationMode::MentionExtraction);
        // "Beshear" detected locally in tweet 0; lowercase "beshear" in
        // tweet 1 is missed by the fake tagger but recovered by the scan.
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear for this")]);
        let fin = p.finalize();
        assert_eq!(fin[0], vec![Span::new(0, 1, EntityType::Person)]);
        assert_eq!(fin[1], vec![Span::new(1, 2, EntityType::Person)]);
    }

    #[test]
    fn surfaces_found_in_later_batches_recover_earlier_mentions() {
        let mut p = pipeline(AblationMode::MentionExtraction);
        // Batch 1: lowercase mention, locally missed; no surface yet.
        p.process_batch(&[toks("saw beshear yesterday")]);
        // Batch 2: capitalized mention seeds the surface.
        p.process_batch(&[toks("Beshear responded")]);
        let fin = p.finalize();
        assert_eq!(fin[0].len(), 1, "early mention recovered: {fin:?}");
        assert_eq!(fin[1].len(), 1);
    }

    #[test]
    fn timings_accumulate() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke")]);
        p.finalize();
        let t = p.timings();
        assert!(t.local > Duration::ZERO);
        assert!(t.global > Duration::ZERO);
    }

    #[test]
    fn full_global_clusters_per_surface() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[
            toks("Beshear spoke today"),
            toks("thanks beshear again"),
            toks("Beshear announced plans"),
        ]);
        p.finalize();
        let cb = p.candidate_base();
        let entry = cb.get("beshear").expect("surface registered");
        assert_eq!(entry.mentions.len(), 3);
        assert!(!entry.clusters.is_empty());
        let total: usize = entry.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 3, "clusters partition mentions");
        // Identical embeddings (same token) must share one cluster.
        assert_eq!(entry.clusters.len(), 1);
        assert!(entry.clusters[0].label.is_some());
        assert_eq!(entry.clusters[0].global_emb.len(), 8);
    }

    #[test]
    fn majority_type_vote_breaks_toward_most_frequent() {
        let t = majority_local_type(
            [
                Some(EntityType::Person),
                Some(EntityType::Location),
                Some(EntityType::Person),
                None,
            ]
            .into_iter(),
        );
        assert_eq!(t, Some(EntityType::Person));
        assert_eq!(majority_local_type([None, None].into_iter()), None);
    }

    #[test]
    fn n_surfaces_counts_unique_folded_forms() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear and BESHEAR and Italy")]);
        // Fake tagger tags all three capitalized tokens; "beshear" folds
        // to one surface.
        assert_eq!(p.n_surfaces(), 2);
    }

    /// Flattens the candidate store into an exactly comparable
    /// fingerprint (f32s by bit pattern).
    fn fingerprint<T: ContextualTagger>(p: &NerGlobalizer<T>) -> Vec<(String, Vec<u64>, Vec<u32>)> {
        p.candidate_base()
            .iter()
            .map(|(surface, e)| {
                let mut nums: Vec<u64> = Vec::new();
                let mut bits: Vec<u32> = Vec::new();
                for m in &e.mentions {
                    nums.extend([m.tweet as u64, m.start as u64, m.end as u64]);
                    bits.extend(m.local_emb.iter().map(|x| x.to_bits()));
                }
                for c in &e.clusters {
                    nums.push(u64::MAX); // cluster delimiter
                    nums.extend(c.members.iter().map(|&m| m as u64));
                    bits.extend(c.global_emb.iter().map(|x| x.to_bits()));
                }
                (surface.to_string(), nums, bits)
            })
            .collect()
    }

    #[test]
    fn incremental_finalize_matches_single_finalize() {
        let batches = [
            vec![toks("Beshear spoke today"), toks("saw beshear downtown")],
            vec![toks("nothing here at all")],
            vec![toks("Italy won again"), toks("thanks beshear for italy")],
            vec![toks("more beshear and Italy talk")],
        ];
        for mode in [
            AblationMode::LocalOnly,
            AblationMode::MentionExtraction,
            AblationMode::LocalClassifier,
            AblationMode::FullGlobal,
        ] {
            let mut inc = pipeline(mode);
            let mut full = pipeline(mode);
            let mut inc_out = Vec::new();
            for b in &batches {
                inc.process_batch(b);
                inc_out = inc.finalize(); // finalize after every batch
                full.process_batch(b);
            }
            let full_out = full.finalize(); // one end-of-stream finalize
            assert_eq!(inc_out, full_out, "outputs diverge in {mode:?}");
            assert_eq!(
                fingerprint(&inc),
                fingerprint(&full),
                "candidate state diverges in {mode:?}"
            );
        }
    }

    #[test]
    fn unchanged_trie_version_skips_rescan_of_old_tweets() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear again")]);
        p.finalize();
        let cached = p.cached_mentions();
        assert!(cached > 0);
        // A batch with no new surfaces (known surface + stopwords) keeps
        // the CTrie version, so only the new tweet is scanned/embedded.
        p.process_batch(&[toks("more beshear talk")]);
        p.finalize();
        assert_eq!(p.cached_mentions(), cached + 1, "exactly the new mention embeds");
    }

    #[test]
    fn version_bump_rebuilds_candidates_but_reuses_cached_embeddings() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("saw beshear and italy yesterday")]);
        p.finalize();
        assert_eq!(p.cached_mentions(), 0, "no surfaces yet, nothing embedded");
        // New surfaces arrive: version bumps, the old tweet is rescanned
        // and its recovered mentions are embedded and cached.
        p.process_batch(&[toks("Beshear visited Italy")]);
        p.finalize();
        let cached = p.cached_mentions();
        assert_eq!(cached, 4, "two mentions in each tweet");
        let fp = fingerprint(&p);
        // Re-finalizing with no new data is a no-op scan that reproduces
        // the exact same state from cache.
        p.finalize();
        assert_eq!(p.cached_mentions(), cached);
        assert_eq!(fingerprint(&p), fp);
    }

    #[test]
    fn reset_incremental_state_reproduces_identical_output() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear again")]);
        let out = p.finalize();
        let fp = fingerprint(&p);
        p.reset_incremental_state();
        assert_eq!(p.cached_mentions(), 0);
        let out2 = p.finalize();
        assert_eq!(out, out2);
        assert_eq!(fingerprint(&p), fp);
    }

    #[test]
    fn sequential_executor_matches_default_executor() {
        let batch = vec![
            toks("Beshear spoke today"),
            toks("thanks beshear again"),
            toks("Italy won and beshear cheered"),
        ];
        for mode in [
            AblationMode::MentionExtraction,
            AblationMode::LocalClassifier,
            AblationMode::FullGlobal,
        ] {
            let mut seq = pipeline(mode).with_executor(ngl_runtime::Executor::sequential());
            let mut par = pipeline(mode).with_executor(ngl_runtime::Executor::new(4));
            seq.process_batch(&batch);
            par.process_batch(&batch);
            assert_eq!(seq.finalize(), par.finalize(), "{mode:?}");
            assert_eq!(fingerprint(&seq), fingerprint(&par), "{mode:?}");
        }
    }

    /// [`FakeTagger`] wrapped with fault sentinels: a tweet containing
    /// [`ngl_runtime::faults::PANIC_TOKEN`] panics the encode task, one
    /// containing [`ngl_runtime::faults::NAN_TOKEN`] produces NaN
    /// embeddings.
    struct FaultyTagger {
        inner: FakeTagger,
    }

    impl SequenceTagger for FaultyTagger {
        fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
            self.inner.tag(tokens)
        }
    }

    impl ContextualTagger for FaultyTagger {
        fn dim(&self) -> usize {
            self.inner.dim()
        }

        fn encode(&self, tokens: &[String]) -> SentenceEncoding {
            if tokens.iter().any(|t| t == ngl_runtime::faults::PANIC_TOKEN) {
                panic!("poison tweet");
            }
            let mut enc = self.inner.encode(tokens);
            if tokens.iter().any(|t| t == ngl_runtime::faults::NAN_TOKEN) {
                enc.embeddings.row_mut(0)[0] = f32::NAN;
            }
            enc
        }
    }

    fn faulty_pipeline(mode: AblationMode) -> NerGlobalizer<FaultyTagger> {
        let dim = 8;
        NerGlobalizer::new(
            FaultyTagger { inner: FakeTagger { dim } },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig { ablation: mode, ..Default::default() },
        )
    }

    #[test]
    fn rejected_tweets_leave_no_trace() {
        for threads in [1, 4] {
            let exec = ngl_runtime::Executor::new(threads);
            let mut faulty =
                faulty_pipeline(AblationMode::FullGlobal).with_executor(exec.clone());
            let batch = vec![
                toks("Beshear spoke today"),
                vec!["oh".into(), ngl_runtime::faults::PANIC_TOKEN.into()],
                toks("thanks beshear again"),
                vec!["bad".into(), ngl_runtime::faults::NAN_TOKEN.into()],
                toks("Italy won"),
            ];
            let (out, report) = faulty.try_process_batch_owned(batch);
            assert_eq!(report.ok, vec![0, 2, 4]);
            assert_eq!(report.rejected, vec![1, 3]);
            assert_eq!(report.errors.len(), 2);
            assert_eq!(report.errors[0].index, 1);
            assert_eq!(report.errors[0].message, "poison tweet");
            assert!(report.errors[0].payload.contains("input #1"));
            assert_eq!(report.errors[1].index, 3);
            assert_eq!(report.errors[1].message, "non-finite embeddings rejected");
            assert_eq!(out.local_spans.len(), 3, "spans only for accepted tweets");
            faulty.finalize();
            assert!(faulty.take_finalize_errors().is_empty());

            // The state is exactly a clean run over the survivors.
            let mut clean =
                faulty_pipeline(AblationMode::FullGlobal).with_executor(exec.clone());
            clean.process_batch(&[
                toks("Beshear spoke today"),
                toks("thanks beshear again"),
                toks("Italy won"),
            ]);
            clean.finalize();
            assert_eq!(faulty.tweet_base().len(), clean.tweet_base().len());
            assert_eq!(fingerprint(&faulty), fingerprint(&clean));
        }
    }

    #[test]
    fn duplicate_ids_are_rejected_across_batches() {
        let mut p = pipeline(AblationMode::FullGlobal);
        let (_, r1) =
            p.try_process_batch_with_ids(vec![(10, toks("Beshear spoke")), (11, toks("a b"))]);
        assert!(r1.all_ok());
        let (_, r2) =
            p.try_process_batch_with_ids(vec![(11, toks("again a b")), (12, toks("c d"))]);
        assert_eq!(r2.rejected, vec![0]);
        assert!(r2.errors[0].message.contains("duplicate tweet id 11"));
        assert_eq!(p.tweet_base().len(), 3);
        // A batch-internal duplicate is caught too.
        let (_, r3) =
            p.try_process_batch_with_ids(vec![(20, toks("x y")), (20, toks("x y again"))]);
        assert_eq!(r3.rejected, vec![1]);
    }

    #[test]
    fn empty_tweets_rejected_only_when_configured() {
        let mut lax = pipeline(AblationMode::FullGlobal);
        let (_, r) = lax.try_process_batch_owned(vec![vec![], toks("Beshear spoke")]);
        assert!(r.all_ok(), "empty tweets stored by default");
        assert_eq!(lax.tweet_base().len(), 2);

        let dim = 8;
        let mut strict = NerGlobalizer::new(
            FakeTagger { dim },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig { reject_empty: true, ..Default::default() },
        );
        let (_, r) = strict.try_process_batch_owned(vec![vec![], toks("Beshear spoke")]);
        assert_eq!(r.rejected, vec![0]);
        assert!(r.errors[0].message.contains("empty"));
        assert_eq!(strict.tweet_base().len(), 1);
    }

    #[test]
    fn oversized_tweets_are_truncated_on_ingest() {
        let dim = 8;
        let mut p = NerGlobalizer::new(
            FakeTagger { dim },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig { max_tweet_tokens: 6, ..Default::default() },
        );
        let long: Vec<String> = (0..50).map(|i| format!("w{i}")).collect();
        let (_, r) = p.try_process_batch_owned(vec![long, toks("short one")]);
        assert_eq!(r.truncated, vec![0]);
        assert_eq!(r.ok, vec![0, 1]);
        let rec = p.tweet_base().get(0);
        assert_eq!(rec.tokens.len(), 6);
        assert_eq!(rec.embeddings.rows(), 6, "stored tokens and embeddings agree");
    }

    #[test]
    fn eviction_never_crosses_the_watermark() {
        let dim = 8;
        let mut p = NerGlobalizer::new(
            FakeTagger { dim },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig {
                retention: RetentionPolicy::MaxTweets(2),
                ..Default::default()
            },
        );
        // Unfinalized tweets are beyond the watermark: nothing may be
        // evicted no matter how far over budget the store is.
        for i in 0..5 {
            p.process_batch(&[toks(&format!("Surface{i} here"))]);
        }
        assert_eq!(p.scan_watermark(), 0);
        assert_eq!(p.tweet_base().retained(), 5);
        p.finalize();
        // Now the scan has covered everything; retention kicks in but
        // the invariant keeps holding.
        assert_eq!(p.tweet_base().retained(), 2);
        assert!(p.tweet_base().first_retained() <= p.scan_watermark());
        // More stream keeps the invariant.
        p.process_batch(&[toks("more Surface0 talk"), toks("and Surface1 too")]);
        p.finalize();
        assert!(p.tweet_base().first_retained() <= p.scan_watermark());
        assert_eq!(p.tweet_base().retained(), 2);
    }

    /// With a version-stable continuation (no new surfaces after the
    /// eviction point) the bounded pipeline's finalize output is
    /// bitwise identical to the unbounded one — for every tweet,
    /// evicted ones included (their mentions are frozen).
    #[test]
    fn max_tweets_eviction_preserves_outputs() {
        let dim = 8;
        let mk = |retention| {
            NerGlobalizer::new(
                FakeTagger { dim },
                PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
                EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
                GlobalizerConfig { retention, ..Default::default() },
            )
        };
        let mut bounded = mk(RetentionPolicy::MaxTweets(2));
        let mut unbounded = mk(RetentionPolicy::Unbounded);
        // Phase 1 seeds all surfaces.
        let seed_batch = vec![
            toks("Beshear spoke today"),
            toks("Italy won again"),
            toks("thanks beshear for italy"),
        ];
        // Phase 2 (after eviction) only re-uses known surfaces.
        let stable_batches = vec![
            vec![toks("more beshear talk"), toks("italy italy italy")],
            vec![toks("beshear and italy together")],
        ];
        bounded.process_batch(&seed_batch);
        unbounded.process_batch(&seed_batch);
        assert_eq!(bounded.finalize(), unbounded.finalize());
        assert!(bounded.tweet_base().retained() <= 2);
        for b in &stable_batches {
            bounded.process_batch(b);
            unbounded.process_batch(b);
            let out_b = bounded.finalize();
            let out_u = unbounded.finalize();
            assert_eq!(out_b, out_u, "bounded output diverged");
            assert_eq!(fingerprint(&bounded), fingerprint(&unbounded));
            assert!(bounded.tweet_base().retained() <= 2);
        }
        assert_eq!(unbounded.tweet_base().retained(), unbounded.tweet_base().len());
    }

    /// Same scenario under a byte budget.
    #[test]
    fn max_bytes_eviction_preserves_outputs() {
        let dim = 8;
        let mk = |retention| {
            NerGlobalizer::new(
                FakeTagger { dim },
                PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
                EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
                GlobalizerConfig { retention, ..Default::default() },
            )
        };
        let mut bounded = mk(RetentionPolicy::MaxBytes(600));
        let mut unbounded = mk(RetentionPolicy::Unbounded);
        let batches = vec![
            vec![toks("Beshear spoke today"), toks("Italy won")],
            vec![toks("more beshear and italy")],
            vec![toks("italy beshear italy")],
        ];
        for b in &batches {
            bounded.process_batch(b);
            unbounded.process_batch(b);
        }
        assert_eq!(bounded.finalize(), unbounded.finalize());
        assert!(bounded.tweet_base().retained_bytes() <= 600);
        assert!(
            bounded.tweet_base().first_retained() > 0,
            "budget small enough that eviction actually ran"
        );
        // Continuation with known surfaces stays identical.
        bounded.process_batch(&[toks("beshear again")]);
        unbounded.process_batch(&[toks("beshear again")]);
        assert_eq!(bounded.finalize(), unbounded.finalize());
    }

    #[test]
    fn unchanged_surfaces_are_skipped_by_finalize() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke today"), toks("Italy won")]);
        p.finalize();
        for (_, e) in p.candidate_base().iter() {
            assert_eq!(e.clustered, e.mentions.len());
            assert_eq!(e.classified, e.mentions.len());
        }
        // A batch touching only "beshear" (known surface, no version
        // bump) leaves "italy" untouched and skippable.
        p.process_batch(&[toks("more beshear talk")]);
        let fp_before_italy = {
            let e = p.candidate_base().get("italy").expect("entry");
            (e.mentions.len(), e.clusters.len())
        };
        p.finalize();
        let italy = p.candidate_base().get("italy").expect("entry");
        assert_eq!((italy.mentions.len(), italy.clusters.len()), fp_before_italy);
        assert!(!italy.needs_recluster());
        let beshear = p.candidate_base().get("beshear").expect("entry");
        assert_eq!(beshear.clustered, beshear.mentions.len());
    }

    #[test]
    fn export_import_resumes_exactly() {
        let batches = [
            vec![toks("Beshear spoke today"), toks("saw beshear downtown")],
            vec![toks("Italy won again"), toks("thanks beshear for italy")],
            vec![toks("more beshear and Italy talk")],
        ];
        for mode in [AblationMode::MentionExtraction, AblationMode::FullGlobal] {
            // Uninterrupted reference run.
            let mut reference = pipeline(mode);
            for b in &batches {
                reference.process_batch(b);
                reference.finalize();
            }
            // Interrupted run: snapshot after batch 1, restore into a
            // fresh pipeline (same trained models), continue.
            let mut first = pipeline(mode);
            first.process_batch(&batches[0]);
            first.finalize();
            let snapshot = first.export_state();
            drop(first);
            let mut resumed = pipeline(mode);
            resumed.import_state(snapshot).expect("import");
            let mut last = Vec::new();
            for b in &batches[1..] {
                resumed.process_batch(b);
                last = resumed.finalize();
            }
            let mut ref_last = Vec::new();
            {
                let mut r2 = pipeline(mode);
                for b in &batches {
                    r2.process_batch(b);
                    ref_last = r2.finalize();
                }
            }
            assert_eq!(last, ref_last, "resumed output diverges in {mode:?}");
            assert_eq!(
                fingerprint(&resumed),
                fingerprint(&reference),
                "resumed state diverges in {mode:?}"
            );
            assert_eq!(resumed.cached_mentions(), reference.cached_mentions());
            assert_eq!(resumed.scan_watermark(), reference.scan_watermark());
        }
    }

    #[test]
    fn import_rejects_inconsistent_checkpoints() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke")]);
        p.finalize();
        let mut ck = p.export_state();
        ck.scanned_tweets = 99;
        let mut q = pipeline(AblationMode::FullGlobal);
        assert!(matches!(q.import_state(ck), Err(PersistError::Inconsistent(_))));

        let mut ck = p.export_state();
        ck.mention_cache.insert((0, 0, 1), vec![1.0; 3]); // wrong dim
        assert!(matches!(q.import_state(ck), Err(PersistError::Inconsistent(_))));
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn dimension_mismatch_is_rejected() {
        let _ = NerGlobalizer::new(
            FakeTagger { dim: 8 },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim: 16, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim: 16, ..Default::default() }),
            GlobalizerConfig::default(),
        );
    }
}
