//! The NER Globalizer execution pipeline (§III).
//!
//! [`NerGlobalizer`] sustains a continuous execution over stream batches:
//! Local NER seeds surfaces and embeddings per batch
//! ([`NerGlobalizer::process_batch`]); the Global NER steps — mention
//! extraction, phrase embedding, candidate clustering, pooling and
//! classification — run over everything seen so far
//! ([`NerGlobalizer::finalize`]). Per-stage wall-clock is tracked for the
//! Table IV time-overhead analysis, and [`AblationMode`] switches the
//! pipeline into the Figure 3 component-ablation variants.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ngl_cluster::agglomerative;
use ngl_ctrie::CTrie;
use ngl_encoder::ContextualTagger;
use ngl_nn::Matrix;
use ngl_text::{decode_bio, EntityType, Span};

use crate::bases::{CandidateBase, CandidateCluster, MentionRecord, TweetBase, TweetRecord};
use crate::classifier::EntityClassifier;
use crate::phrase::PhraseEmbedder;

/// Which pipeline variant runs (Figure 3's incremental component study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationMode {
    /// Stop after Local NER (the bottom curve of Fig. 3).
    LocalOnly,
    /// Local NER + CTrie mention extraction; each surface takes its most
    /// frequent locally-assigned type.
    MentionExtraction,
    /// Adds local mention embeddings: each mention is classified
    /// individually from its own local embedding (no aggregation).
    LocalClassifier,
    /// The full system with global candidate embeddings (top curve).
    FullGlobal,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GlobalizerConfig {
    /// Maximum mention length in tokens for the CTrie scan (§V-A's k).
    pub max_mention_len: usize,
    /// Agglomerative clustering threshold (cosine distance; tuned below
    /// 1, the triplet margin — §V-C).
    pub cluster_threshold: f32,
    /// Minimum classifier probability required to accept a cluster as an
    /// entity; below it the cluster is treated as non-entity. Precision
    /// guard: a confidently mixed cluster should not flood the output
    /// with one type's mentions.
    pub min_confidence: f32,
    /// Which variant to run.
    pub ablation: AblationMode,
}

impl Default for GlobalizerConfig {
    fn default() -> Self {
        Self {
            max_mention_len: 4,
            cluster_threshold: 0.7,
            min_confidence: 0.35,
            ablation: AblationMode::FullGlobal,
        }
    }
}

/// Accumulated wall-clock per stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Time spent in Local NER (encoding + tagging + seeding).
    pub local: Duration,
    /// Time spent in the Global NER stages.
    pub global: Duration,
}

/// Output of one processed batch.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Index of the first tweet of this batch in the stream.
    pub first_tweet: usize,
    /// Local NER spans per tweet of the batch.
    pub local_spans: Vec<Vec<Span>>,
}

/// The NER Globalizer system.
pub struct NerGlobalizer<T: ContextualTagger> {
    local: T,
    phrase: PhraseEmbedder,
    classifier: EntityClassifier,
    cfg: GlobalizerConfig,
    ctrie: CTrie,
    tweets: TweetBase,
    candidates: CandidateBase,
    timings: StageTimings,
}

impl<T: ContextualTagger> NerGlobalizer<T> {
    /// Assembles a pipeline from a trained local tagger, a trained
    /// phrase embedder and a trained entity classifier.
    ///
    /// # Panics
    /// Panics when the embedding dimensions of the three components
    /// disagree.
    pub fn new(
        local: T,
        phrase: PhraseEmbedder,
        classifier: EntityClassifier,
        cfg: GlobalizerConfig,
    ) -> Self {
        assert_eq!(local.dim(), phrase.dim(), "encoder/embedder dim mismatch");
        Self {
            local,
            phrase,
            classifier,
            cfg,
            ctrie: CTrie::new(),
            tweets: TweetBase::new(),
            candidates: CandidateBase::new(),
            timings: StageTimings::default(),
        }
    }

    /// The Local NER stage over one batch of tokenized tweets: tags each
    /// sentence, stores its record, registers detected surface forms in
    /// the CTrie. Returns the batch's local outputs.
    pub fn process_batch(&mut self, batch: &[Vec<String>]) -> BatchOutput {
        let t0 = Instant::now();
        let first_tweet = self.tweets.len();
        let mut local_spans = Vec::with_capacity(batch.len());
        for tokens in batch {
            let enc = self.local.encode(tokens);
            let spans = decode_bio(&enc.tags);
            for s in &spans {
                let surface: Vec<&str> =
                    tokens[s.start..s.end].iter().map(String::as_str).collect();
                // Stray tags on bare function words are partial-
                // extraction artifacts, never real candidates.
                if !ngl_text::is_stopword_surface(&surface) {
                    self.ctrie.insert(&surface);
                }
            }
            self.tweets.push(TweetRecord {
                tokens: tokens.clone(),
                embeddings: enc.embeddings,
                local_spans: spans.clone(),
            });
            local_spans.push(spans);
        }
        self.timings.local += t0.elapsed();
        BatchOutput { first_tweet, local_spans }
    }

    /// Runs the Global NER stages over everything processed so far and
    /// returns the final NER output per stored tweet. Can be called
    /// after every batch (incremental execution) or once at the end.
    pub fn finalize(&mut self) -> Vec<Vec<Span>> {
        let t0 = Instant::now();
        let out = match self.cfg.ablation {
            AblationMode::LocalOnly => self.tweets.iter().map(|t| t.local_spans.clone()).collect(),
            mode => {
                self.extract_and_embed();
                self.cluster_candidates(mode);
                self.classify_candidates(mode);
                self.emit(mode)
            }
        };
        self.timings.global += t0.elapsed();
        out
    }

    /// Stage (i)+(ii): CTrie scan over all stored tweets plus phrase
    /// embedding of every occurrence. Rebuilt from scratch on each call
    /// so late-discovered surfaces recover early mentions.
    fn extract_and_embed(&mut self) {
        self.candidates = CandidateBase::new();
        for ti in 0..self.tweets.len() {
            let record = self.tweets.get(ti);
            let occs = self
                .ctrie
                .extract_mentions(&record.tokens, self.cfg.max_mention_len);
            for occ in occs {
                let span_probe = Span::new(occ.start, occ.end, EntityType::Person);
                let local_emb = self.phrase.embed(&record.embeddings, &span_probe);
                let local_type = record
                    .local_spans
                    .iter()
                    .find(|s| s.start == occ.start && s.end == occ.end)
                    .map(|s| s.ty);
                self.candidates.add_mention(
                    &occ.surface,
                    MentionRecord {
                        tweet: ti,
                        start: occ.start,
                        end: occ.end,
                        local_emb,
                        local_type,
                    },
                );
            }
        }
    }

    /// Stage (iii): split each surface's mentions into candidate
    /// clusters. The ablation variants below full-global use one cluster
    /// per surface (no ambiguity resolution).
    fn cluster_candidates(&mut self, mode: AblationMode) {
        let threshold = self.cfg.cluster_threshold;
        for (_, entry) in self.candidates.iter_mut() {
            entry.clusters.clear();
            if entry.mentions.is_empty() {
                continue;
            }
            if mode == AblationMode::FullGlobal {
                // Agglomerative clustering is O(n²·merges); very frequent
                // surfaces (often Local-NER junk like stopwords) can
                // collect thousands of mentions, so those fall back to
                // the one-pass online approximation.
                const BATCH_CLUSTER_CAP: usize = 400;
                if entry.mentions.len() <= BATCH_CLUSTER_CAP {
                    let points: Vec<Vec<f32>> =
                        entry.mentions.iter().map(|m| m.local_emb.clone()).collect();
                    let clustering = agglomerative(&points, threshold);
                    for group in clustering.groups() {
                        entry.clusters.push(CandidateCluster {
                            members: group,
                            global_emb: Vec::new(),
                            label: None,
                        });
                    }
                } else {
                    let mut online = ngl_cluster::OnlineClusters::new(threshold);
                    let mut groups: Vec<Vec<usize>> = Vec::new();
                    for (mi, m) in entry.mentions.iter().enumerate() {
                        let c = online.insert(&m.local_emb);
                        if c == groups.len() {
                            groups.push(Vec::new());
                        }
                        groups[c].push(mi);
                    }
                    for group in groups {
                        entry.clusters.push(CandidateCluster {
                            members: group,
                            global_emb: Vec::new(),
                            label: None,
                        });
                    }
                }
            } else {
                entry.clusters.push(CandidateCluster {
                    members: (0..entry.mentions.len()).collect(),
                    global_emb: Vec::new(),
                    label: None,
                });
            }
        }
    }

    /// Stages (iv)+(v): pool each cluster and classify it. In
    /// [`AblationMode::MentionExtraction`] the "classification" is the
    /// majority local type instead.
    fn classify_candidates(&mut self, mode: AblationMode) {
        let classifier = &self.classifier;
        let min_confidence = self.cfg.min_confidence;
        for (_, entry) in self.candidates.iter_mut() {
            // Split borrow: clusters vs mentions.
            let mentions = std::mem::take(&mut entry.mentions);
            for cluster in &mut entry.clusters {
                match mode {
                    AblationMode::MentionExtraction => {
                        cluster.label = Some(majority_local_type(
                            cluster.members.iter().map(|&m| mentions[m].local_type),
                        ));
                    }
                    AblationMode::FullGlobal => {
                        let rows: Vec<&[f32]> = cluster
                            .members
                            .iter()
                            .map(|&m| mentions[m].local_emb.as_slice())
                            .collect();
                        let locals = Matrix::from_rows(&rows);
                        cluster.global_emb = classifier.global_embedding(&locals);
                        cluster.label =
                            Some(classifier.predict_confident(&locals, min_confidence));
                    }
                    AblationMode::LocalClassifier | AblationMode::LocalOnly => {
                        // Per-mention classification happens at emit time.
                        cluster.label = None;
                    }
                }
            }
            entry.mentions = mentions;
        }
    }

    /// Produces the final span outputs per tweet.
    fn emit(&self, mode: AblationMode) -> Vec<Vec<Span>> {
        let mut out: Vec<Vec<Span>> = vec![Vec::new(); self.tweets.len()];
        for (_, entry) in self.candidates.iter() {
            match mode {
                AblationMode::MentionExtraction | AblationMode::FullGlobal => {
                    for cluster in &entry.clusters {
                        let Some(Some(ty)) = cluster.label else {
                            continue; // unclassified or non-entity
                        };
                        for &mi in &cluster.members {
                            let m = &entry.mentions[mi];
                            out[m.tweet].push(Span::new(m.start, m.end, ty));
                        }
                    }
                }
                AblationMode::LocalClassifier => {
                    for m in &entry.mentions {
                        let locals = Matrix::from_rows(&[m.local_emb.as_slice()]);
                        if let Some(ty) =
                            self.classifier.predict_confident(&locals, self.cfg.min_confidence)
                        {
                            out[m.tweet].push(Span::new(m.start, m.end, ty));
                        }
                    }
                }
                AblationMode::LocalOnly => {}
            }
        }
        for spans in &mut out {
            spans.sort_by_key(|s| (s.start, s.end));
        }
        out
    }

    /// Local NER outputs of every stored tweet (for ablations and the
    /// Table IV "Local NER" columns).
    pub fn local_outputs(&self) -> Vec<Vec<Span>> {
        self.tweets.iter().map(|t| t.local_spans.clone()).collect()
    }

    /// Accumulated per-stage wall-clock.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Number of surface forms currently registered in the CTrie.
    pub fn n_surfaces(&self) -> usize {
        self.ctrie.len()
    }

    /// Read access to the candidate store (diagnostics, examples).
    pub fn candidate_base(&self) -> &CandidateBase {
        &self.candidates
    }

    /// Read access to the tweet store.
    pub fn tweet_base(&self) -> &TweetBase {
        &self.tweets
    }

    /// The trained local tagger (shared with baselines in experiments).
    pub fn local_tagger(&self) -> &T {
        &self.local
    }
}

/// Majority vote over the local types of a cluster's mentions; `None`
/// when no mention carries a local type.
fn majority_local_type(
    types: impl Iterator<Item = Option<EntityType>>,
) -> Option<EntityType> {
    let mut counts = [0usize; EntityType::COUNT];
    for t in types.flatten() {
        counts[t.index()] += 1;
    }
    let (best, n) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty counts");
    if *n == 0 {
        None
    } else {
        Some(EntityType::from_index(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use crate::phrase::PhraseEmbedderConfig;
    use ngl_encoder::{SentenceEncoding, SequenceTagger};
    use ngl_text::BioTag;

    /// A deterministic fake local tagger for pipeline unit tests: tags
    /// any capitalized token as B-PER and embeds tokens by a hash-driven
    /// one-hot so the clustering is predictable.
    struct FakeTagger {
        dim: usize,
    }

    impl SequenceTagger for FakeTagger {
        fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
            tokens
                .iter()
                .map(|t| {
                    if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                        BioTag::B(EntityType::Person)
                    } else {
                        BioTag::O
                    }
                })
                .collect()
        }
    }

    impl ContextualTagger for FakeTagger {
        fn dim(&self) -> usize {
            self.dim
        }

        fn encode(&self, tokens: &[String]) -> SentenceEncoding {
            let mut emb = Matrix::zeros(tokens.len(), self.dim);
            for (i, t) in tokens.iter().enumerate() {
                let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
                emb.row_mut(i)[h % self.dim] = 1.0;
            }
            let tags = self.tag(tokens);
            SentenceEncoding {
                embeddings: emb,
                tags,
                probs: Matrix::zeros(tokens.len(), BioTag::COUNT),
            }
        }
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|x| x.to_string()).collect()
    }

    fn pipeline(mode: AblationMode) -> NerGlobalizer<FakeTagger> {
        let dim = 8;
        NerGlobalizer::new(
            FakeTagger { dim },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
            GlobalizerConfig { ablation: mode, ..Default::default() },
        )
    }

    #[test]
    fn local_only_passes_through_local_spans() {
        let mut p = pipeline(AblationMode::LocalOnly);
        let batch = vec![toks("Beshear spoke today"), toks("nothing here")];
        let out = p.process_batch(&batch);
        assert_eq!(out.local_spans[0].len(), 1);
        assert!(out.local_spans[1].is_empty());
        let fin = p.finalize();
        assert_eq!(fin, p.local_outputs());
    }

    #[test]
    fn mention_extraction_recovers_missed_lowercase_mention() {
        let mut p = pipeline(AblationMode::MentionExtraction);
        // "Beshear" detected locally in tweet 0; lowercase "beshear" in
        // tweet 1 is missed by the fake tagger but recovered by the scan.
        p.process_batch(&[toks("Beshear spoke today"), toks("thanks beshear for this")]);
        let fin = p.finalize();
        assert_eq!(fin[0], vec![Span::new(0, 1, EntityType::Person)]);
        assert_eq!(fin[1], vec![Span::new(1, 2, EntityType::Person)]);
    }

    #[test]
    fn surfaces_found_in_later_batches_recover_earlier_mentions() {
        let mut p = pipeline(AblationMode::MentionExtraction);
        // Batch 1: lowercase mention, locally missed; no surface yet.
        p.process_batch(&[toks("saw beshear yesterday")]);
        // Batch 2: capitalized mention seeds the surface.
        p.process_batch(&[toks("Beshear responded")]);
        let fin = p.finalize();
        assert_eq!(fin[0].len(), 1, "early mention recovered: {fin:?}");
        assert_eq!(fin[1].len(), 1);
    }

    #[test]
    fn timings_accumulate() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear spoke")]);
        p.finalize();
        let t = p.timings();
        assert!(t.local > Duration::ZERO);
        assert!(t.global > Duration::ZERO);
    }

    #[test]
    fn full_global_clusters_per_surface() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[
            toks("Beshear spoke today"),
            toks("thanks beshear again"),
            toks("Beshear announced plans"),
        ]);
        p.finalize();
        let cb = p.candidate_base();
        let entry = cb.get("beshear").expect("surface registered");
        assert_eq!(entry.mentions.len(), 3);
        assert!(!entry.clusters.is_empty());
        let total: usize = entry.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 3, "clusters partition mentions");
        // Identical embeddings (same token) must share one cluster.
        assert_eq!(entry.clusters.len(), 1);
        assert!(entry.clusters[0].label.is_some());
        assert_eq!(entry.clusters[0].global_emb.len(), 8);
    }

    #[test]
    fn majority_type_vote_breaks_toward_most_frequent() {
        let t = majority_local_type(
            [
                Some(EntityType::Person),
                Some(EntityType::Location),
                Some(EntityType::Person),
                None,
            ]
            .into_iter(),
        );
        assert_eq!(t, Some(EntityType::Person));
        assert_eq!(majority_local_type([None, None].into_iter()), None);
    }

    #[test]
    fn n_surfaces_counts_unique_folded_forms() {
        let mut p = pipeline(AblationMode::FullGlobal);
        p.process_batch(&[toks("Beshear and BESHEAR and Italy")]);
        // Fake tagger tags all three capitalized tokens; "beshear" folds
        // to one surface.
        assert_eq!(p.n_surfaces(), 2);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn dimension_mismatch_is_rejected() {
        let _ = NerGlobalizer::new(
            FakeTagger { dim: 8 },
            PhraseEmbedder::new(PhraseEmbedderConfig { dim: 16, ..Default::default() }),
            EntityClassifier::new(ClassifierConfig { dim: 16, ..Default::default() }),
            GlobalizerConfig::default(),
        );
    }
}
