//! The Entity Classifier (§V-D).
//!
//! Takes a candidate cluster's mention embeddings, pools them into a
//! global candidate embedding via [`AttentivePooling`](crate::pooling::AttentivePooling), and classifies
//! the candidate into one of **L+1 classes** — the four entity types or
//! *non-entity*. The pooling and the dense classification head are
//! trained end-to-end on ground-truth candidate clusters from a
//! D5-style stream.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_nn::layers::{Dense, Init, Relu};
use ngl_nn::loss::SoftmaxCrossEntropy;
use ngl_nn::{Adam, AdamState, EarlyStopping, Matrix};
use ngl_text::types::non_entity_class;
use ngl_text::EntityType;

/// Classifier hyperparameters (paper: Adam lr 0.0015, batch 32, 200
/// epochs, patience 20).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Hidden width of the dense stack.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Candidates per mini-batch.
    pub batch_size: usize,
    /// Epoch cap.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            hidden: 48,
            lr: 1.5e-3,
            batch_size: 32,
            max_epochs: 120,
            patience: 20,
            seed: 0,
        }
    }
}

/// One training candidate: the cluster's local mention embeddings plus
/// its gold class.
#[derive(Debug, Clone)]
pub struct CandidateExample {
    /// `n × d` mention embeddings.
    pub locals: Matrix,
    /// Gold class in `0..=L` ([`EntityType::class_index`]).
    pub class: usize,
}

/// Training report (feeds Table II's classifier column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierTrainReport {
    /// Candidates trained on.
    pub n_candidates: usize,
    /// Epochs executed.
    pub epochs_run: usize,
    /// Best validation loss.
    pub best_val_loss: f32,
    /// Validation macro-F1 over the L+1 classes at the best checkpoint.
    pub val_macro_f1: f64,
}

/// The attention-pooling entity classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityClassifier {
    pooling: super::pooling::AttentivePooling,
    l1: Dense,
    l2: Dense,
    cfg: ClassifierConfig,
}

impl EntityClassifier {
    /// Fresh classifier.
    pub fn new(cfg: ClassifierConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let l1 = Dense::new(&mut rng, cfg.dim, cfg.hidden, Init::He);
        let l2 = Dense::new(&mut rng, cfg.hidden, EntityType::COUNT + 1, Init::Xavier);
        Self {
            pooling: super::pooling::AttentivePooling::new(cfg.seed ^ 0xA77E, cfg.dim),
            l1,
            l2,
            cfg,
        }
    }

    /// The pooled global embedding of a candidate cluster (Eq. 8).
    pub fn global_embedding(&self, locals: &Matrix) -> Vec<f32> {
        self.pooling.forward(locals).0
    }

    /// Class probabilities over the L+1 classes for one candidate.
    pub fn predict_proba(&self, locals: &Matrix) -> Vec<f32> {
        let (global, _) = self.pooling.forward(locals);
        let x = Matrix::from_rows(&[global.as_slice()]);
        let h = Relu.forward(&self.l1.forward(&x));
        let logits = self.l2.forward(&h);
        SoftmaxCrossEntropy.probabilities(&logits).row(0).to_vec()
    }

    /// Predicted class: `Some(type)` for an entity, `None` for the
    /// non-entity class.
    pub fn predict(&self, locals: &Matrix) -> Option<EntityType> {
        let p = self.predict_proba(locals);
        let best = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite prob"))
            .map(|(i, _)| i)
            .expect("non-empty probs");
        EntityType::from_class_index(best)
    }

    /// Like [`Self::predict`] but demanding at least `min_confidence`
    /// probability mass on the winning *entity* class; anything less
    /// confident is treated as non-entity. This is the pipeline's
    /// precision guard against mixed or junk clusters.
    pub fn predict_confident(&self, locals: &Matrix, min_confidence: f32) -> Option<EntityType> {
        let p = self.predict_proba(locals);
        let (best, prob) = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite prob"))
            .expect("non-empty probs");
        match EntityType::from_class_index(best) {
            Some(ty) if *prob >= min_confidence => Some(ty),
            _ => None,
        }
    }

    /// Fused scoring for the finalize hot path: the pooled global
    /// embedding (Eq. 8) **and** the confidence-gated prediction from a
    /// single attention pass, instead of one pass for
    /// [`Self::global_embedding`] and another inside
    /// [`Self::predict_confident`]. The pooling is deterministic, so
    /// both outputs are bitwise identical to the two separate calls.
    pub fn score_candidate(
        &self,
        locals: &Matrix,
        min_confidence: f32,
    ) -> (Vec<f32>, Option<EntityType>) {
        let (global, _) = self.pooling.forward(locals);
        let x = Matrix::from_rows(&[global.as_slice()]);
        let h = Relu.forward(&self.l1.forward(&x));
        let logits = self.l2.forward(&h);
        let p = SoftmaxCrossEntropy.probabilities(&logits);
        let p = p.row(0);
        let (best, prob) = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite prob"))
            .expect("non-empty probs");
        let label = match EntityType::from_class_index(best) {
            Some(ty) if *prob >= min_confidence => Some(ty),
            _ => None,
        };
        (global, label)
    }

    /// Mean cross-entropy over a candidate set.
    pub fn loss(&self, examples: &[CandidateExample]) -> f32 {
        let sce = SoftmaxCrossEntropy;
        let mut total = 0.0;
        for ex in examples {
            let (global, _) = self.pooling.forward(&ex.locals);
            let x = Matrix::from_rows(&[global.as_slice()]);
            let h = Relu.forward(&self.l1.forward(&x));
            let logits = self.l2.forward(&h);
            total += sce.forward(&logits, &[ex.class]).0;
        }
        total / examples.len().max(1) as f32
    }

    /// Macro-F1 over the L+1 classes on a candidate set.
    pub fn macro_f1(&self, examples: &[CandidateExample]) -> f64 {
        let k = EntityType::COUNT + 1;
        let mut tp = vec![0usize; k];
        let mut fp = vec![0usize; k];
        let mut fn_ = vec![0usize; k];
        for ex in examples {
            let pred = EntityType::class_index(self.predict(&ex.locals));
            if pred == ex.class {
                tp[pred] += 1;
            } else {
                fp[pred] += 1;
                fn_[ex.class] += 1;
            }
        }
        let mut f1s = Vec::new();
        for c in 0..k {
            if tp[c] + fp[c] + fn_[c] == 0 {
                continue; // class absent from the set
            }
            let p = if tp[c] + fp[c] == 0 { 0.0 } else { tp[c] as f64 / (tp[c] + fp[c]) as f64 };
            let r = if tp[c] + fn_[c] == 0 { 0.0 } else { tp[c] as f64 / (tp[c] + fn_[c]) as f64 };
            f1s.push(if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) });
        }
        if f1s.is_empty() {
            0.0
        } else {
            f1s.iter().sum::<f64>() / f1s.len() as f64
        }
    }

    /// End-to-end training on ground-truth candidate clusters with an
    /// internal 80/20 split, early stopping and best-checkpoint restore.
    pub fn fit(&mut self, examples: &[CandidateExample]) -> ClassifierTrainReport {
        assert!(examples.len() >= 5, "need at least a handful of candidates");
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xC1A5);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(&mut rng);
        let n_val = (examples.len() / 5).max(1);
        let (val_idx, train_idx) = order.split_at(n_val);
        let val: Vec<CandidateExample> = val_idx.iter().map(|&i| examples[i].clone()).collect();

        let mut adam = Adam::new(self.cfg.lr).with_weight_decay(1e-5);
        let mut states = [
            AdamState::new(self.cfg.dim),                         // pooling w_a
            AdamState::new(1),                                    // pooling b_a
            AdamState::new(self.cfg.dim * self.cfg.hidden),       // l1.w
            AdamState::new(self.cfg.hidden),                      // l1.b
            AdamState::new(self.cfg.hidden * (EntityType::COUNT + 1)), // l2.w
            AdamState::new(EntityType::COUNT + 1),                // l2.b
        ];
        let mut es = EarlyStopping::new(self.cfg.patience);
        let mut best = (self.pooling.clone(), self.l1.clone(), self.l2.clone());
        let mut train_order: Vec<usize> = train_idx.to_vec();
        let mut epochs_run = 0;

        for _ in 0..self.cfg.max_epochs {
            epochs_run += 1;
            train_order.shuffle(&mut rng);
            for chunk in train_order.chunks(self.cfg.batch_size.max(1)) {
                self.train_batch(chunk.iter().map(|&i| &examples[i]), chunk.len(), &mut adam, &mut states);
            }
            let val_loss = self.loss(&val);
            if es.record(val_loss) {
                best = (self.pooling.clone(), self.l1.clone(), self.l2.clone());
            }
            if es.should_stop() {
                break;
            }
        }
        self.pooling = best.0;
        self.l1 = best.1;
        self.l2 = best.2;
        ClassifierTrainReport {
            n_candidates: examples.len(),
            epochs_run,
            best_val_loss: es.best(),
            val_macro_f1: self.macro_f1(&val),
        }
    }

    fn train_batch<'a>(
        &mut self,
        batch: impl Iterator<Item = &'a CandidateExample>,
        batch_len: usize,
        adam: &mut Adam,
        states: &mut [AdamState; 6],
    ) {
        let sce = SoftmaxCrossEntropy;
        self.pooling.zero_grad();
        self.l1.zero_grad();
        self.l2.zero_grad();
        let scale = 1.0 / batch_len.max(1) as f32;
        for ex in batch {
            let (global, cache) = self.pooling.forward(&ex.locals);
            let x = Matrix::from_rows(&[global.as_slice()]);
            let pre = self.l1.forward(&x);
            let h = Relu.forward(&pre);
            let logits = self.l2.forward(&h);
            let (_, probs) = sce.forward(&logits, &[ex.class]);
            let mut dlogits = sce.backward(&probs, &[ex.class]);
            dlogits.scale(scale);
            let dh = self.l2.backward(&h, &dlogits);
            let dpre = Relu.backward(&pre, &dh);
            let dx = self.l1.backward(&x, &dpre);
            self.pooling.backward(&ex.locals, &cache, dx.row(0));
        }
        adam.tick();
        {
            let (w, gw, b, gb) = self.pooling.params_and_grads();
            adam.step(w, gw, &mut states[0]);
            let mut bv = [*b];
            adam.step(&mut bv, &[gb], &mut states[1]);
            *b = bv[0];
        }
        let mut s = 2;
        for layer in [&mut self.l1, &mut self.l2] {
            for (param, grad) in layer.params_and_grads() {
                adam.step(param, grad, &mut states[s]);
                s += 1;
            }
        }
    }

    /// The non-entity class index (= L), re-exported for callers.
    pub fn non_entity() -> usize {
        non_entity_class()
    }

    /// Serializes the trained classifier (pooling + dense stack + config).
    pub fn to_bytes(&self) -> bytes::Bytes {
        use ngl_nn::codec::{put_f32, put_dense, put_u64};
        let mut buf = bytes::BytesMut::new();
        put_u64(&mut buf, self.cfg.dim as u64);
        put_u64(&mut buf, self.cfg.hidden as u64);
        put_f32(&mut buf, self.cfg.lr);
        put_u64(&mut buf, self.cfg.batch_size as u64);
        put_u64(&mut buf, self.cfg.max_epochs as u64);
        put_u64(&mut buf, self.cfg.patience as u64);
        put_u64(&mut buf, self.cfg.seed);
        buf.extend_from_slice(&self.pooling.to_bytes());
        put_dense(&mut buf, &self.l1);
        put_dense(&mut buf, &self.l2);
        buf.freeze()
    }

    /// Deserializes a classifier written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &mut bytes::Bytes) -> Result<Self, ngl_nn::CodecError> {
        use ngl_nn::codec::{get_f32, get_dense, get_u64, CodecError};
        let cfg = ClassifierConfig {
            dim: get_u64(bytes)? as usize,
            hidden: get_u64(bytes)? as usize,
            lr: get_f32(bytes)?,
            batch_size: get_u64(bytes)? as usize,
            max_epochs: get_u64(bytes)? as usize,
            patience: get_u64(bytes)? as usize,
            seed: get_u64(bytes)?,
        };
        let pooling = super::pooling::AttentivePooling::from_bytes(bytes)?;
        let l1 = get_dense(bytes)?;
        let l2 = get_dense(bytes)?;
        if pooling.dim() != cfg.dim
            || l1.in_dim() != cfg.dim
            || l2.out_dim() != EntityType::COUNT + 1
        {
            return Err(CodecError::Invalid("classifier shapes"));
        }
        Ok(Self { pooling, l1, l2, cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Builds synthetic candidate clusters: class c lives near axis c.
    fn synth_candidates(seed: u64, per_class: usize, dim: usize) -> Vec<CandidateExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for class in 0..=EntityType::COUNT {
            for _ in 0..per_class {
                let n = rng.gen_range(1..6usize);
                let mut data = Vec::new();
                for _ in 0..n {
                    for c in 0..dim {
                        let base = if c == class { 1.0 } else { 0.0 };
                        data.push(base + rng.gen_range(-0.25..0.25f32));
                    }
                }
                out.push(CandidateExample {
                    locals: Matrix::from_vec(n, dim, data),
                    class,
                });
            }
        }
        out
    }

    #[test]
    fn classifier_learns_separable_candidates() {
        let examples = synth_candidates(3, 30, 8);
        let mut clf = EntityClassifier::new(ClassifierConfig {
            dim: 8,
            hidden: 16,
            max_epochs: 60,
            patience: 15,
            seed: 2,
            ..ClassifierConfig::default()
        });
        let report = clf.fit(&examples);
        assert!(
            report.val_macro_f1 > 0.9,
            "val macro-F1 {}",
            report.val_macro_f1
        );
        // A fresh candidate of class 0 (Person axis) classifies correctly.
        let locals = Matrix::from_vec(2, 8, {
            let mut v = vec![0.0f32; 16];
            v[0] = 1.0;
            v[8] = 0.95;
            v
        });
        assert_eq!(clf.predict(&locals), Some(EntityType::Person));
    }

    #[test]
    fn non_entity_class_is_reachable() {
        let examples = synth_candidates(5, 25, 8);
        let mut clf = EntityClassifier::new(ClassifierConfig {
            dim: 8,
            hidden: 16,
            max_epochs: 60,
            patience: 15,
            seed: 4,
            ..ClassifierConfig::default()
        });
        clf.fit(&examples);
        // Class 4 = non-entity axis.
        let locals = Matrix::from_vec(1, 8, {
            let mut v = vec![0.0f32; 8];
            v[4] = 1.0;
            v
        });
        assert_eq!(clf.predict(&locals), None);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let clf = EntityClassifier::new(ClassifierConfig { dim: 6, ..ClassifierConfig::default() });
        let locals = Matrix::from_vec(3, 6, vec![0.1; 18]);
        let p = clf.predict_proba(&locals);
        assert_eq!(p.len(), EntityType::COUNT + 1);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn global_embedding_has_input_dim() {
        let clf = EntityClassifier::new(ClassifierConfig { dim: 6, ..ClassifierConfig::default() });
        let locals = Matrix::from_vec(4, 6, vec![0.2; 24]);
        assert_eq!(clf.global_embedding(&locals).len(), 6);
    }

    #[test]
    fn macro_f1_of_perfect_predictions_is_one_on_trained_model() {
        let examples = synth_candidates(8, 25, 8);
        let mut clf = EntityClassifier::new(ClassifierConfig {
            dim: 8,
            hidden: 16,
            max_epochs: 60,
            patience: 15,
            seed: 6,
            ..ClassifierConfig::default()
        });
        clf.fit(&examples);
        let f1 = clf.macro_f1(&examples);
        assert!(f1 > 0.85, "macro f1 {f1}");
    }
}
