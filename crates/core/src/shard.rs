//! Sharded globalization: N durable shards over one shared runtime.
//!
//! The sharding model is *replicated ingest, ownership-partitioned
//! globalization*. Every shard runs the full pipeline over the full
//! tweet stream — CTrie, tweet store, seen-ids and watermarks are
//! bitwise identical on every shard — but a shard admits into its
//! candidate base only the surfaces it *owns*:
//!
//! ```text
//! owner(surface) = fnv1a64(surface) % shard_count
//! ```
//!
//! Ownership partitions exactly the state that makes the single
//! process a bottleneck: the per-surface mention sets and their
//! clustering (quadratic in mentions-per-surface under a Zipfian
//! stream), which now run concurrently across shards on the one
//! shared [`Executor`] pool. Non-owned surfaces still consume their
//! touch-clock tick on every shard, so owned entries carry the same
//! stamps as the unsharded run and the cross-shard merge is bitwise
//! faithful.
//!
//! Each shard is a complete [`DurableGlobalizer`] with its own
//! WAL/snapshot lineage under `store-dir/shard-NN/`; the store root
//! holds the shared `model.meta` fingerprint (checked once, not per
//! shard) and a `shards.meta` layout file so a reopen with the wrong
//! shard count fails fast with
//! [`DurableError::ShardLayoutMismatch`] instead of silently
//! replaying a subset of the lineages.
//!
//! **Merge.** Finalize runs on every shard, then the merged view is
//! rebuilt deterministically: clone the most-advanced shard's
//! pipeline (shared state), drop its ownership filter, and absorb
//! every other shard's candidate entries and mention caches — both
//! disjoint unions by the ownership rule. Output, `/export` bytes and
//! the combined `state_digest` come from that merged pipeline, and
//! under `Unbounded`/`MaxTweets`/`MaxBytes` retention they are
//! bitwise identical to the 1-shard run at any `NGL_THREADS` /
//! `NGL_KERNEL`. (`SpillCold` is the one caveat: spill decisions
//! depend on per-shard resident bytes, so sharded runs spill
//! different victims than a 1-shard run; the merged view absorbs
//! spilled entries read-only so no span is lost, but the digest is
//! not comparable across shard counts.)
//!
//! **Failure containment.** A shard whose WAL rejects a batch that
//! other shards committed is *wedged*: it receives no further
//! operations in-process, so its log stays a strict prefix of the
//! most-advanced shard's and its owned surfaces keep serving
//! stale-but-valid merged state. A reopen heals the lag by replaying
//! the missing `Batch`/`Finalize` records from the most-advanced
//! shard's WAL through the lagging shard's normal durable path
//! (catch-up replication). Admission control gates on the *best*
//! shard mode — one read-only shard never blocks the others — while
//! the worst-of aggregate is surfaced for monitoring.

use std::path::{Path, PathBuf};

use ngl_encoder::ContextualTagger;
use ngl_runtime::{Executor, TaskError};
use ngl_store::{fnv1a64, IoHandle, SharedPageCache, StoreError};
use ngl_text::Span;

use crate::durable::{
    read_model_meta, write_model_meta, DegradationMode, DegradationReport, DurableError,
    DurableGlobalizer, RecoveryReport, StoreStats, WalRecord, MODEL_META_FILE,
};
use crate::pipeline::{BatchOutput, BatchReport, NerGlobalizer};

/// The shard that owns `surface`: FNV-1a over the surface bytes,
/// reduced modulo the shard count. Stable across processes, platforms
/// and shard reopens — it is the routing rule persisted (implicitly)
/// in every shard's candidate base, which is why `shards.meta` pins
/// the count.
pub fn shard_of_surface(surface: &str, shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    (fnv1a64(surface.as_bytes()) % shards as u64) as u32
}

// ---- shard layout file -------------------------------------------------

/// Store-root file pinning the shard count:
/// `magic "NGLH" | version u32 LE | count u32 LE | fnv1a64(header) u64 LE`.
const SHARD_META_FILE: &str = "shards.meta";
const SHARD_META_MAGIC: &[u8; 4] = b"NGLH";
const SHARD_META_VERSION: u32 = 1;
const SHARD_META_LEN: usize = 20;

fn read_shard_meta(path: &Path) -> Result<Option<u32>, DurableError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e).into()),
    };
    if bytes.len() != SHARD_META_LEN || &bytes[0..4] != SHARD_META_MAGIC {
        return Err(DurableError::Corrupt("unreadable shard layout file"));
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[4..8]);
    if u32::from_le_bytes(word) != SHARD_META_VERSION {
        return Err(DurableError::Corrupt("unsupported shard layout version"));
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[12..20]);
    if u64::from_le_bytes(sum) != fnv1a64(&bytes[..12]) {
        return Err(DurableError::Corrupt("shard layout checksum mismatch"));
    }
    word.copy_from_slice(&bytes[8..12]);
    Ok(Some(u32::from_le_bytes(word)))
}

fn write_shard_meta(path: &Path, count: u32) -> Result<(), DurableError> {
    let mut bytes = Vec::with_capacity(SHARD_META_LEN);
    bytes.extend_from_slice(SHARD_META_MAGIC);
    bytes.extend_from_slice(&SHARD_META_VERSION.to_le_bytes());
    bytes.extend_from_slice(&count.to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(&bytes).to_le_bytes());
    std::fs::write(path, bytes).map_err(StoreError::Io)?;
    Ok(())
}

/// `store-dir/shard-NN` for shard `index`.
fn shard_dir(root: &Path, index: usize) -> PathBuf {
    root.join(format!("shard-{index:02}"))
}

// ---- recovery report ---------------------------------------------------

/// What [`ShardedGlobalizer::open`] reconstructed: one
/// [`RecoveryReport`] per shard, how many operations each lagging
/// shard caught up from the donor WAL, and the merged-state digest.
#[derive(Debug, Clone, Default)]
pub struct ShardedRecoveryReport {
    /// Per-shard recovery, in shard order.
    pub shards: Vec<RecoveryReport>,
    /// `Batch`/`Finalize` ops each shard replayed from the
    /// most-advanced shard's WAL to heal a lag (0 = was current).
    pub caught_up_ops: Vec<usize>,
    /// `state_digest` of the merged view after recovery — comparable
    /// to the 1-shard digest under non-spill retention.
    pub combined_digest: u64,
}

// ---- sharded globalizer ------------------------------------------------

/// Hash-partitioned [`DurableGlobalizer`] shards with a deterministic
/// cross-shard merge. See the module docs for the model; the public
/// surface mirrors the single-shard store so callers swap between
/// them mechanically.
pub struct ShardedGlobalizer<T: ContextualTagger> {
    shards: Vec<DurableGlobalizer<T>>,
    /// `wedged[i]`: shard `i` rejected an operation that other shards
    /// committed, so it is frozen (no further ops this process) to
    /// keep its log a strict prefix of the most-advanced shard's.
    wedged: Vec<bool>,
    /// The merged view: shared state from the most-advanced shard
    /// plus the union of every shard's owned candidate entries.
    /// Rebuilt after every successful finalize; serves queries,
    /// exports and the combined digest.
    merged: NerGlobalizer<T>,
    dir: PathBuf,
    exec: Executor,
}

impl<T: ContextualTagger + Clone + Send + Sync> ShardedGlobalizer<T> {
    /// Opens (or creates) a sharded store at `dir`: `shards` clones of
    /// `base`, each with the ownership filter for its index and its
    /// own WAL/snapshot lineage under `dir/shard-NN/`. All shards
    /// share `base`'s executor, so N shards never oversubscribe the
    /// pool. Recovery opens the shards concurrently, catches lagging
    /// shards up from the most-advanced shard's WAL, and rebuilds the
    /// merged view.
    pub fn open<P: AsRef<Path>>(
        base: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
        shards: u32,
    ) -> Result<(Self, ShardedRecoveryReport), DurableError> {
        Self::open_with_fingerprint(base, dir, checkpoint_every, shards, None)
    }

    /// [`Self::open`] with a model-bundle fingerprint, checked once
    /// against the store *root*'s `model.meta` (shard directories
    /// carry no fingerprint of their own).
    pub fn open_with_fingerprint<P: AsRef<Path>>(
        base: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
        shards: u32,
        fingerprint: Option<u64>,
    ) -> Result<(Self, ShardedRecoveryReport), DurableError> {
        let ios = (0..shards).map(|_| IoHandle::real()).collect();
        Self::open_with_ios(base, dir, checkpoint_every, shards, fingerprint, ios)
    }

    /// [`Self::open_with_fingerprint`] over one explicit IO layer per
    /// shard, so chaos plans can fault a single shard while the
    /// others run clean.
    pub fn open_with_ios<P: AsRef<Path>>(
        base: NerGlobalizer<T>,
        dir: P,
        checkpoint_every: usize,
        shards: u32,
        fingerprint: Option<u64>,
        ios: Vec<IoHandle>,
    ) -> Result<(Self, ShardedRecoveryReport), DurableError> {
        assert!(shards >= 1, "shard count must be at least 1");
        assert_eq!(ios.len(), shards as usize, "one IoHandle per shard");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;

        // Root-level metadata first: wrong models or a wrong shard
        // count must fail before any lineage is opened or created.
        if let Some(current) = fingerprint {
            let meta = dir.join(MODEL_META_FILE);
            match read_model_meta(&meta)? {
                Some(stored) if stored != current => {
                    return Err(DurableError::ModelMismatch { stored, current });
                }
                Some(_) => {}
                None => write_model_meta(&meta, current)?,
            }
        }
        let layout = dir.join(SHARD_META_FILE);
        match read_shard_meta(&layout)? {
            Some(stored) if stored != shards => {
                return Err(DurableError::ShardLayoutMismatch { stored, requested: shards });
            }
            Some(_) => {}
            None => write_shard_meta(&layout, shards)?,
        }

        let exec = base.executor().clone();
        let items: Vec<(usize, NerGlobalizer<T>, IoHandle)> = ios
            .into_iter()
            .enumerate()
            .map(|(i, io)| {
                let mut inner = base.clone();
                inner.set_shard_ownership(i as u32, shards);
                (i, inner, io)
            })
            .collect();
        let opened = exec.par_map(items, |_, (i, inner, io)| {
            // Shard fingerprints are `None`: the root already checked.
            DurableGlobalizer::open_with_io(inner, shard_dir(&dir, i), checkpoint_every, None, io)
        });
        let mut shard_stores = Vec::with_capacity(shards as usize);
        let mut report = ShardedRecoveryReport::default();
        for result in opened {
            let (store, shard_report) = result?;
            report.shards.push(shard_report);
            shard_stores.push(store);
        }

        report.caught_up_ops = Self::catch_up_lagging(&mut shard_stores)?;
        let merged = Self::rebuild_merged(&mut shard_stores);
        report.combined_digest = merged.state_digest();
        let wedged = vec![false; shard_stores.len()];
        Ok((Self { shards: shard_stores, wedged, merged, dir, exec }, report))
    }

    /// Replays `Batch`/`Finalize` records from the most-advanced
    /// shard's WAL into every lagging shard, through the lagging
    /// shard's normal durable path (so the caught-up ops are
    /// re-committed to its own lineage). Audit records (`Evict`,
    /// `Spill`, `Snapshot`) are skipped — shards re-derive those —
    /// and donor *snapshots* are never applied (they hold the donor's
    /// ownership, not the lagging shard's). Errors if the donor has
    /// compacted past a lagging shard's position.
    fn catch_up_lagging(
        shards: &mut [DurableGlobalizer<T>],
    ) -> Result<Vec<usize>, DurableError> {
        let mut caught_up = vec![0usize; shards.len()];
        let target = match shards.iter().map(|s| s.op_seq()).max() {
            Some(t) => t,
            None => return Ok(caught_up),
        };
        if shards.iter().all(|s| s.op_seq() == target) {
            return Ok(caught_up);
        }
        let donor_ix = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.op_seq())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let records = shards[donor_ix].logged_records()?;
        for (i, ops) in caught_up.iter_mut().enumerate() {
            if i == donor_ix || shards[i].op_seq() == target {
                continue;
            }
            *ops = Self::catch_up_one(&mut shards[i], &records, target)?;
        }
        Ok(caught_up)
    }

    fn catch_up_one(
        lagging: &mut DurableGlobalizer<T>,
        donor_records: &[WalRecord],
        target: u64,
    ) -> Result<usize, DurableError> {
        let mut expected = lagging.op_seq() + 1;
        let mut applied = 0usize;
        for record in donor_records {
            match record {
                WalRecord::Batch { op_seq, ids, tweets } if *op_seq >= expected => {
                    if *op_seq != expected {
                        return Err(DurableError::Corrupt(
                            "shard lag exceeds the donor's compaction horizon",
                        ));
                    }
                    match ids {
                        Some(ids) => {
                            let batch = ids.iter().copied().zip(tweets.iter().cloned()).collect();
                            lagging.process_batch_with_ids(batch)?;
                        }
                        None => {
                            lagging.process_batch(tweets.clone())?;
                        }
                    }
                    expected += 1;
                    applied += 1;
                }
                WalRecord::Finalize { op_seq, .. } if *op_seq >= expected => {
                    if *op_seq != expected {
                        return Err(DurableError::Corrupt(
                            "shard lag exceeds the donor's compaction horizon",
                        ));
                    }
                    lagging.finalize()?;
                    expected += 1;
                    applied += 1;
                }
                _ => {}
            }
        }
        if lagging.op_seq() != target {
            return Err(DurableError::Corrupt(
                "shard lag exceeds the donor's compaction horizon",
            ));
        }
        Ok(applied)
    }

    /// Rebuilds the merged view: clone the most-advanced shard's
    /// pipeline (its shared state is a superset of every wedged
    /// shard's), drop the ownership filter, absorb every other
    /// shard's owned entries, then absorb any spilled entries
    /// read-only so `SpillCold` runs still emit and answer queries
    /// over cold surfaces. A spilled entry whose extent fails to read
    /// is skipped — same restart-empty semantics as rehydration, and
    /// the owner shard's ladder already recorded the fault.
    fn rebuild_merged(shards: &mut [DurableGlobalizer<T>]) -> NerGlobalizer<T> {
        let base_ix = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.op_seq())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut merged = shards[base_ix].inner().clone();
        merged.clear_shard_ownership();
        for (i, shard) in shards.iter().enumerate() {
            if i != base_ix {
                merged.absorb_owned_state(shard.inner());
            }
        }
        for shard in shards.iter_mut() {
            let Some(pool) = shard.spill_pool_mut() else { continue };
            for surface in pool.surfaces() {
                if let Ok(Some(entry)) = pool.peek(&surface) {
                    merged.absorb_spilled_entry(surface, entry);
                }
            }
        }
        merged
    }

    /// Runs `op` on every non-wedged shard concurrently (on the shared
    /// pool; shards nest their own `par_map` inside, which the
    /// atomic-counter pull loop makes deadlock-free) and returns
    /// `(shard index, result)` in shard order.
    fn broadcast<R, F>(&mut self, op: F) -> Vec<(usize, Result<R, DurableError>)>
    where
        R: Send,
        F: Fn(&mut DurableGlobalizer<T>) -> Result<R, DurableError> + Sync,
    {
        let wedged = &self.wedged;
        let items: Vec<(usize, &mut DurableGlobalizer<T>)> = self
            .shards
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| !wedged[*i])
            .collect();
        self.exec.par_map(items, |_, (ix, shard)| (ix, op(shard)))
    }

    /// Resolves a broadcast: shards that rejected an operation the
    /// others committed are wedged (frozen until a reopen heals
    /// them); the lowest-index success is returned, or the first
    /// error when every shard rejected (then nothing committed
    /// anywhere and the operation may simply be retried).
    fn settle<R>(
        &mut self,
        results: Vec<(usize, Result<R, DurableError>)>,
        wedge_failures: bool,
    ) -> Result<R, DurableError> {
        let mut first_ok = None;
        let mut first_err = None;
        let any_ok = results.iter().any(|(_, r)| r.is_ok());
        for (ix, result) in results {
            match result {
                Ok(out) => {
                    if first_ok.is_none() {
                        first_ok = Some(out);
                    }
                }
                Err(e) => {
                    if wedge_failures && any_ok {
                        self.wedged[ix] = true;
                    }
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match (first_ok, first_err) {
            (Some(out), _) => Ok(out),
            (None, Some(e)) => Err(e),
            (None, None) => Err(DurableError::Corrupt(
                "every shard is wedged — reopen the store to catch up from the most advanced WAL",
            )),
        }
    }

    /// Broadcasts one batch to every non-wedged shard (replicated
    /// ingest; each shard admits only its owned surfaces). Returns
    /// the lowest-index shard's output — local spans and shared-state
    /// effects are identical on every shard; the report's
    /// mention-admission counters reflect that shard's owned subset.
    pub fn process_batch(
        &mut self,
        batch: Vec<Vec<String>>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        let results = self.broadcast(|shard| shard.process_batch(batch.clone()));
        self.settle(results, true)
    }

    /// [`Self::process_batch`] for id-carrying streams.
    pub fn process_batch_with_ids(
        &mut self,
        batch: Vec<(u64, Vec<String>)>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        let results = self.broadcast(|shard| shard.process_batch_with_ids(batch.clone()));
        self.settle(results, true)
    }

    /// Finalizes every non-wedged shard concurrently, rebuilds the
    /// merged view, and emits the merged output — bitwise identical
    /// to the 1-shard finalize under non-spill retention.
    ///
    /// A shard whose finalize errored has still *applied* the stages
    /// (state and `op_seq` advanced; only the WAL records are stashed
    /// pending), so the logical streams stay aligned and the shard is
    /// not wedged. The error is propagated — the spans are not
    /// acknowledged — and a retry flushes exactly the shards with
    /// stashed records, without re-running anything elsewhere.
    pub fn finalize(&mut self) -> Result<Vec<Vec<Span>>, DurableError> {
        let retry = self.shards.iter().any(|s| s.has_pending_finalize());
        let wedged = &self.wedged;
        let items: Vec<(usize, &mut DurableGlobalizer<T>)> = self
            .shards
            .iter_mut()
            .enumerate()
            .filter(|(i, s)| !wedged[*i] && (!retry || s.has_pending_finalize()))
            .collect();
        let results = self.exec.par_map(items, |_, (ix, shard)| (ix, shard.finalize()));
        for (_, result) in &results {
            if let Err(e) = result {
                return Err(clone_error(e));
            }
        }
        self.merged = Self::rebuild_merged(&mut self.shards);
        Ok(self.merged.emit_finalized())
    }

    /// The merged view: shared state plus the union of every shard's
    /// owned candidate entries. Queries (`tag_query`,
    /// `surface_summary`), `export_state_bytes` and `state_digest`
    /// on it match the 1-shard pipeline. Refreshed by every
    /// successful [`Self::finalize`] (and by open).
    pub fn merged(&self) -> &NerGlobalizer<T> {
        &self.merged
    }

    /// `state_digest` of the merged view.
    pub fn combined_digest(&self) -> u64 {
        self.merged.state_digest()
    }

    /// Per-shard storage-health reports, in shard order.
    pub fn degradations(&self) -> Vec<DegradationReport> {
        self.shards.iter().map(|s| s.degradation()).collect()
    }

    /// Per-shard effective ladder rungs: a wedged shard floors at
    /// [`DegradationMode::ReadOnly`] — it refuses mutations by
    /// construction even when its own ladder looks milder.
    pub fn shard_modes(&self) -> Vec<DegradationMode> {
        self.shards
            .iter()
            .zip(&self.wedged)
            .map(|(s, &w)| {
                let mode = s.degradation().mode();
                if w {
                    mode.max(DegradationMode::ReadOnly)
                } else {
                    mode
                }
            })
            .collect()
    }

    /// The *best* shard mode — the admission gate. One read-only
    /// shard must not block the others: its owned surfaces serve
    /// stale merged state while healthy shards keep admitting.
    pub fn admission_mode(&self) -> DegradationMode {
        self.shard_modes().into_iter().min().unwrap_or(DegradationMode::ReadOnly)
    }

    /// The *worst* shard mode — the monitoring aggregate surfaced in
    /// serve health/stats.
    pub fn worst_mode(&self) -> DegradationMode {
        self.shard_modes().into_iter().max().unwrap_or(DegradationMode::Healthy)
    }

    /// Whether shard `index` is frozen this process (see the module
    /// docs' failure-containment section).
    pub fn is_wedged(&self, index: usize) -> bool {
        self.wedged.get(index).copied().unwrap_or(false)
    }

    /// Byte accounting summed across shards. Byte and snapshot
    /// counters add real per-lineage disk cost; `batches`/`finalizes`
    /// are the *logical* op counts (max over shards), since
    /// replicated ingest logs each op once per shard.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in self.shards.iter().map(|s| s.stats()) {
            total.delta_bytes_last += s.delta_bytes_last;
            total.wal_bytes_total += s.wal_bytes_total;
            total.snapshot_bytes_last += s.snapshot_bytes_last;
            total.snapshots += s.snapshots;
            total.batches = total.batches.max(s.batches);
            total.finalizes = total.finalizes.max(s.finalizes);
        }
        total
    }

    /// Process-wide spill-page-cache `(hits, misses)` — all shards
    /// share the one [`SharedPageCache`] budget.
    pub fn page_cache_stats(&self) -> (u64, u64) {
        SharedPageCache::global().stats()
    }

    /// The shard that owns `surface` under this store's layout.
    pub fn shard_for(&self, surface: &str) -> u32 {
        shard_of_surface(surface, self.shard_count())
    }

    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shards, in index order (read-only; mutating one directly
    /// would desynchronize the replicated streams).
    pub fn shards(&self) -> &[DurableGlobalizer<T>] {
        &self.shards
    }

    /// The store root (shard lineages live in `shard-NN/` under it).
    pub fn store_dir(&self) -> &Path {
        &self.dir
    }

    /// The most-advanced shard's operation counter.
    pub fn op_seq(&self) -> u64 {
        self.shards.iter().map(|s| s.op_seq()).max().unwrap_or(0)
    }

    /// Whether any shard holds finalize records that are not yet
    /// durable (retry [`Self::finalize`] to flush exactly those).
    pub fn has_pending_finalize(&self) -> bool {
        self.shards.iter().any(|s| s.has_pending_finalize())
    }

    /// Drains fault diagnostics from every shard and the merged view.
    pub fn take_finalize_errors(&mut self) -> Vec<TaskError> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.append(&mut shard.take_finalize_errors());
        }
        out.append(&mut self.merged.take_finalize_errors());
        out
    }
}

/// [`DurableError`] carries non-`Clone` payloads (`std::io::Error`),
/// so propagating one error out of a broadcast while keeping the
/// per-shard results reconstructs it through its `Display` form.
fn clone_error(e: &DurableError) -> DurableError {
    match e {
        DurableError::DigestMismatch { op_seq, logged, replayed } => {
            DurableError::DigestMismatch { op_seq: *op_seq, logged: *logged, replayed: *replayed }
        }
        DurableError::ModelMismatch { stored, current } => {
            DurableError::ModelMismatch { stored: *stored, current: *current }
        }
        DurableError::ShardLayoutMismatch { stored, requested } => {
            DurableError::ShardLayoutMismatch { stored: *stored, requested: *requested }
        }
        DurableError::Corrupt(msg) => DurableError::Corrupt(msg),
        other => DurableError::Store(StoreError::Io(std::io::Error::other(other.to_string()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ngl-shard-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn shard_of_surface_is_stable_and_in_range() {
        for count in [1u32, 2, 3, 4, 7] {
            for surface in ["beshear", "Beshear", "covid test", "", "ünï©ode"] {
                let s = shard_of_surface(surface, count);
                assert!(s < count);
                assert_eq!(s, shard_of_surface(surface, count), "stable");
            }
        }
        assert_eq!(shard_of_surface("anything", 1), 0);
        // The documented rule, verbatim.
        assert_eq!(shard_of_surface("beshear", 4), (fnv1a64(b"beshear") % 4) as u32);
    }

    #[test]
    fn shard_meta_roundtrips() {
        let dir = tmp("meta-roundtrip");
        let path = dir.join(SHARD_META_FILE);
        assert!(read_shard_meta(&path).expect("missing file is None").is_none());
        write_shard_meta(&path, 4).expect("write");
        assert_eq!(read_shard_meta(&path).expect("read"), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_meta_rejects_corruption() {
        let dir = tmp("meta-corrupt");
        let path = dir.join(SHARD_META_FILE);
        write_shard_meta(&path, 2).expect("write");
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes[8] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(read_shard_meta(&path), Err(DurableError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
