//! Learned attention pooling (Eqs. 6–8).
//!
//! Aggregates the local embeddings of all mentions in a candidate
//! cluster into one **global candidate embedding**:
//!
//! ```text
//! a_j = W_aᵀ local_j + b_a          (Eq. 6)
//! w_j = softmax(a)_j                (Eq. 7)
//! global = Σ_j w_j · local_j        (Eq. 8)
//! ```
//!
//! The weights are trained end-to-end with the Entity Classifier head
//! (§VI "the learned pooling operation and the classification network
//! are trained end-to-end").

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ngl_nn::loss::softmax_in_place;
use ngl_nn::Matrix;

/// The pooling module with its trainable scorer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttentivePooling {
    w_a: Vec<f32>,
    b_a: f32,
    g_w: Vec<f32>,
    g_b: f32,
}

/// Cache from a pooling forward pass, needed for backward.
#[derive(Debug, Clone)]
pub struct PoolingCache {
    weights: Vec<f32>,
}

impl AttentivePooling {
    /// Fresh pooling over `dim`-dimensional embeddings.
    pub fn new(seed: u64, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (3.0f32 / dim as f32).sqrt();
        Self {
            w_a: (0..dim).map(|_| rng.gen_range(-limit..limit)).collect(),
            b_a: 0.0,
            g_w: vec![0.0; dim],
            g_b: 0.0,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.w_a.len()
    }

    /// Pools a non-empty set of local embeddings (`n × d`) into the
    /// global candidate embedding, returning the cache for backward.
    ///
    /// # Panics
    /// Panics on an empty set — a candidate cluster always has at least
    /// one mention.
    pub fn forward(&self, locals: &Matrix) -> (Vec<f32>, PoolingCache) {
        let n = locals.rows();
        assert!(n > 0, "cannot pool an empty cluster");
        assert_eq!(locals.cols(), self.w_a.len(), "dimension mismatch");
        let mut scores: Vec<f32> = (0..n)
            .map(|j| ngl_nn::linalg::dot(locals.row(j), &self.w_a) + self.b_a)
            .collect();
        softmax_in_place(&mut scores);
        let mut global = vec![0.0f32; locals.cols()];
        for j in 0..n {
            ngl_nn::kernels::axpy(&mut global, scores[j], locals.row(j));
        }
        (global, PoolingCache { weights: scores })
    }

    /// Attention weights only (diagnostics / interpretability).
    pub fn attention_weights(&self, locals: &Matrix) -> Vec<f32> {
        self.forward(locals).1.weights
    }

    /// Backward pass: accumulates gradients for `w_a`/`b_a` given the
    /// upstream gradient on the pooled output. Input gradients are not
    /// produced — the phrase embedder is frozen at this stage.
    pub fn backward(&mut self, locals: &Matrix, cache: &PoolingCache, d_global: &[f32]) {
        let n = locals.rows();
        // g_j = ⟨d_global, local_j⟩ ; softmax backward gives
        // da_j = w_j (g_j − Σ_k w_k g_k).
        let g: Vec<f32> = (0..n)
            .map(|j| ngl_nn::linalg::dot(d_global, locals.row(j)))
            .collect();
        let mean: f32 = ngl_nn::linalg::dot(&cache.weights, &g);
        for j in 0..n {
            let da = cache.weights[j] * (g[j] - mean);
            ngl_nn::kernels::axpy(&mut self.g_w, da, locals.row(j));
            self.g_b += da;
        }
    }

    /// Serializes the pooling parameters.
    pub fn to_bytes(&self) -> bytes::Bytes {
        use ngl_nn::codec::{put_f32, put_f32_slice};
        let mut buf = bytes::BytesMut::new();
        put_f32_slice(&mut buf, &self.w_a);
        put_f32(&mut buf, self.b_a);
        buf.freeze()
    }

    /// Deserializes pooling parameters written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &mut bytes::Bytes) -> Result<Self, ngl_nn::CodecError> {
        use ngl_nn::codec::{get_f32, get_f32_vec};
        let w_a = get_f32_vec(bytes)?;
        let b_a = get_f32(bytes)?;
        let dim = w_a.len();
        Ok(Self { w_a, b_a, g_w: vec![0.0; dim], g_b: 0.0 })
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.g_w.iter_mut().for_each(|g| *g = 0.0);
        self.g_b = 0.0;
    }

    /// Parameter/gradient views for the optimizer. The bias is folded in
    /// behind the weights.
    pub fn params_and_grads(&mut self) -> (&mut [f32], &[f32], &mut f32, f32) {
        (&mut self.w_a, &self.g_w, &mut self.b_a, self.g_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_pool_is_convex() {
        let pool = AttentivePooling::new(3, 4);
        let locals = Matrix::from_vec(
            3,
            4,
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        );
        let (global, cache) = pool.forward(&locals);
        let s: f32 = cache.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        // Convex combination of one-hot rows: components equal weights.
        for (c, &w) in cache.weights.iter().enumerate() {
            assert!((global[c] - w).abs() < 1e-5);
        }
        assert!(global[3].abs() < 1e-6);
    }

    #[test]
    fn singleton_cluster_pools_to_itself() {
        let pool = AttentivePooling::new(1, 3);
        let locals = Matrix::from_vec(1, 3, vec![0.3, -0.7, 0.2]);
        let (global, cache) = pool.forward(&locals);
        assert_eq!(global, vec![0.3, -0.7, 0.2]);
        assert!((cache.weights[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let dim = 3;
        let locals = Matrix::from_vec(
            2,
            dim,
            vec![0.5, -0.2, 0.8, -0.3, 0.9, 0.1],
        );
        // Loss = ⟨global, t⟩ for a fixed direction t.
        let t = [1.0f32, 2.0, -1.5];
        let mut pool = AttentivePooling::new(5, dim);
        let (_, cache) = pool.forward(&locals);
        pool.zero_grad();
        pool.backward(&locals, &cache, &t);
        let analytic_w = pool.g_w.clone();
        let analytic_b = pool.g_b;

        let loss = |p: &AttentivePooling| -> f32 {
            let (g, _) = p.forward(&locals);
            ngl_nn::linalg::dot(&g, &t)
        };
        let h = 1e-3f32;
        for i in 0..dim {
            let mut pp = pool.clone();
            pp.w_a[i] += h;
            let mut pm = pool.clone();
            pm.w_a[i] -= h;
            let fd = (loss(&pp) - loss(&pm)) / (2.0 * h);
            assert!(
                (fd - analytic_w[i]).abs() < 1e-2,
                "w grad {i}: analytic {} vs fd {fd}",
                analytic_w[i]
            );
        }
        let mut pp = pool.clone();
        pp.b_a += h;
        let mut pm = pool.clone();
        pm.b_a -= h;
        let fd = (loss(&pp) - loss(&pm)) / (2.0 * h);
        // b shifts all scores equally ⇒ softmax unchanged ⇒ gradient ~0.
        assert!(fd.abs() < 1e-2);
        assert!(analytic_b.abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "cannot pool an empty cluster")]
    fn empty_cluster_panics() {
        let pool = AttentivePooling::new(0, 4);
        let locals = Matrix::zeros(0, 4);
        let _ = pool.forward(&locals);
    }
}
