//! The §VI-C error taxonomy.
//!
//! The paper quantifies two structural error sources of the Globalizer:
//!
//! 1. entities whose *every* mention was missed by Local NER never enter
//!    the CTrie, so Global NER cannot recover them (26.35% of mentions
//!    in the paper's streams);
//! 2. candidates mistyped by the Entity Classifier drag all of their
//!    cluster's mentions with them (9.57% of mentions in the paper).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use ngl_corpus::{EntityId, GoldMention};
use ngl_text::Span;

/// Loss attributable to entities Local NER never saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissStats {
    /// Unique gold entities in the corpus.
    pub total_entities: usize,
    /// Gold mentions in the corpus.
    pub total_mentions: usize,
    /// Entities with zero overlapping local detections.
    pub entities_fully_missed: usize,
    /// Mentions belonging to fully missed entities.
    pub mentions_lost: usize,
}

impl MissStats {
    /// Fraction of all mentions lost to fully missed entities.
    pub fn mention_loss_rate(&self) -> f64 {
        if self.total_mentions == 0 {
            0.0
        } else {
            self.mentions_lost as f64 / self.total_mentions as f64
        }
    }
}

/// Computes [`MissStats`]: an entity counts as *seen* when any local
/// prediction overlaps any of its gold mentions (even a partial overlap
/// seeds a surface form into the CTrie).
pub fn fully_missed_entities(
    gold: &[Vec<GoldMention>],
    local_pred: &[Vec<Span>],
) -> MissStats {
    assert_eq!(gold.len(), local_pred.len(), "sentence count mismatch");
    let mut mentions_of: HashMap<EntityId, usize> = HashMap::new();
    let mut seen: HashSet<EntityId> = HashSet::new();
    for (g_sent, p_sent) in gold.iter().zip(local_pred) {
        for g in g_sent {
            *mentions_of.entry(g.entity).or_insert(0) += 1;
            if p_sent.iter().any(|p| p.overlaps(&g.span)) {
                seen.insert(g.entity);
            }
        }
    }
    let total_entities = mentions_of.len();
    let total_mentions: usize = mentions_of.values().sum();
    let mut entities_fully_missed = 0;
    let mut mentions_lost = 0;
    for (ent, &count) in &mentions_of {
        if !seen.contains(ent) {
            entities_fully_missed += 1;
            mentions_lost += count;
        }
    }
    MissStats { total_entities, total_mentions, entities_fully_missed, mentions_lost }
}

/// Mention-level error breakdown of a final prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ErrorBreakdown {
    /// Gold mentions predicted with exact boundaries and type.
    pub correct: usize,
    /// Gold mentions with exact boundaries but the wrong type.
    pub mistyped: usize,
    /// Gold mentions covered only partially (overlap, boundary error).
    pub partial: usize,
    /// Gold mentions with no overlapping prediction at all.
    pub missed: usize,
    /// Predictions overlapping no gold mention (spurious).
    pub spurious: usize,
}

impl ErrorBreakdown {
    /// Total gold mentions accounted for.
    pub fn total_gold(&self) -> usize {
        self.correct + self.mistyped + self.partial + self.missed
    }

    /// Fraction of gold mentions lost to mistyping.
    pub fn mistype_rate(&self) -> f64 {
        let t = self.total_gold();
        if t == 0 { 0.0 } else { self.mistyped as f64 / t as f64 }
    }
}

/// Classifies every gold mention against the predictions.
pub fn mistype_stats(gold: &[Vec<Span>], pred: &[Vec<Span>]) -> ErrorBreakdown {
    assert_eq!(gold.len(), pred.len(), "sentence count mismatch");
    let mut out = ErrorBreakdown::default();
    for (g_sent, p_sent) in gold.iter().zip(pred) {
        let mut pred_matched = vec![false; p_sent.len()];
        for g in g_sent {
            if let Some(pi) = p_sent.iter().position(|p| p.matches(g)) {
                pred_matched[pi] = true;
                out.correct += 1;
            } else if let Some(pi) = p_sent.iter().position(|p| p.same_boundaries(g)) {
                pred_matched[pi] = true;
                out.mistyped += 1;
            } else if let Some(pi) = p_sent.iter().position(|p| p.overlaps(g)) {
                pred_matched[pi] = true;
                out.partial += 1;
            } else {
                out.missed += 1;
            }
        }
        out.spurious += pred_matched.iter().filter(|m| !**m).count();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_text::EntityType::*;

    fn gm(start: usize, end: usize, ty: ngl_text::EntityType, ent: u32) -> GoldMention {
        GoldMention { span: Span::new(start, end, ty), entity: EntityId(ent) }
    }

    #[test]
    fn fully_missed_entity_counts_all_its_mentions() {
        let gold = vec![
            vec![gm(0, 1, Person, 1), gm(2, 3, Location, 2)],
            vec![gm(0, 1, Person, 1)],
        ];
        // Local finds the person once (partial overlap counts) but never
        // the location.
        let pred = vec![vec![Span::new(0, 1, Person)], vec![]];
        let stats = fully_missed_entities(&gold, &pred);
        assert_eq!(stats.total_entities, 2);
        assert_eq!(stats.total_mentions, 3);
        assert_eq!(stats.entities_fully_missed, 1);
        assert_eq!(stats.mentions_lost, 1);
        assert!((stats.mention_loss_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_counts_as_seen() {
        let gold = vec![vec![gm(0, 2, Person, 7)]];
        let pred = vec![vec![Span::new(1, 2, Location)]]; // wrong type, partial
        let stats = fully_missed_entities(&gold, &pred);
        assert_eq!(stats.entities_fully_missed, 0);
    }

    #[test]
    fn breakdown_distinguishes_error_kinds() {
        let gold = vec![vec![
            Span::new(0, 1, Person),        // correct
            Span::new(2, 4, Organization),  // mistyped
            Span::new(5, 7, Location),      // partial
            Span::new(8, 9, Miscellaneous), // missed
        ]];
        let pred = vec![vec![
            Span::new(0, 1, Person),
            Span::new(2, 4, Person),
            Span::new(5, 6, Location),
            Span::new(10, 11, Person), // spurious
        ]];
        let b = mistype_stats(&gold, &pred);
        assert_eq!(b.correct, 1);
        assert_eq!(b.mistyped, 1);
        assert_eq!(b.partial, 1);
        assert_eq!(b.missed, 1);
        assert_eq!(b.spurious, 1);
        assert_eq!(b.total_gold(), 4);
        assert!((b.mistype_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let stats = fully_missed_entities(&[], &[]);
        assert_eq!(stats.total_entities, 0);
        assert_eq!(stats.mention_loss_rate(), 0.0);
        let b = mistype_stats(&[], &[]);
        assert_eq!(b.total_gold(), 0);
    }
}
