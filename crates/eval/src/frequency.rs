//! Figure 4: detection recall as a function of entity mention frequency.
//!
//! The paper groups annotated entities into bins of width 5 by how often
//! they are mentioned in the stream, then tracks the recall of correctly
//! labelling them — low-frequency (long-tail) entities recall ~47%,
//! frequent entities approach 100%.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ngl_corpus::{EntityId, GoldMention};
use ngl_text::Span;

/// One frequency bin of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyBin {
    /// Inclusive lower edge of the bin (mention count).
    pub lo: usize,
    /// Inclusive upper edge.
    pub hi: usize,
    /// Unique entities falling in the bin.
    pub entities: usize,
    /// Gold mentions of those entities.
    pub mentions: usize,
    /// Correctly recovered mentions (exact span + type match).
    pub recovered: usize,
}

impl FrequencyBin {
    /// Mention-level recall inside the bin.
    pub fn recall(&self) -> f64 {
        if self.mentions == 0 {
            0.0
        } else {
            self.recovered as f64 / self.mentions as f64
        }
    }
}

/// Computes recall per mention-frequency bin (`bin_width` = 5 in the
/// paper). `gold`/`pred` are sentence-aligned.
pub fn recall_by_frequency(
    gold: &[Vec<GoldMention>],
    pred: &[Vec<Span>],
    bin_width: usize,
) -> Vec<FrequencyBin> {
    assert!(bin_width > 0, "bin width must be positive");
    assert_eq!(gold.len(), pred.len(), "sentence count mismatch");

    // Pass 1: frequency per entity.
    let mut freq: HashMap<EntityId, usize> = HashMap::new();
    for sent in gold {
        for g in sent {
            *freq.entry(g.entity).or_insert(0) += 1;
        }
    }

    // Pass 2: recovered mentions per entity.
    let mut recovered: HashMap<EntityId, usize> = HashMap::new();
    for (g_sent, p_sent) in gold.iter().zip(pred) {
        for g in g_sent {
            if p_sent.iter().any(|p| p.matches(&g.span)) {
                *recovered.entry(g.entity).or_insert(0) += 1;
            }
        }
    }

    // Pass 3: binning.
    let max_freq = freq.values().copied().max().unwrap_or(0);
    if max_freq == 0 {
        return Vec::new();
    }
    let n_bins = max_freq.div_ceil(bin_width);
    let mut bins: Vec<FrequencyBin> = (0..n_bins)
        .map(|b| FrequencyBin {
            lo: b * bin_width + 1,
            hi: (b + 1) * bin_width,
            entities: 0,
            mentions: 0,
            recovered: 0,
        })
        .collect();
    for (ent, &f) in &freq {
        let b = (f - 1) / bin_width;
        bins[b].entities += 1;
        bins[b].mentions += f;
        bins[b].recovered += recovered.get(ent).copied().unwrap_or(0);
    }
    bins.retain(|b| b.entities > 0);
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_text::EntityType::*;

    fn gm(start: usize, ty: ngl_text::EntityType, ent: u32) -> GoldMention {
        GoldMention { span: Span::new(start, start + 1, ty), entity: EntityId(ent) }
    }

    #[test]
    fn bins_partition_by_frequency() {
        // Entity 1: 2 mentions (bin 1-5). Entity 2: 7 mentions (bin 6-10).
        let mut gold = vec![vec![gm(0, Person, 1)], vec![gm(0, Person, 1)]];
        for _ in 0..7 {
            gold.push(vec![gm(0, Location, 2)]);
        }
        let pred: Vec<Vec<Span>> = gold
            .iter()
            .map(|g| g.iter().map(|m| m.span).collect())
            .collect();
        let bins = recall_by_frequency(&gold, &pred, 5);
        assert_eq!(bins.len(), 2);
        assert_eq!((bins[0].lo, bins[0].hi), (1, 5));
        assert_eq!(bins[0].entities, 1);
        assert_eq!(bins[0].mentions, 2);
        assert_eq!((bins[1].lo, bins[1].hi), (6, 10));
        assert_eq!(bins[1].mentions, 7);
        assert!((bins[0].recall() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recall_reflects_missed_mentions() {
        let gold = vec![vec![gm(0, Person, 1)], vec![gm(0, Person, 1)]];
        let pred = vec![vec![Span::new(0, 1, Person)], vec![]];
        let bins = recall_by_frequency(&gold, &pred, 5);
        assert_eq!(bins.len(), 1);
        assert!((bins[0].recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wrong_type_is_not_recovered() {
        let gold = vec![vec![gm(0, Miscellaneous, 3)]];
        let pred = vec![vec![Span::new(0, 1, Person)]];
        let bins = recall_by_frequency(&gold, &pred, 5);
        assert_eq!(bins[0].recovered, 0);
    }

    #[test]
    fn empty_gold_yields_no_bins() {
        assert!(recall_by_frequency(&[vec![]], &[vec![]], 5).is_empty());
    }

    #[test]
    fn empty_bins_are_dropped() {
        // One entity with 11 mentions: bins 1-5 and 6-10 are empty.
        let gold: Vec<Vec<GoldMention>> =
            (0..11).map(|_| vec![gm(0, Person, 9)]).collect();
        let pred: Vec<Vec<Span>> = gold
            .iter()
            .map(|g| g.iter().map(|m| m.span).collect())
            .collect();
        let bins = recall_by_frequency(&gold, &pred, 5);
        assert_eq!(bins.len(), 1);
        assert_eq!((bins[0].lo, bins[0].hi), (11, 15));
    }
}
