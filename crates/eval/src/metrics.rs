//! Span-level NER scoring.
//!
//! A prediction counts as correct only when both the boundaries and the
//! type match a gold mention exactly (§VI: "a correct NER detection
//! requires both EMD and Entity Typing to be handled correctly"). The
//! EMD-only variant relaxes the type requirement and is used for the
//! §VI-D EMD-gain analysis.

use serde::{Deserialize, Serialize};

use ngl_text::{EntityType, Span};

/// Precision/recall/F1 with raw counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TypeScores {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl TypeScores {
    /// Precision `tp/(tp+fp)` (1 when nothing was predicted and nothing
    /// was expected, 0 when predictions exist but none are right).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            if self.fn_ == 0 { 1.0 } else { 0.0 }
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp/(tp+fn)`.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            if self.fp == 0 { 1.0 } else { 0.0 }
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) }
    }

    /// Accumulates another score's counts.
    pub fn add(&mut self, other: &TypeScores) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// Full NER evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NerScores {
    /// Per-type scores in [`EntityType::ALL`] order.
    pub per_type: [TypeScores; EntityType::COUNT],
}

impl NerScores {
    /// Scores of one type.
    pub fn of(&self, ty: EntityType) -> &TypeScores {
        &self.per_type[ty.index()]
    }

    /// Macro-F1: unweighted mean of the four per-type F1 scores — the
    /// paper's headline metric.
    pub fn macro_f1(&self) -> f64 {
        self.per_type.iter().map(TypeScores::f1).sum::<f64>() / EntityType::COUNT as f64
    }

    /// Micro-F1 over pooled counts (reported for completeness).
    pub fn micro_f1(&self) -> f64 {
        let mut total = TypeScores::default();
        for t in &self.per_type {
            total.add(t);
        }
        total.f1()
    }
}

/// Evaluates predictions against gold, sentence-aligned: `gold[i]` and
/// `pred[i]` are the mention spans of sentence `i`.
///
/// ```
/// use ngl_eval::evaluate;
/// use ngl_text::{EntityType, Span};
///
/// let gold = vec![vec![Span::new(0, 1, EntityType::Location)]];
/// let pred = vec![vec![Span::new(0, 1, EntityType::Person)]]; // mistyped
/// let scores = evaluate(&gold, &pred);
/// assert_eq!(scores.of(EntityType::Location).recall(), 0.0);
/// assert_eq!(scores.of(EntityType::Person).precision(), 0.0);
/// ```
///
/// # Panics
/// Panics when the two slices have different lengths.
pub fn evaluate(gold: &[Vec<Span>], pred: &[Vec<Span>]) -> NerScores {
    assert_eq!(gold.len(), pred.len(), "sentence count mismatch");
    let mut per_type = [TypeScores::default(); EntityType::COUNT];
    for (g_sent, p_sent) in gold.iter().zip(pred) {
        let mut gold_used = vec![false; g_sent.len()];
        for p in p_sent {
            let hit = g_sent
                .iter()
                .enumerate()
                .find(|(gi, g)| !gold_used[*gi] && g.matches(p));
            match hit {
                Some((gi, _)) => {
                    gold_used[gi] = true;
                    per_type[p.ty.index()].tp += 1;
                }
                None => per_type[p.ty.index()].fp += 1,
            }
        }
        for (gi, g) in g_sent.iter().enumerate() {
            if !gold_used[gi] {
                per_type[g.ty.index()].fn_ += 1;
            }
        }
    }
    NerScores { per_type }
}

/// Boundary-only (EMD) evaluation: a prediction is correct when its
/// token boundaries match a gold mention, regardless of type.
pub fn evaluate_emd(gold: &[Vec<Span>], pred: &[Vec<Span>]) -> TypeScores {
    assert_eq!(gold.len(), pred.len(), "sentence count mismatch");
    let mut s = TypeScores::default();
    for (g_sent, p_sent) in gold.iter().zip(pred) {
        let mut gold_used = vec![false; g_sent.len()];
        for p in p_sent {
            let hit = g_sent
                .iter()
                .enumerate()
                .find(|(gi, g)| !gold_used[*gi] && g.same_boundaries(p));
            match hit {
                Some((gi, _)) => {
                    gold_used[gi] = true;
                    s.tp += 1;
                }
                None => s.fp += 1,
            }
        }
        s.fn_ += gold_used.iter().filter(|u| !**u).count();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_text::EntityType::*;

    fn s(start: usize, end: usize, ty: EntityType) -> Span {
        Span::new(start, end, ty)
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let gold = vec![vec![s(0, 2, Person), s(3, 4, Location)]];
        let scores = evaluate(&gold, &gold.clone());
        assert_eq!(scores.of(Person).f1(), 1.0);
        assert_eq!(scores.of(Location).f1(), 1.0);
        assert_eq!(scores.macro_f1(), 1.0);
    }

    #[test]
    fn wrong_type_is_fp_for_pred_and_fn_for_gold() {
        let gold = vec![vec![s(0, 1, Miscellaneous)]];
        let pred = vec![vec![s(0, 1, Person)]];
        let scores = evaluate(&gold, &pred);
        assert_eq!(scores.of(Person).fp, 1);
        assert_eq!(scores.of(Miscellaneous).fn_, 1);
        assert_eq!(scores.of(Person).tp, 0);
        // …but EMD-only counts it correct.
        let emd = evaluate_emd(&gold, &pred);
        assert_eq!(emd.tp, 1);
        assert_eq!(emd.f1(), 1.0);
    }

    #[test]
    fn partial_boundaries_are_wrong_everywhere() {
        let gold = vec![vec![s(0, 2, Person)]];
        let pred = vec![vec![s(0, 1, Person)]];
        let scores = evaluate(&gold, &pred);
        assert_eq!(scores.of(Person).tp, 0);
        assert_eq!(scores.of(Person).fp, 1);
        assert_eq!(scores.of(Person).fn_, 1);
        assert_eq!(evaluate_emd(&gold, &pred).tp, 0);
    }

    #[test]
    fn duplicate_predictions_do_not_double_count() {
        let gold = vec![vec![s(0, 1, Location)]];
        let pred = vec![vec![s(0, 1, Location), s(0, 1, Location)]];
        let scores = evaluate(&gold, &pred);
        assert_eq!(scores.of(Location).tp, 1);
        assert_eq!(scores.of(Location).fp, 1);
    }

    #[test]
    fn empty_everything_is_perfect() {
        let scores = evaluate(&[vec![]], &[vec![]]);
        assert_eq!(scores.macro_f1(), 1.0);
        assert_eq!(scores.micro_f1(), 1.0);
    }

    #[test]
    fn no_predictions_on_nonempty_gold_is_zero_recall() {
        let gold = vec![vec![s(0, 1, Organization)]];
        let scores = evaluate(&gold, &[vec![]]);
        assert_eq!(scores.of(Organization).recall(), 0.0);
        assert_eq!(scores.of(Organization).precision(), 0.0);
        // Types with no gold and no predictions stay perfect.
        assert_eq!(scores.of(Person).f1(), 1.0);
    }

    #[test]
    fn macro_f1_averages_types() {
        let gold = vec![vec![s(0, 1, Person), s(2, 3, Location)]];
        let pred = vec![vec![s(0, 1, Person)]]; // LOC missed
        let scores = evaluate(&gold, &pred);
        // PER = 1.0, LOC = 0.0, ORG = 1.0 (vacuous), MISC = 1.0 (vacuous).
        assert!((scores.macro_f1() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn counts_accumulate_across_sentences() {
        let gold = vec![vec![s(0, 1, Person)], vec![s(0, 1, Person)]];
        let pred = vec![vec![s(0, 1, Person)], vec![]];
        let scores = evaluate(&gold, &pred);
        assert_eq!(scores.of(Person).tp, 1);
        assert_eq!(scores.of(Person).fn_, 1);
        assert!((scores.of(Person).recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sentence count mismatch")]
    fn mismatched_lengths_panic() {
        evaluate(&[vec![]], &[]);
    }
}
