//! Mention-level confusion matrix over the L+1 classes.
//!
//! Rows are gold classes, columns predicted classes; the extra class is
//! "none" — a gold mention with no same-boundary prediction (row side)
//! or a prediction overlapping no gold mention (column side). This is
//! the machinery behind the §VI-C error discussion ("Local NER's
//! predisposition to map entity mentions of these types to more
//! frequent entity types like Person/Location").

use serde::{Deserialize, Serialize};

use ngl_text::{EntityType, Span};

/// Number of classes in the matrix: L types + "none".
pub const CONFUSION_CLASSES: usize = EntityType::COUNT + 1;

/// A mention-level confusion matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: [[usize; CONFUSION_CLASSES]; CONFUSION_CLASSES],
}

impl ConfusionMatrix {
    /// Builds the matrix from sentence-aligned gold/predicted spans.
    ///
    /// A gold mention is matched against the prediction with the same
    /// boundaries (if any); unmatched gold mentions land in the "none"
    /// column, unmatched predictions in the "none" row. Partial-overlap
    /// predictions count as "none" on both sides (boundary errors are a
    /// different failure mode than mistypes).
    pub fn build(gold: &[Vec<Span>], pred: &[Vec<Span>]) -> Self {
        assert_eq!(gold.len(), pred.len(), "sentence count mismatch");
        let none = EntityType::COUNT;
        let mut counts = [[0usize; CONFUSION_CLASSES]; CONFUSION_CLASSES];
        for (g_sent, p_sent) in gold.iter().zip(pred) {
            let mut pred_used = vec![false; p_sent.len()];
            for g in g_sent {
                match p_sent.iter().position(|p| p.same_boundaries(g)) {
                    Some(pi) => {
                        pred_used[pi] = true;
                        counts[g.ty.index()][p_sent[pi].ty.index()] += 1;
                    }
                    None => counts[g.ty.index()][none] += 1,
                }
            }
            for (pi, p) in p_sent.iter().enumerate() {
                if !pred_used[pi] {
                    counts[none][p.ty.index()] += 1;
                    let _ = p;
                }
            }
        }
        Self { counts }
    }

    /// Count of gold class `g` predicted as class `p` (use
    /// [`EntityType::class_index`]; `EntityType::COUNT` = none).
    pub fn get(&self, gold: usize, pred: usize) -> usize {
        self.counts[gold][pred]
    }

    /// Total gold mentions of a type.
    pub fn gold_total(&self, ty: EntityType) -> usize {
        self.counts[ty.index()].iter().sum()
    }

    /// The most common *wrong* prediction for a gold type, with its
    /// count — "what does this type get mistaken for".
    pub fn dominant_confusion(&self, ty: EntityType) -> Option<(Option<EntityType>, usize)> {
        let row = &self.counts[ty.index()];
        row.iter()
            .enumerate()
            .filter(|(i, _)| *i != ty.index())
            .max_by_key(|(_, &c)| c)
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (EntityType::from_class_index(i), c))
    }

    /// Renders a fixed-width table (rows gold, columns predicted).
    pub fn render(&self) -> String {
        let label = |i: usize| -> &'static str {
            match EntityType::from_class_index(i) {
                Some(t) => t.code(),
                None => "none",
            }
        };
        let mut out = String::from("gold\\pred");
        for p in 0..CONFUSION_CLASSES {
            out.push_str(&format!("{:>7}", label(p)));
        }
        out.push('\n');
        for g in 0..CONFUSION_CLASSES {
            out.push_str(&format!("{:<9}", label(g)));
            for p in 0..CONFUSION_CLASSES {
                out.push_str(&format!("{:>7}", self.counts[g][p]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_text::EntityType::*;

    fn s(start: usize, ty: EntityType) -> Span {
        Span::new(start, start + 1, ty)
    }

    #[test]
    fn diagonal_counts_correct_predictions() {
        let gold = vec![vec![s(0, Person), s(2, Location)]];
        let m = ConfusionMatrix::build(&gold, &gold.clone());
        assert_eq!(m.get(Person.index(), Person.index()), 1);
        assert_eq!(m.get(Location.index(), Location.index()), 1);
        assert_eq!(m.gold_total(Person), 1);
    }

    #[test]
    fn mistype_lands_off_diagonal() {
        let gold = vec![vec![s(0, Organization)]];
        let pred = vec![vec![s(0, Person)]];
        let m = ConfusionMatrix::build(&gold, &pred);
        assert_eq!(m.get(Organization.index(), Person.index()), 1);
        assert_eq!(
            m.dominant_confusion(Organization),
            Some((Some(Person), 1))
        );
    }

    #[test]
    fn misses_and_spurious_use_the_none_class() {
        let gold = vec![vec![s(0, Miscellaneous)]];
        let pred = vec![vec![s(5, Location)]];
        let m = ConfusionMatrix::build(&gold, &pred);
        assert_eq!(m.get(Miscellaneous.index(), EntityType::COUNT), 1);
        assert_eq!(m.get(EntityType::COUNT, Location.index()), 1);
        assert_eq!(
            m.dominant_confusion(Miscellaneous),
            Some((None, 1)),
            "dominant confusion is a miss"
        );
    }

    #[test]
    fn render_contains_all_labels() {
        let m = ConfusionMatrix::build(&[vec![]], &[vec![]]);
        let text = m.render();
        for code in ["PER", "LOC", "ORG", "MISC", "none"] {
            assert!(text.contains(code), "{text}");
        }
    }

    #[test]
    fn no_confusion_when_type_absent() {
        let m = ConfusionMatrix::build(&[vec![]], &[vec![]]);
        assert_eq!(m.dominant_confusion(Person), None);
    }
}
