//! # ngl-eval
//!
//! Evaluation machinery for the reproduction:
//!
//! * [`metrics`] — span-level exact-match Precision/Recall/F1 per entity
//!   type, macro-F1 (the paper's summary metric, following the WNUT17
//!   "F1 (Entity)" convention), and boundary-only EMD scores;
//! * [`errors`] — the §VI-C error taxonomy: entities entirely missed by
//!   Local NER, mistyped mentions, partial extractions;
//! * [`frequency`] — Figure 4: entity-classifier recall binned by gold
//!   mention frequency (bin width 5).

#![forbid(unsafe_code)]

pub mod confusion;
pub mod errors;
pub mod frequency;
pub mod metrics;

pub use confusion::{ConfusionMatrix, CONFUSION_CLASSES};
pub use errors::{fully_missed_entities, mistype_stats, ErrorBreakdown, MissStats};
pub use frequency::{recall_by_frequency, FrequencyBin};
pub use metrics::{evaluate, evaluate_emd, NerScores, TypeScores};
