//! The batching ingest loop and the state shared between it and the
//! connection handlers.
//!
//! One dedicated engine thread owns the [`DurableGlobalizer`]. Client
//! handlers never touch durable state directly: they enqueue
//! [`IngestItem`]s into a bounded channel and wait on a per-item ack
//! channel. The engine drains the queue into size/time-bounded batches,
//! commits each through [`DurableGlobalizer::process_batch_with_ids`]
//! (WAL commit happens *before* apply, so an ack implies durability),
//! and answers every submitter with a typed [`Ack`].
//!
//! Every `finalize_every` batches — or as soon as the queue goes idle —
//! the engine finalizes and publishes a full pipeline clone as the
//! **query snapshot**: readers always see the last finalized state and
//! never contend with ingestion beyond one `RwLock` pointer swap.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use ngl_core::{
    BatchOutput, BatchReport, DegradationMode, DurableError, DurableGlobalizer, NerGlobalizer,
    RetentionPolicy, ShardedGlobalizer, SpillPool,
};
use ngl_core::IoStatsSnapshot;
use ngl_encoder::ContextualTagger;

use crate::stats::{add, raise, ServeStats};
use crate::ServeConfig;

/// The durable store behind the engine: one lineage, or N
/// hash-partitioned shards behind the same batching/ack/finalize loop.
/// The sharded variant publishes its *merged* view as the query
/// snapshot (surface ownership partitions storage and clustering, not
/// the query surface), gates admission on the *best* shard's
/// degradation rung — one read-only shard must not block the others —
/// and reports the *worst* rung for monitoring.
pub(crate) enum EngineStore<T: ContextualTagger> {
    Single(Box<DurableGlobalizer<T>>),
    Sharded(Box<ShardedGlobalizer<T>>),
}

impl<T: ContextualTagger + Clone + Send + Sync> EngineStore<T> {
    pub(crate) fn process_batch_with_ids(
        &mut self,
        batch: Vec<(u64, Vec<String>)>,
    ) -> Result<(BatchOutput, BatchReport), DurableError> {
        match self {
            EngineStore::Single(s) => s.process_batch_with_ids(batch),
            EngineStore::Sharded(s) => s.process_batch_with_ids(batch),
        }
    }

    pub(crate) fn finalize(&mut self) -> Result<(), DurableError> {
        match self {
            EngineStore::Single(s) => s.finalize().map(|_| ()),
            EngineStore::Sharded(s) => s.finalize().map(|_| ()),
        }
    }

    /// The pipeline queries and snapshots are served from: the inner
    /// pipeline (single) or the merged cross-shard view (sharded).
    pub(crate) fn query_view(&self) -> &NerGlobalizer<T> {
        match self {
            EngineStore::Single(s) => s.inner(),
            EngineStore::Sharded(s) => s.merged(),
        }
    }

    /// The admission rung: the store's own mode (single) or the best
    /// shard's (sharded).
    pub(crate) fn admission_mode(&self) -> DegradationMode {
        match self {
            EngineStore::Single(s) => s.degradation().mode(),
            EngineStore::Sharded(s) => s.admission_mode(),
        }
    }

    /// The monitoring rung: same as admission for a single store, the
    /// worst shard's for a sharded one.
    pub(crate) fn worst_mode(&self) -> DegradationMode {
        match self {
            EngineStore::Single(s) => s.degradation().mode(),
            EngineStore::Sharded(s) => s.worst_mode(),
        }
    }

    /// Retention pressure: the sharded value is the worst shard's —
    /// tweet-store pressure is identical everywhere (replicated
    /// ingest), spill pressure is per-shard.
    pub(crate) fn pressure_milli(&self) -> u64 {
        match self {
            EngineStore::Single(s) => retention_pressure_milli(s.inner()),
            EngineStore::Sharded(s) => s
                .shards()
                .iter()
                .map(|shard| retention_pressure_milli(shard.inner()))
                .max()
                .unwrap_or(0),
        }
    }

    /// Spill-page-cache `(hits, misses)`: per-store when a single
    /// lineage spills, process-wide shared-cache totals when sharded.
    pub(crate) fn page_cache_stats(&self) -> Option<(u64, u64)> {
        match self {
            EngineStore::Single(s) => s.spill_pool().map(SpillPool::page_cache_stats),
            EngineStore::Sharded(s) => Some(s.page_cache_stats()),
        }
    }

    /// IO retry counters, summed across shards.
    pub(crate) fn io_stats(&self) -> IoStatsSnapshot {
        match self {
            EngineStore::Single(s) => s.io_stats(),
            EngineStore::Sharded(s) => {
                let mut total = IoStatsSnapshot::default();
                for io in s.shards().iter().map(DurableGlobalizer::io_stats) {
                    total.transient_retries += io.transient_retries;
                    total.retry_exhausted += io.retry_exhausted;
                }
                total
            }
        }
    }

    pub(crate) fn stats(&self) -> ngl_core::StoreStats {
        match self {
            EngineStore::Single(s) => s.stats(),
            EngineStore::Sharded(s) => s.stats(),
        }
    }

    pub(crate) fn shard_count(&self) -> u32 {
        match self {
            EngineStore::Single(_) => 1,
            EngineStore::Sharded(s) => s.shard_count(),
        }
    }
}

/// One queued tweet: payload plus the channel its ack goes back on.
pub(crate) struct IngestItem {
    pub id: u64,
    pub tokens: Vec<String>,
    /// When the handler enqueued the item (ingest-to-ack latency
    /// starts here).
    pub submitted: Instant,
    /// Capacity-1 channel; the engine sends exactly one [`Ack`].
    pub ack: SyncSender<Ack>,
}

/// Terminal status of one submitted tweet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckStatus {
    /// Stored; its batch's WAL record is durable.
    Acked,
    /// Stored after truncation to the configured token cap.
    AckedTruncated,
    /// Dropped by the pipeline (duplicate id, empty tweet under
    /// `reject_empty`, poisoned encode); the batch itself committed.
    Rejected,
    /// The whole batch failed to commit (typed storage error) — the
    /// tweet is not durable and may be resubmitted.
    Failed,
}

/// What the engine tells a submitter about one tweet.
#[derive(Debug, Clone)]
pub struct Ack {
    /// The tweet id the submitter used.
    pub id: u64,
    /// Terminal status.
    pub status: AckStatus,
    /// Rejection or commit-failure detail, when there is one.
    pub detail: Option<String>,
}

/// State shared between the engine thread and connection handlers.
pub(crate) struct Shared<T: ContextualTagger> {
    pub stats: ServeStats,
    /// Last observed *admission* [`DegradationMode`], encoded via
    /// [`mode_to_u8`] — the best shard's rung when sharded, so one
    /// degraded shard never sheds ingest for the rest.
    pub mode: AtomicU8,
    /// Worst-of aggregate across shards (equals `mode` for a single
    /// store); monitoring only, never gates admission.
    pub worst_mode: AtomicU8,
    /// Number of store shards (1 = unsharded).
    pub shard_count: u32,
    /// Retention fill ratio in permille (1000 = exactly at the
    /// configured cap); see [`retention_pressure_milli`].
    pub pressure_milli: AtomicU64,
    /// The query snapshot: the pipeline as of the last finalize.
    pub snapshot: RwLock<Arc<NerGlobalizer<T>>>,
    /// Set once by [`crate::Server::shutdown`]; every loop in the crate
    /// polls it.
    pub shutdown: AtomicBool,
}

pub(crate) fn mode_to_u8(mode: DegradationMode) -> u8 {
    match mode {
        DegradationMode::Healthy => 0,
        DegradationMode::Degraded => 1,
        DegradationMode::WalOnly => 2,
        DegradationMode::ReadOnly => 3,
    }
}

pub(crate) fn mode_name(encoded: u8) -> &'static str {
    match encoded {
        0 => "Healthy",
        1 => "Degraded",
        2 => "WalOnly",
        _ => "ReadOnly",
    }
}

/// Retention fill ratio in permille. Above 1000 the pipeline holds more
/// than its cap between finalizes (eviction runs at finalize time), so
/// a threshold comfortably above 1000 distinguishes "operating at cap"
/// from "falling behind".
pub(crate) fn retention_pressure_milli<T: ContextualTagger>(g: &NerGlobalizer<T>) -> u64 {
    let ratio_milli = |used: u64, cap: usize| {
        if cap == 0 {
            return 0;
        }
        used.saturating_mul(1000) / cap as u64
    };
    match g.config().retention {
        RetentionPolicy::Unbounded => 0,
        RetentionPolicy::MaxTweets(cap) => {
            let retained = g.tweet_base().len() - g.tweet_base().first_retained();
            ratio_milli(retained as u64, cap)
        }
        RetentionPolicy::MaxBytes(cap) => ratio_milli(g.tweet_base().retained_bytes() as u64, cap),
        RetentionPolicy::SpillCold(cap) => {
            ratio_milli(g.candidate_base().resident_bytes() as u64, cap)
        }
    }
}

/// Mirrors store-side health and cache/IO counters into the shared
/// stats so `/stats` serves them without touching the engine.
pub(crate) fn refresh_store_view<T: ContextualTagger + Clone + Send + Sync>(
    shared: &Shared<T>,
    store: &EngineStore<T>,
) {
    let stats = &shared.stats;
    shared.mode.store(mode_to_u8(store.admission_mode()), Ordering::Relaxed);
    shared.worst_mode.store(mode_to_u8(store.worst_mode()), Ordering::Relaxed);
    shared.pressure_milli.store(store.pressure_milli(), Ordering::Relaxed);
    if let Some((hits, misses)) = store.page_cache_stats() {
        stats.spill_cache_hits.store(hits, Ordering::Relaxed);
        stats.spill_cache_misses.store(misses, Ordering::Relaxed);
    }
    let io = store.io_stats();
    stats.io_transient_retries.store(io.transient_retries, Ordering::Relaxed);
    stats.io_retry_exhausted.store(io.retry_exhausted, Ordering::Relaxed);
    let wire = store.stats();
    stats.wal_bytes_total.store(wire.wal_bytes_total, Ordering::Relaxed);
    stats.snapshots.store(wire.snapshots, Ordering::Relaxed);
}

/// Finalizes, publishes the post-finalize pipeline as the new query
/// snapshot, and refreshes the mirrored store view.
pub(crate) fn finalize_and_publish<T: ContextualTagger + Clone + Send + Sync>(
    shared: &Shared<T>,
    store: &mut EngineStore<T>,
) {
    match store.finalize() {
        Ok(()) => add(&shared.stats.finalizes, 1),
        Err(_) => add(&shared.stats.finalize_failures, 1),
    }
    publish_snapshot(shared, store);
}

/// Publishes the current query view as the query snapshot.
pub(crate) fn publish_snapshot<T: ContextualTagger + Clone + Send + Sync>(
    shared: &Shared<T>,
    store: &EngineStore<T>,
) {
    let snap = Arc::new(store.query_view().clone());
    *shared.snapshot.write().unwrap_or_else(|e| e.into_inner()) = snap;
    refresh_store_view(shared, store);
}

/// The engine thread body: batch, commit, ack, finalize, publish.
pub(crate) fn run<T: ContextualTagger + Clone + Send + Sync>(
    mut durable: EngineStore<T>,
    rx: Receiver<IngestItem>,
    shared: Arc<Shared<T>>,
    cfg: ServeConfig,
) {
    let max_delay = Duration::from_millis(cfg.max_delay_ms.max(1));
    // Idle tick: long enough to avoid spinning, short enough that
    // shutdown and idle-finalize are prompt.
    let idle_tick = max_delay.max(Duration::from_millis(10));
    let mut since_finalize = 0usize;
    loop {
        let first = match rx.recv_timeout(idle_tick) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => {
                // Queue drained: publish whatever the clients were
                // promised, then keep waiting (or leave on shutdown).
                if since_finalize > 0 {
                    finalize_and_publish(&shared, &mut durable);
                    since_finalize = 0;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => {
                if since_finalize > 0 {
                    finalize_and_publish(&shared, &mut durable);
                }
                return;
            }
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + max_delay;
        while batch.len() < cfg.max_batch.max(1) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(item) => batch.push(item),
                Err(_) => break,
            }
        }
        commit_batch(&shared, &mut durable, batch);
        since_finalize += 1;
        if since_finalize >= cfg.finalize_every.max(1) {
            finalize_and_publish(&shared, &mut durable);
            since_finalize = 0;
        } else {
            refresh_store_view(&shared, &durable);
        }
    }
}

fn commit_batch<T: ContextualTagger + Clone + Send + Sync>(
    shared: &Shared<T>,
    durable: &mut EngineStore<T>,
    batch: Vec<IngestItem>,
) {
    let stats = &shared.stats;
    let n = batch.len() as u64;
    let payload: Vec<(u64, Vec<String>)> =
        batch.iter().map(|item| (item.id, item.tokens.clone())).collect();
    match durable.process_batch_with_ids(payload) {
        Ok((_, report)) => {
            add(&stats.batches, 1);
            add(&stats.batch_tweets, n);
            raise(&stats.max_batch, n);
            let mut detail: Vec<Option<String>> = vec![None; batch.len()];
            for (k, &pos) in report.rejected.iter().enumerate() {
                detail[pos] = Some(
                    report
                        .errors
                        .get(k)
                        .map(|e| e.message.clone())
                        .unwrap_or_else(|| "rejected".to_string()),
                );
            }
            for (pos, item) in batch.into_iter().enumerate() {
                let status = if report.rejected.contains(&pos) {
                    add(&stats.rejected, 1);
                    AckStatus::Rejected
                } else if report.truncated.contains(&pos) {
                    add(&stats.accepted, 1);
                    add(&stats.truncated, 1);
                    AckStatus::AckedTruncated
                } else {
                    add(&stats.accepted, 1);
                    AckStatus::Acked
                };
                let us = item.submitted.elapsed().as_micros() as u64;
                stats.record_ack_latency_us(us);
                let ack = Ack { id: item.id, status, detail: detail[pos].take() };
                // A submitter that already timed out dropped its
                // receiver; the ack is simply lost.
                let _ = item.ack.try_send(ack);
            }
        }
        Err(e) => {
            add(&stats.failed, n);
            let msg = e.to_string();
            for item in batch {
                let ack = Ack {
                    id: item.id,
                    status: AckStatus::Failed,
                    detail: Some(msg.clone()),
                };
                let _ = item.ack.try_send(ack);
            }
        }
    }
}
